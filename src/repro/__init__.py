"""repro — a DASPOS reference implementation.

A complete, self-contained realisation of the systems surveyed and
proposed in *Data and Software Preservation for Open Science (DASPOS),
Workshop 1 report* (Hildreth, Long, Johnson et al., CERN 2013/2014):

- a synthetic collider substrate (:mod:`repro.kinematics`,
  :mod:`repro.generation`, :mod:`repro.detector`,
  :mod:`repro.reconstruction`, :mod:`repro.conditions`,
  :mod:`repro.datamodel`),
- the HEP workflow and provenance machinery (:mod:`repro.workflow`,
  :mod:`repro.provenance`),
- analysis-preservation frameworks (:mod:`repro.rivet`,
  :mod:`repro.recast`, :mod:`repro.hepdata`),
- the core preservation architecture (:mod:`repro.core`),
- Level-2 outreach tooling (:mod:`repro.outreach`),
- the data-curation interview toolkit (:mod:`repro.interview`), and
- the workshop's experiment profiles (:mod:`repro.experiments`).

Quickstart::

    from repro.generation import ToyGenerator, GeneratorConfig, DrellYanZ
    generator = ToyGenerator(GeneratorConfig(processes=[DrellYanZ()]))
    events = generator.generate(100)

See ``examples/`` for full end-to-end walkthroughs.
"""

from repro import errors

__version__ = "1.0.0"

__all__ = ["errors", "__version__"]
