"""The RunReport: preservable evidence of one processing run.

A RunReport is the artifact the observability layer exists to produce —
a schema-versioned JSON document bundling the span tree, the metrics
snapshot, the environment capture, and provenance links, so the record
of *how* a dataset was produced can be archived next to the dataset and
fixity-checked like any other preserved content.

Determinism contract: built with ``deterministic=True``, the document
is **byte-identical across runs** of the same seeded workload — span
timings are replaced by logical sequence positions, timing-derived
metrics are normalized (counts kept, durations dropped), and the
wall-clock field of the environment capture is emptied. Built without
it, real monotonic-clock offsets from trace start are exported instead
(the mode ``repro trace`` renders timings from).

Span ids are re-derivable from ``(trace id, parent, name, sequence)``,
and :func:`validate_run_report` re-derives every one — a report whose
ids fail to reproduce has been tampered with or mis-assembled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.canonical import canonical_document
from repro.errors import ObservabilityError
from repro.obs.env import ENVIRONMENT_FIELDS, capture_environment
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    STATUS_ERROR,
    STATUS_OK,
    Span,
    Tracer,
    derive_span_id,
)

#: Schema identity of the run-report document.
REPORT_FORMAT = "repro-run-report"
REPORT_SCHEMA_VERSION = 1

#: Archive artifact kind run reports are stored under.
RUN_REPORT_KIND = "run-report"

#: Fields every exported span record carries.
_SPAN_FIELDS = ("name", "span_id", "parent_id", "sequence", "start",
                "duration", "status", "attributes")

#: Fixed epoch used for archive metadata in deterministic captures.
_EPOCH = "1970-01-01T00:00:00Z"


def export_spans(spans: list[Span], *,
                 deterministic: bool = False) -> list[dict]:
    """Serialise finished spans for a run report.

    Real mode exports monotonic offsets from the earliest span start;
    deterministic mode replaces ``start`` with the span's sequence
    position and zeroes every duration — structure without clocks.
    """
    records: list[dict] = []
    origin = min((span.start for span in spans), default=0.0)
    for span in spans:
        if not span.finished:
            raise ObservabilityError(
                f"span {span.name!r} is still open; finish every span "
                f"before exporting a run report"
            )
        record = span.to_dict()
        if deterministic:
            record["start"] = float(span.sequence)
            record["duration"] = 0.0
        else:
            record["start"] = round(span.start - origin, 6)
            record["duration"] = round(span.duration, 6)
        records.append(record)
    return records


@dataclass
class RunReport:
    """One run's complete observability record."""

    trace_id: str
    deterministic: bool
    spans: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        tracer: Tracer,
        metrics: MetricsRegistry | None = None,
        *,
        deterministic: bool = False,
        provenance: dict | None = None,
        environment: dict | None = None,
    ) -> "RunReport":
        """Assemble a report from a finished tracer and registry."""
        registry = metrics if metrics is not None else MetricsRegistry()
        return cls(
            trace_id=tracer.trace_id,
            deterministic=deterministic,
            spans=export_spans(tracer.spans,
                               deterministic=deterministic),
            metrics=registry.snapshot(deterministic=deterministic),
            environment=(environment if environment is not None
                         else capture_environment(
                             deterministic=deterministic)),
            provenance=dict(provenance) if provenance else {},
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The schema-versioned document."""
        return {
            "format": REPORT_FORMAT,
            "schema_version": REPORT_SCHEMA_VERSION,
            "trace": {
                "trace_id": self.trace_id,
                "deterministic": self.deterministic,
                "spans": [dict(span) for span in self.spans],
            },
            "metrics": self.metrics,
            "environment": dict(self.environment),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RunReport":
        """Inverse of :meth:`to_dict`; validates on the way in."""
        validate_run_report(record)
        trace = record["trace"]
        return cls(
            trace_id=str(trace["trace_id"]),
            deterministic=bool(trace["deterministic"]),
            spans=[dict(span) for span in trace["spans"]],
            metrics=dict(record["metrics"]),
            environment=dict(record["environment"]),
            provenance=dict(record.get("provenance", {})),
        )

    def to_json_bytes(self) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF."""
        return canonical_document(self.to_dict())

    def save(self, path: str | Path) -> None:
        """Write the report document to ``path``."""
        Path(path).write_bytes(self.to_json_bytes())

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        """Read and validate a report document from ``path``."""
        try:
            record = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read run report {path}: {exc}"
            ) from None
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"run report {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_spans(self) -> int:
        """Spans recorded in this report."""
        return len(self.spans)

    def root_spans(self) -> list[dict]:
        """The top-level spans of the trace tree."""
        return [span for span in self.spans
                if span["parent_id"] is None]

    def children_of(self, span_id: str | None) -> list[dict]:
        """Direct children of one span, in sequence order."""
        return [span for span in self.spans
                if span["parent_id"] == span_id]


def validate_run_report(record: dict) -> None:
    """Structural + integrity validation of one report document.

    Beyond shape checks, every span id is re-derived from its
    ``(trace id, parent, name, sequence)`` identity — the same rule the
    tracer used — so corruption or hand-editing is caught statically.
    Raises :class:`~repro.errors.ObservabilityError` on the first
    violation.
    """
    if not isinstance(record, dict):
        raise ObservabilityError("run report must be a JSON object")
    if record.get("format") != REPORT_FORMAT:
        raise ObservabilityError(
            f"run report format {record.get('format')!r} is not "
            f"{REPORT_FORMAT!r}"
        )
    if record.get("schema_version") != REPORT_SCHEMA_VERSION:
        raise ObservabilityError(
            f"run report schema version "
            f"{record.get('schema_version')!r} is not "
            f"{REPORT_SCHEMA_VERSION}"
        )
    trace = record.get("trace")
    if not isinstance(trace, dict) or "trace_id" not in trace:
        raise ObservabilityError("run report has no trace block")
    trace_id = trace["trace_id"]
    if not isinstance(trace_id, str) or not trace_id:
        raise ObservabilityError("trace_id must be a non-empty string")
    if not isinstance(trace.get("deterministic"), bool):
        raise ObservabilityError(
            "trace.deterministic must be a boolean"
        )
    spans = trace.get("spans")
    if not isinstance(spans, list):
        raise ObservabilityError("trace.spans must be a list")
    seen_ids: set[str] = set()
    sequences: set[int] = set()
    deterministic = trace["deterministic"]
    for position, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ObservabilityError(f"span #{position} is not an object")
        for key in _SPAN_FIELDS:
            if key not in span:
                raise ObservabilityError(
                    f"span #{position} is missing {key!r}"
                )
        if span["status"] not in (STATUS_OK, STATUS_ERROR):
            raise ObservabilityError(
                f"span #{position} has unknown status "
                f"{span['status']!r}"
            )
        sequence = span["sequence"]
        if not isinstance(sequence, int) or sequence in sequences:
            raise ObservabilityError(
                f"span #{position} has invalid or duplicate sequence "
                f"{sequence!r}"
            )
        sequences.add(sequence)
        parent_id = span["parent_id"]
        if parent_id is not None and parent_id not in seen_ids:
            raise ObservabilityError(
                f"span {span['name']!r} references parent "
                f"{parent_id!r} which does not precede it"
            )
        expected = derive_span_id(trace_id, parent_id, span["name"],
                                  sequence)
        if span["span_id"] != expected:
            raise ObservabilityError(
                f"span {span['name']!r} id {span['span_id']!r} does "
                f"not re-derive (expected {expected!r}); the report "
                f"has been altered"
            )
        seen_ids.add(span["span_id"])
        if not isinstance(span["attributes"], dict):
            raise ObservabilityError(
                f"span {span['name']!r} attributes must be an object"
            )
        if deterministic and (span["start"] != float(sequence)
                              or span["duration"] != 0.0):
            raise ObservabilityError(
                f"span {span['name']!r} carries clock values in a "
                f"deterministic report"
            )
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        raise ObservabilityError("run report has no metrics snapshot")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), list):
            raise ObservabilityError(
                f"metrics snapshot is missing the {section!r} list"
            )
    for histogram in metrics["histograms"]:
        if len(histogram.get("counts", [])) != \
                len(histogram.get("buckets", [])) + 1:
            raise ObservabilityError(
                f"histogram {histogram.get('name')!r} needs one count "
                f"per bucket plus overflow"
            )
    environment = record.get("environment")
    if not isinstance(environment, dict):
        raise ObservabilityError(
            "run report has no environment capture"
        )
    for key in ENVIRONMENT_FIELDS:
        if key not in environment:
            raise ObservabilityError(
                f"environment capture is missing {key!r}"
            )
    if not isinstance(record.get("provenance", {}), dict):
        raise ObservabilityError("provenance block must be an object")


# ----------------------------------------------------------------------
# Archive integration
# ----------------------------------------------------------------------

def attach_report_to_archive(
    report: RunReport,
    archive,
    *,
    creator: str = "repro-obs",
    experiment: str = "TOY",
    created: str = _EPOCH,
    title: str | None = None,
):
    """Store a run report in a :class:`PreservationArchive`.

    Returns the archive entry; its digest is what dataset metadata
    should link back to (see :func:`link_run_report`), and what the
    ``DAS113`` lint rule checks for. The default ``created`` stamp is
    the fixed epoch so deterministic reports stay byte-stable; pass a
    real timestamp for curated archives.
    """
    from repro.core.metadata import PreservationMetadata

    payload = report.to_dict()
    metadata = PreservationMetadata.build(
        title=title or f"run report {report.trace_id}",
        creator=creator,
        experiment=experiment,
        created=created,
        artifact_format=REPORT_FORMAT,
        size_bytes=0,
        checksum="",
        producer="repro.obs",
        parents=list(report.provenance.get("artifact_ids", [])),
    )
    return archive.store(payload, RUN_REPORT_KIND, metadata)


def load_report_from_archive(archive, digest: str) -> RunReport:
    """Retrieve and validate an archived run report by digest."""
    entry = archive.entry(digest)
    if entry.kind != RUN_REPORT_KIND:
        raise ObservabilityError(
            f"artifact {digest[:12]}... is a {entry.kind!r}, not a "
            f"{RUN_REPORT_KIND!r}"
        )
    return RunReport.from_dict(archive.retrieve(digest))


def link_run_report(metadata, digest: str) -> None:
    """Record a run-report digest in dataset metadata.

    Writes the ``run_report`` field of the provenance metadata block —
    the link ``DAS113`` audits archived datasets for.
    """
    from repro.core.metadata import MetadataBlock

    metadata.blocks.setdefault(MetadataBlock.PROVENANCE, {})
    metadata.blocks[MetadataBlock.PROVENANCE]["run_report"] = str(digest)


# ----------------------------------------------------------------------
# Rendering (the ``repro trace`` view)
# ----------------------------------------------------------------------

def render_trace(report: RunReport) -> str:
    """ASCII tree of the span structure with timings and attributes."""
    total = sum(span["duration"] for span in report.root_spans())
    header = (
        f"trace {report.trace_id!r} — {report.n_spans} span(s)"
        + (", deterministic (timings normalized)"
           if report.deterministic else f", {total:.3f}s total")
    )
    lines = [header]

    def describe(span: dict) -> str:
        attributes = " ".join(
            f"{key}={value}" for key, value in
            sorted(span["attributes"].items())
        )
        timing = ("" if report.deterministic
                  else f" ({span['duration'] * 1000.0:.1f} ms)")
        flag = "" if span["status"] == STATUS_OK else " [ERROR]"
        return (span["name"] + timing + flag
                + (f"  {attributes}" if attributes else ""))

    def walk(parent_id: str | None, prefix: str) -> None:
        children = report.children_of(parent_id)
        for index, span in enumerate(children):
            last = index == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + describe(span))
            walk(span["span_id"], prefix + ("   " if last else "│  "))

    walk(None, "")
    return "\n".join(lines)
