"""Windowed service telemetry: deterministic time-series aggregation.

:mod:`repro.obs.metrics` answers *how much happened over the whole
run*; a long-running service needs the layer above it — *how much is
happening now*, comparable window by window, so objectives
(:mod:`repro.obs.slo`) can be evaluated continuously instead of once
at shutdown. This module supplies that layer without giving up the
library's replay contract:

- **Clock injection.** A :class:`TelemetryHub` reads time only from
  the injected :class:`~repro.runtime.Clock` — ``LogicalClock`` ticks
  under deterministic replay, ``MonotonicClock`` in production — so
  window boundaries are a pure function of the workload, never of the
  machine.
- **Fixed window grids.** A :class:`WindowSpec` places windows at
  ``k * stride`` for integer ``k`` (tumbling when ``stride == width``,
  sliding when ``stride < width``); two replays bin observations into
  the same windows by construction.
- **Exact quantile readout.** Each window keeps its observations until
  it closes, then reduces them to count/sum/min/max, fixed-boundary
  bucket occupancies, and *exact* quantiles at the fixed grid
  (:data:`QUANTILE_GRID`) computed from the sorted values — no
  estimation, no randomness, bounded memory after close.

The timing-normalization convention of the metrics layer carries over:
series named ``*_seconds`` / ``*_utilization`` are machine-derived, so
deterministic snapshots zero their values while keeping observation
counts (see :func:`repro.obs.metrics.is_timing_metric`).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.core.canonical import canonical_document
from repro.errors import ObservabilityError
from repro.obs.metrics import _label_key, is_timing_metric
from repro.runtime.clock import Clock

#: Default value-distribution bucket bounds (clock-unit flavoured).
DEFAULT_WINDOW_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: The fixed quantile grid every closed window reports exactly.
QUANTILE_GRID = (0.5, 0.9, 0.95, 0.99, 1.0)

#: Schema identity of the telemetry snapshot document.
TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_SCHEMA_VERSION = 1


def quantile_label(q: float) -> str:
    """The snapshot key of one grid quantile (``0.95`` -> ``"p95"``).

    >>> quantile_label(0.5), quantile_label(0.99), quantile_label(1.0)
    ('p50', 'p99', 'p100')
    """
    return "p" + str(int(round(q * 100.0)))


def exact_quantile(ordered: list, q: float) -> float:
    """The exact ``q``-quantile of an ascending value list.

    Uses the inverse-empirical-CDF definition (the smallest value with
    at least ``q`` of the mass at or below it): index
    ``ceil(q * n) - 1``. Deterministic, no interpolation — the value
    returned was observed.
    """
    if not ordered:
        raise ObservabilityError("quantile of an empty window")
    if not 0.0 < q <= 1.0:
        raise ObservabilityError(
            f"quantile must be in (0, 1], got {q}"
        )
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class WindowSpec:
    """A deterministic window grid: width plus stride.

    Windows are the half-open intervals ``[k*stride, k*stride+width)``
    for every non-negative integer ``k``. ``stride == width`` is a
    tumbling grid (every instant in exactly one window);
    ``stride < width`` is sliding (overlapping windows, each instant
    in ``width/stride`` of them).
    """

    width: float = 8.0
    stride: float | None = None

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ObservabilityError(
                f"window width must be > 0, got {self.width}"
            )
        if self.stride is None:
            object.__setattr__(self, "stride", float(self.width))
        if not 0.0 < self.stride <= self.width:
            raise ObservabilityError(
                f"window stride must satisfy 0 < stride <= width, got "
                f"stride={self.stride} width={self.width}"
            )
        object.__setattr__(self, "width", float(self.width))
        object.__setattr__(self, "stride", float(self.stride))

    @property
    def kind(self) -> str:
        """``"tumbling"`` or ``"sliding"``."""
        return "tumbling" if self.stride == self.width else "sliding"

    def indices_for(self, time: float) -> range:
        """Every window index whose interval contains ``time``."""
        if time < 0.0:
            raise ObservabilityError(
                f"telemetry time cannot be negative, got {time}"
            )
        high = math.floor(time / self.stride)
        low = max(0, math.floor((time - self.width) / self.stride) + 1)
        # Half-open upper edge: a value exactly on (k*stride + width)
        # belongs to the next window, not this one.
        if low * self.stride + self.width <= time:
            low += 1
        return range(low, high + 1)

    def start_of(self, index: int) -> float:
        """The inclusive start time of window ``index``."""
        return index * self.stride

    def end_of(self, index: int) -> float:
        """The exclusive end time of window ``index``."""
        return index * self.stride + self.width

    def to_dict(self) -> dict:
        """Serialise for telemetry snapshots and SLO specs."""
        return {"width": self.width, "stride": self.stride,
                "kind": self.kind}

    @classmethod
    def from_dict(cls, record: dict) -> "WindowSpec":
        """Inverse of :meth:`to_dict`; ``kind`` is derived, not read."""
        unknown = set(record) - {"width", "stride", "kind"}
        if unknown:
            raise ObservabilityError(
                f"unknown window-spec fields: {sorted(unknown)}"
            )
        return cls(width=float(record.get("width", 8.0)),
                   stride=(float(record["stride"])
                           if record.get("stride") is not None
                           else None))


class _WindowAccumulator:
    """One open window collecting observations until it closes."""

    __slots__ = ("index", "values",)

    def __init__(self, index: int) -> None:
        self.index = index
        self.values: list[float] = []


@dataclass(frozen=True)
class WindowRecord:
    """One closed window, reduced to its deterministic aggregate."""

    start: float
    end: float
    count: int
    sum: float
    min: float
    max: float
    bucket_counts: tuple
    quantiles: tuple

    def to_dict(self) -> dict:
        """Serialise for the telemetry snapshot."""
        quantiles = {}
        for position, q in enumerate(QUANTILE_GRID):
            quantiles[quantile_label(q)] = self.quantiles[position]
        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "bucket_counts": list(self.bucket_counts),
            "quantiles": quantiles,
        }


class WindowedSeries:
    """One named, labelled stream of ``(time, value)`` observations.

    Observations land in every grid window containing their time;
    :meth:`close_upto` reduces each window whose end has passed into a
    :class:`WindowRecord` (count, sum, min, max, fixed-boundary bucket
    occupancies, exact grid quantiles) and drops the raw values.
    Windows that saw no observations emit nothing — absence of traffic
    is represented by absence of windows, which replays identically.
    """

    def __init__(self, name: str, labels: tuple, spec: WindowSpec,
                 buckets: tuple = DEFAULT_WINDOW_BUCKETS) -> None:
        if not name:
            raise ObservabilityError("series needs a non-empty name")
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"series {name!r} bucket bounds must be a non-empty "
                f"strictly ascending sequence, got {bounds}"
            )
        self.name = name
        self.labels = labels
        self.spec = spec
        self.buckets = bounds
        self._open: dict[int, _WindowAccumulator] = {}
        self._closed: list[WindowRecord] = []
        self._observations = 0

    def label_dict(self) -> dict:
        """The label set as a plain dict for export."""
        return {key: value for key, value in self.labels}

    @property
    def n_observations(self) -> int:
        """Total observations recorded into this series."""
        return self._observations

    def observe(self, time: float, value: float) -> None:
        """Record one observation at one instant."""
        value = float(value)
        self._observations += 1
        for index in self.spec.indices_for(float(time)):
            window = self._open.get(index)
            if window is None:
                window = _WindowAccumulator(index)
                self._open[index] = window
            window.values.append(value)

    def close_upto(self, now: float, *, final: bool = False) -> int:
        """Reduce every window whose end has passed; returns how many.

        ``final=True`` also closes windows still inside their interval
        — the end-of-run flush, when no further observations can
        arrive because the clock drives the workload.
        """
        ready = []
        for index in sorted(self._open):
            if final or self.spec.end_of(index) <= now:
                ready.append(index)
        for index in ready:
            window = self._open.pop(index)
            self._closed.append(self._reduce(window))
        return len(ready)

    def _reduce(self, window: _WindowAccumulator) -> WindowRecord:
        ordered = sorted(window.values)
        counts = [0] * (len(self.buckets) + 1)
        for value in ordered:
            position = 0
            while (position < len(self.buckets)
                   and value > self.buckets[position]):
                position += 1
            counts[position] += 1
        return WindowRecord(
            start=self.spec.start_of(window.index),
            end=self.spec.end_of(window.index),
            count=len(ordered),
            sum=math.fsum(ordered),
            min=ordered[0],
            max=ordered[-1],
            bucket_counts=tuple(counts),
            quantiles=tuple(exact_quantile(ordered, q)
                            for q in QUANTILE_GRID),
        )

    @property
    def windows(self) -> list[WindowRecord]:
        """Every closed window, in grid order."""
        return list(self._closed)

    def to_dict(self, *, deterministic: bool = False) -> dict:
        """Serialise the series and its closed windows.

        In deterministic mode, timing-derived series (``*_seconds`` /
        ``*_utilization`` names) keep their window boundaries and
        observation counts but zero every machine-dependent value.
        """
        normalize = deterministic and is_timing_metric(self.name)
        windows = []
        for record in self._closed:
            entry = record.to_dict()
            if normalize:
                entry["sum"] = 0.0
                entry["min"] = 0.0
                entry["max"] = 0.0
                entry["bucket_counts"] = [0] * len(
                    entry["bucket_counts"])
                zeroed = {}
                for key in sorted(entry["quantiles"]):
                    zeroed[key] = 0.0
                entry["quantiles"] = zeroed
            windows.append(entry)
        return {
            "name": self.name,
            "labels": self.label_dict(),
            "window": self.spec.to_dict(),
            "buckets": list(self.buckets),
            "n_observations": self._observations,
            "windows": windows,
        }


class TelemetryHub:
    """The per-service home of every windowed series.

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`: series are
    created on first use and shared thereafter, keyed by
    ``(name, label set)``. Time comes exclusively from the injected
    clock; a hub constructed with ``enabled=False`` is the no-op
    variant instrumented code can keep calling for one branch per
    observation.
    """

    def __init__(self, clock: Clock, *,
                 spec: WindowSpec | None = None,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.spec = spec if spec is not None else WindowSpec()
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: dict[tuple, WindowedSeries] = {}

    def series(self, name: str,
               buckets: tuple = DEFAULT_WINDOW_BUCKETS,
               **labels) -> WindowedSeries:
        """Get or create the series ``name`` with ``labels``.

        ``buckets`` only takes effect at creation; a later caller
        asking for different bounds under the same identity is a bug.
        """
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._series.get(key)
            if existing is None:
                existing = WindowedSeries(name, _label_key(labels),
                                          self.spec, buckets)
                self._series[key] = existing
            elif existing.buckets != tuple(float(b) for b in buckets):
                raise ObservabilityError(
                    f"series {name!r} already exists with bounds "
                    f"{existing.buckets}"
                )
            return existing

    def observe(self, name: str, value: float,
                buckets: tuple = DEFAULT_WINDOW_BUCKETS,
                **labels) -> None:
        """Record ``value`` on series ``name`` at the clock's now."""
        if not self.enabled:
            return
        series = self.series(name, buckets, **labels)
        with self._lock:
            series.observe(self.clock.now(), value)

    def event(self, name: str, **labels) -> None:
        """Record one unit-valued occurrence (a windowed counter)."""
        self.observe(name, 1.0, **labels)

    def flush(self, *, final: bool = False) -> int:
        """Close every window the clock has moved past; returns how
        many closed. ``final=True`` is the end-of-run flush closing
        still-open windows too."""
        if not self.enabled:
            return 0
        now = self.clock.now()
        closed = 0
        with self._lock:
            for key in sorted(self._series):
                closed += self._series[key].close_upto(now, final=final)
        return closed

    @property
    def n_observations(self) -> int:
        """Total observations across every series."""
        with self._lock:
            return sum(series.n_observations
                       for series in self._series.values())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self, *, deterministic: bool = False) -> dict:
        """Every series and its closed windows as one document.

        Series sort by ``(name, labels)``; only *closed* windows are
        exported (call :meth:`flush` first — ``final=True`` at end of
        run). Deterministic mode applies the timing-normalization
        convention per series.
        """
        with self._lock:
            ordered = sorted(self._series.values(),
                             key=lambda s: (s.name, s.labels))
            series = [entry.to_dict(deterministic=deterministic)
                      for entry in ordered]
        return {
            "format": TELEMETRY_FORMAT,
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "deterministic": deterministic,
            "window": self.spec.to_dict(),
            "series": series,
        }

    def to_json_bytes(self, *, deterministic: bool = False) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF."""
        return canonical_document(
            self.snapshot(deterministic=deterministic))


def validate_telemetry_snapshot(record: dict) -> None:
    """Structural validation of one telemetry snapshot document.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    violation.
    """
    if not isinstance(record, dict):
        raise ObservabilityError(
            "telemetry snapshot must be a JSON object")
    if record.get("format") != TELEMETRY_FORMAT:
        raise ObservabilityError(
            f"telemetry format {record.get('format')!r} is not "
            f"{TELEMETRY_FORMAT!r}"
        )
    if record.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        raise ObservabilityError(
            f"telemetry schema version "
            f"{record.get('schema_version')!r} is not "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    series = record.get("series")
    if not isinstance(series, list):
        raise ObservabilityError(
            "telemetry snapshot needs a 'series' list")
    for entry in series:
        if not isinstance(entry, dict) or "name" not in entry:
            raise ObservabilityError(
                f"malformed telemetry series entry: {entry!r}")
        WindowSpec.from_dict(entry.get("window", {}))
        for window in entry.get("windows", ()):
            expected = len(entry.get("buckets", ())) + 1
            if len(window.get("bucket_counts", ())) != expected:
                raise ObservabilityError(
                    f"series {entry['name']!r} window at "
                    f"{window.get('start')} needs {expected} bucket "
                    f"counts"
                )
            if window.get("count", 0) < 0:
                raise ObservabilityError(
                    f"series {entry['name']!r} window count cannot "
                    f"be negative"
                )
