"""Structured tracing: spans, the tracer, and worker-span adoption.

The evidence layer the DPHEP validation-framework work asks for: every
run of the processing chain should leave a machine-readable record of
*what executed* — which steps ran, nested how, for how long, with what
attributes. A :class:`Span` is one timed, named unit of work; a
:class:`Tracer` is the in-memory collector spans are recorded into.

Three properties make the layer fit for preservation rather than mere
debugging:

1. **Deterministic span ids** — a span's id derives from
   ``(trace id, parent id, name, sequence)`` alone, never from wall
   clock or PIDs, so two runs of the same chain produce the same span
   tree with the same ids and the exported trace can be fixity-checked.
2. **Submission-order adoption** — work fanned out to thread or process
   workers is traced by a *worker-local* tracer whose spans are merged
   back into the parent with :meth:`Tracer.adopt` in submission order,
   so the collected tree never depends on which worker finished first.
3. **Near-zero cost when off** — a disabled tracer answers every
   ``span()`` call with one shared no-op handle; instrumented library
   code pays a single attribute check.

Timing uses the monotonic clock (never wall time) and is *dropped* from
deterministic exports — see :mod:`repro.obs.report`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

#: Span status values: a span either completed or raised.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def derive_span_id(trace_id: str, parent_id: str | None, name: str,
                   sequence: int) -> str:
    """The deterministic 16-hex-digit id of one span.

    >>> derive_span_id("t", None, "work", 0) == \\
    ...     derive_span_id("t", None, "work", 0)
    True
    """
    key = "\x00".join(
        (trace_id, parent_id or "", name, str(int(sequence)))
    ).encode("utf-8")
    return hashlib.sha256(key).hexdigest()[:16]


@dataclass
class Span:
    """One named, timed, attributed unit of work.

    ``start``/``end`` are monotonic-clock readings; ``sequence`` is the
    span's start-order position within its tracer — the quantity that
    survives into deterministic exports in place of the clock.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    sequence: int
    start: float
    end: float | None = None
    status: str = STATUS_OK
    attributes: dict = field(default_factory=dict)

    def set(self, key: str, value) -> None:
        """Attach one attribute (JSON-serialisable values only)."""
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        """True once the span has ended."""
        return self.end is not None

    def to_dict(self) -> dict:
        """Serialise with real timings (non-deterministic export)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sequence": self.sequence,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _NoopSpan:
    """The shared do-nothing span handle of a disabled tracer."""

    __slots__ = ()
    attributes: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """Discard the attribute."""


_NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict | None) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        self.span = self._tracer._start(self._name, self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span, error=exc_type is not None)
        return False


class Tracer:
    """A thread-safe in-memory span collector.

    Spans are recorded in *start* order; nesting follows the tracer's
    span stack. Worker code must not share the driver's tracer — each
    worker records into its own tracer and the driver merges the
    finished spans back with :meth:`adopt`, in submission order.

    A tracer constructed with ``enabled=False`` is the no-op variant:
    ``span()`` returns a shared inert handle and records nothing.
    """

    def __init__(self, trace_id: str = "trace", *,
                 enabled: bool = True,
                 clock=time.monotonic) -> None:
        self.trace_id = trace_id
        self.enabled = enabled
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes) -> "_SpanHandle | _NoopSpan":
        """Open a nested span as a context manager.

        >>> tracer = Tracer("doc")
        >>> with tracer.span("outer") as outer:
        ...     with tracer.span("inner", n=3) as inner:
        ...         pass
        >>> [s.name for s in tracer.spans]
        ['outer', 'inner']
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _SpanHandle(self, name, attributes or None)

    def _start(self, name: str, attributes: dict | None) -> Span:
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            sequence = self._sequence
            self._sequence += 1
            span = Span(
                name=name,
                trace_id=self.trace_id,
                span_id=derive_span_id(
                    self.trace_id,
                    parent.span_id if parent else None,
                    name, sequence,
                ),
                parent_id=parent.span_id if parent else None,
                sequence=sequence,
                start=self._clock(),
                attributes=dict(attributes) if attributes else {},
            )
            self._spans.append(span)
            self._stack.append(span)
            return span

    def _finish(self, span: Span, *, error: bool) -> None:
        with self._lock:
            span.end = self._clock()
            if error:
                span.status = STATUS_ERROR
            # Close any dangling children too: a worker that raised mid
            # -span must not leave the stack pointing at dead frames.
            while self._stack and self._stack[-1] is not span:
                dangling = self._stack.pop()
                if dangling.end is None:
                    dangling.end = span.end
                    dangling.status = STATUS_ERROR
            if self._stack and self._stack[-1] is span:
                self._stack.pop()

    # ------------------------------------------------------------------
    # Worker-span adoption
    # ------------------------------------------------------------------

    def adopt(self, spans: list[Span],
              parent: Span | None = None) -> list[Span]:
        """Merge finished worker spans into this tracer.

        ``spans`` is one worker tracer's complete span list, in that
        tracer's start order. Roots are re-parented under ``parent``
        (or this tracer's current span), sequences are renumbered from
        this tracer's counter, and every span id is re-derived — so the
        merged tree is exactly what a serial execution would have
        recorded, provided callers adopt in submission order.
        """
        if not self.enabled or not spans:
            return []
        adopted: list[Span] = []
        with self._lock:
            if parent is None and self._stack:
                parent = self._stack[-1]
            id_map: dict[str, str] = {}
            parent_map: dict[str, Span] = {}
            for span in spans:
                if not span.finished:
                    raise ObservabilityError(
                        f"cannot adopt unfinished span {span.name!r}"
                    )
                if span.parent_id is None:
                    new_parent_id = parent.span_id if parent else None
                elif span.parent_id in id_map:
                    new_parent_id = id_map[span.parent_id]
                else:
                    raise ObservabilityError(
                        f"span {span.name!r} references parent "
                        f"{span.parent_id!r} outside the adopted batch"
                    )
                sequence = self._sequence
                self._sequence += 1
                clone = Span(
                    name=span.name,
                    trace_id=self.trace_id,
                    span_id=derive_span_id(self.trace_id, new_parent_id,
                                           span.name, sequence),
                    parent_id=new_parent_id,
                    sequence=sequence,
                    start=span.start,
                    end=span.end,
                    status=span.status,
                    attributes=dict(span.attributes),
                )
                id_map[span.span_id] = clone.span_id
                parent_map[clone.span_id] = clone
                self._spans.append(clone)
                adopted.append(clone)
        return adopted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Every recorded span, in start order."""
        with self._lock:
            return list(self._spans)

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        with self._lock:
            return self._stack[-1] if self._stack else None

    def find(self, name: str) -> list[Span]:
        """All spans recorded under one name."""
        return [span for span in self.spans if span.name == name]


#: The shared disabled tracer instrumented code falls back to when the
#: caller passed no tracer: one ``enabled`` check per span site.
NOOP_TRACER = Tracer("noop", enabled=False)


def active(tracer: "Tracer | None") -> Tracer:
    """The tracer to record into: the caller's, or the shared no-op."""
    return tracer if tracer is not None else NOOP_TRACER
