"""Declarative service-level objectives and the health verdict engine.

The DESY-style validation framework the ROADMAP points at needs more
than measurements — it needs *objectives*: versioned, machine-checkable
statements of what healthy looks like, evaluated over comparable
windows, producing a verdict someone can page on and an artifact
someone can replay. This module supplies both halves:

- :class:`SLOSpec` — a versioned JSON document declaring named
  :class:`Objective` rows over telemetry series (availability floors,
  latency-quantile ceilings, ratio ceilings/floors), each with a
  tolerated breach budget that separates *degraded* from *failing*;
- :func:`evaluate_slo` — the evaluator, a pure function of
  ``(spec, telemetry snapshot)`` returning a :class:`HealthReport`
  whose canonical JSON is byte-identical across replays of the same
  workload under a :class:`~repro.runtime.LogicalClock`.

Verdict semantics, per objective:

- ``ok`` — every evaluated window met the threshold (or the objective
  saw no traffic at all: no traffic is absence of evidence, not
  failure);
- ``degraded`` — some windows breached, but no more than the
  objective's ``tolerated_breach_fraction`` of them;
- ``failing`` — breaches exceeded the budget.

The report verdict is the worst objective verdict. Every breach
carries provenance: which window, what was observed, what the
threshold was — a verdict that cannot say *why* cannot be audited.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.canonical import canonical_document
from repro.errors import ObservabilityError
from repro.obs.telemetry import QUANTILE_GRID, quantile_label

#: Schema identity of the SLO spec document.
SLO_FORMAT = "repro-slo-spec"
SLO_SCHEMA_VERSION = 1

#: Schema identity of the health report document.
HEALTH_FORMAT = "repro-health-report"
HEALTH_SCHEMA_VERSION = 1

#: Objective kinds the engine evaluates.
KIND_AVAILABILITY = "availability"
KIND_QUANTILE_CEILING = "quantile_ceiling"
KIND_RATIO_CEILING = "ratio_ceiling"
KIND_RATIO_FLOOR = "ratio_floor"
OBJECTIVE_KINDS = (KIND_AVAILABILITY, KIND_QUANTILE_CEILING,
                   KIND_RATIO_CEILING, KIND_RATIO_FLOOR)

#: Objective / report verdicts, worst last.
VERDICT_OK = "ok"
VERDICT_DEGRADED = "degraded"
VERDICT_FAILING = "failing"
_VERDICT_RANK = {VERDICT_OK: 0, VERDICT_DEGRADED: 1,
                 VERDICT_FAILING: 2}

#: The tenant selector meaning "one evaluation per tenant found".
TENANT_EACH = "*"


@dataclass(frozen=True)
class Objective:
    """One declared objective over one or two telemetry series.

    ``kind`` selects the rule:

    - ``availability``: ``good / (good + bad) >= threshold``, where
      ``good``/``bad`` are the summed window totals of ``series`` and
      ``bad_series``;
    - ``quantile_ceiling``: the ``quantile`` readout of every window
      of ``series`` must be ``<= threshold`` (per-window breaches);
    - ``ratio_ceiling`` / ``ratio_floor``: the summed totals of
      ``series`` over ``bad_series`` (the denominator) must stay
      under / over ``threshold``.

    ``tenant`` restricts the series match to one tenant label, or
    :data:`TENANT_EACH` to expand into one evaluation per tenant
    present in the telemetry; empty matches the unlabelled aggregate.
    """

    name: str
    kind: str
    series: str
    threshold: float
    bad_series: str = ""
    quantile: float = 0.0
    tenant: str = ""
    tolerated_breach_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("objective needs a non-empty name")
        if self.kind not in OBJECTIVE_KINDS:
            raise ObservabilityError(
                f"objective {self.name!r} has unknown kind "
                f"{self.kind!r} (known: {OBJECTIVE_KINDS})"
            )
        if not self.series:
            raise ObservabilityError(
                f"objective {self.name!r} names no series"
            )
        if self.kind == KIND_QUANTILE_CEILING:
            if self.quantile not in QUANTILE_GRID:
                raise ObservabilityError(
                    f"objective {self.name!r} quantile "
                    f"{self.quantile} is not on the exact grid "
                    f"{QUANTILE_GRID}"
                )
        elif self.kind in (KIND_AVAILABILITY, KIND_RATIO_CEILING,
                           KIND_RATIO_FLOOR):
            if not self.bad_series:
                raise ObservabilityError(
                    f"objective {self.name!r} ({self.kind}) needs a "
                    f"bad_series / denominator series"
                )
        if self.kind in (KIND_AVAILABILITY, KIND_RATIO_FLOOR) \
                and not 0.0 <= self.threshold <= 1.0 \
                and self.kind == KIND_AVAILABILITY:
            raise ObservabilityError(
                f"objective {self.name!r} availability threshold must "
                f"be in [0, 1], got {self.threshold}"
            )
        if not 0.0 <= self.tolerated_breach_fraction <= 1.0:
            raise ObservabilityError(
                f"objective {self.name!r} tolerated_breach_fraction "
                f"must be in [0, 1], got "
                f"{self.tolerated_breach_fraction}"
            )

    def to_dict(self) -> dict:
        """Serialise for the spec document and the health report."""
        return {
            "name": self.name,
            "kind": self.kind,
            "series": self.series,
            "bad_series": self.bad_series,
            "quantile": self.quantile,
            "tenant": self.tenant,
            "threshold": self.threshold,
            "tolerated_breach_fraction":
                self.tolerated_breach_fraction,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Objective":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {"name", "kind", "series", "bad_series", "quantile",
                 "tenant", "threshold", "tolerated_breach_fraction"}
        unknown = set(record) - known
        if unknown:
            raise ObservabilityError(
                f"unknown objective fields: {sorted(unknown)}"
            )
        return cls(
            name=str(record.get("name", "")),
            kind=str(record.get("kind", "")),
            series=str(record.get("series", "")),
            threshold=float(record.get("threshold", 0.0)),
            bad_series=str(record.get("bad_series", "")),
            quantile=float(record.get("quantile", 0.0)),
            tenant=str(record.get("tenant", "")),
            tolerated_breach_fraction=float(
                record.get("tolerated_breach_fraction", 0.0)),
        )


@dataclass(frozen=True)
class SLOSpec:
    """A versioned set of objectives — the unit of health policy."""

    name: str
    objectives: tuple
    revision: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("SLO spec needs a non-empty name")
        if not self.objectives:
            raise ObservabilityError(
                f"SLO spec {self.name!r} declares no objectives"
            )
        seen: dict[str, int] = {}
        for objective in self.objectives:
            if objective.name in seen:
                raise ObservabilityError(
                    f"SLO spec {self.name!r} declares objective "
                    f"{objective.name!r} twice"
                )
            seen[objective.name] = 1
        if self.revision < 1:
            raise ObservabilityError(
                f"SLO spec revision must be >= 1, got {self.revision}"
            )
        object.__setattr__(self, "objectives", tuple(self.objectives))

    def to_dict(self) -> dict:
        """The versioned spec document."""
        return {
            "format": SLO_FORMAT,
            "schema_version": SLO_SCHEMA_VERSION,
            "name": self.name,
            "revision": self.revision,
            "objectives": [objective.to_dict()
                           for objective in self.objectives],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SLOSpec":
        """Validate the envelope and parse every objective."""
        if not isinstance(record, dict):
            raise ObservabilityError("SLO spec must be a JSON object")
        if record.get("format") != SLO_FORMAT:
            raise ObservabilityError(
                f"SLO spec format {record.get('format')!r} is not "
                f"{SLO_FORMAT!r}"
            )
        if record.get("schema_version") != SLO_SCHEMA_VERSION:
            raise ObservabilityError(
                f"SLO spec schema version "
                f"{record.get('schema_version')!r} is not "
                f"{SLO_SCHEMA_VERSION}"
            )
        objectives = record.get("objectives")
        if not isinstance(objectives, list):
            raise ObservabilityError(
                "SLO spec needs an 'objectives' list"
            )
        return cls(
            name=str(record.get("name", "")),
            revision=int(record.get("revision", 1)),
            objectives=tuple(Objective.from_dict(entry)
                             for entry in objectives),
        )

    @classmethod
    def load(cls, path) -> "SLOSpec":
        """Read and validate a spec document from ``path``."""
        try:
            record = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObservabilityError(
                f"cannot read SLO spec {path}: {exc}"
            ) from None
        return cls.from_dict(record)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _series_entries(snapshot: dict, name: str,
                    tenant: str) -> list[dict]:
    """Snapshot series matching one name and tenant selector."""
    matches = []
    for entry in snapshot.get("series", ()):
        if entry.get("name") != name:
            continue
        labels = entry.get("labels", {})
        if tenant and labels.get("tenant") != tenant:
            continue
        matches.append(entry)
    return matches


def _tenants_in(snapshot: dict) -> list[str]:
    """Every tenant label present in the snapshot, sorted."""
    tenants: dict[str, int] = {}
    for entry in snapshot.get("series", ()):
        tenant = entry.get("labels", {}).get("tenant")
        if tenant:
            tenants[str(tenant)] = 1
    return sorted(tenants)


def _windows_of(entries: list[dict]) -> list[dict]:
    """Every closed window across matched series, in time order."""
    windows = []
    for entry in entries:
        for window in entry.get("windows", ()):
            windows.append(window)
    windows.sort(key=lambda w: (w["start"], w["end"]))
    return windows


def _total(entries: list[dict]) -> float:
    """The summed window totals of matched series."""
    return sum(window["sum"] for window in _windows_of(entries))


def _verdict_for(breaches: int, evaluated: int,
                 tolerated_fraction: float) -> str:
    if breaches == 0:
        return VERDICT_OK
    if evaluated and breaches / evaluated <= tolerated_fraction:
        return VERDICT_DEGRADED
    return VERDICT_FAILING


def _evaluate_one(objective: Objective, tenant: str,
                  snapshot: dict) -> dict:
    """One objective against one concrete tenant selector."""
    entries = _series_entries(snapshot, objective.series, tenant)
    record = {
        "name": objective.name,
        "kind": objective.kind,
        "tenant": tenant,
        "series": objective.series,
        "threshold": objective.threshold,
        "breaches": [],
    }

    if objective.kind == KIND_QUANTILE_CEILING:
        windows = _windows_of(entries)
        label = quantile_label(objective.quantile)
        record["quantile"] = label
        record["windows_evaluated"] = len(windows)
        for window in windows:
            observed = window["quantiles"][label]
            if observed > objective.threshold:
                record["breaches"].append({
                    "window_start": window["start"],
                    "window_end": window["end"],
                    "observed": observed,
                    "threshold": objective.threshold,
                })
        record["observed"] = max(
            (window["quantiles"][label] for window in windows),
            default=0.0,
        )
        record["verdict"] = _verdict_for(
            len(record["breaches"]), len(windows),
            objective.tolerated_breach_fraction)
        return record

    # Ratio-style kinds: one aggregate comparison over summed totals.
    good = _total(entries)
    bad = _total(_series_entries(snapshot, objective.bad_series,
                                 tenant))
    record["windows_evaluated"] = len(_windows_of(entries))
    if objective.kind == KIND_AVAILABILITY:
        volume = good + bad
        observed = good / volume if volume else 1.0
        breached = volume > 0.0 and observed < objective.threshold
    elif objective.kind == KIND_RATIO_FLOOR:
        observed = good / bad if bad else 0.0
        breached = bad > 0.0 and observed < objective.threshold
    else:  # KIND_RATIO_CEILING
        observed = good / bad if bad else 0.0
        breached = bad > 0.0 and observed > objective.threshold
    record["observed"] = observed
    if breached:
        record["breaches"].append({
            "window_start": None,
            "window_end": None,
            "observed": observed,
            "threshold": objective.threshold,
        })
        record["verdict"] = VERDICT_FAILING
    else:
        record["verdict"] = VERDICT_OK
    return record


@dataclass
class HealthReport:
    """The evaluated health of one service run or window range."""

    spec: dict
    telemetry_window: dict
    objectives: list = field(default_factory=list)
    verdict: str = VERDICT_OK

    def to_dict(self) -> dict:
        """The schema-versioned report document."""
        return {
            "format": HEALTH_FORMAT,
            "schema_version": HEALTH_SCHEMA_VERSION,
            "slo": dict(self.spec),
            "telemetry_window": dict(self.telemetry_window),
            "objectives": [dict(entry) for entry in self.objectives],
            "verdict": self.verdict,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "HealthReport":
        """Inverse of :meth:`to_dict`; validates on the way in."""
        validate_health_report(record)
        return cls(
            spec=dict(record["slo"]),
            telemetry_window=dict(record["telemetry_window"]),
            objectives=[dict(entry)
                        for entry in record["objectives"]],
            verdict=str(record["verdict"]),
        )

    def to_json_bytes(self) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF.

        Byte-identical across replays of the same workload under a
        logical clock — the property the CI replay gate compares.
        """
        return canonical_document(self.to_dict())

    def save(self, path) -> None:
        """Write the report document to ``path``."""
        Path(path).write_bytes(self.to_json_bytes())

    @classmethod
    def load(cls, path) -> "HealthReport":
        """Read and validate a report document from ``path``."""
        try:
            record = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObservabilityError(
                f"cannot read health report {path}: {exc}"
            ) from None
        return cls.from_dict(record)

    @property
    def ok(self) -> bool:
        """True when no objective is degraded or failing."""
        return self.verdict == VERDICT_OK

    def exit_code(self) -> int:
        """0 ok, 1 degraded, 2 failing — the ``repro health`` code."""
        return _VERDICT_RANK[self.verdict]


def evaluate_slo(spec: SLOSpec, snapshot: dict) -> HealthReport:
    """Evaluate one spec against one telemetry snapshot.

    A pure function of its inputs: objectives with the
    :data:`TENANT_EACH` selector expand into one evaluation per tenant
    label found in the snapshot (sorted), and every evaluated row
    carries its breaches with window provenance.
    """
    evaluated: list[dict] = []
    for objective in spec.objectives:
        if objective.tenant == TENANT_EACH:
            tenants = _tenants_in(snapshot)
            if not tenants:
                evaluated.append(_evaluate_one(objective, "", snapshot))
                continue
            for tenant in tenants:
                evaluated.append(
                    _evaluate_one(objective, tenant, snapshot))
        else:
            evaluated.append(
                _evaluate_one(objective, objective.tenant, snapshot))
    worst = VERDICT_OK
    for row in evaluated:
        if _VERDICT_RANK[row["verdict"]] > _VERDICT_RANK[worst]:
            worst = row["verdict"]
    return HealthReport(
        spec=spec.to_dict(),
        telemetry_window=dict(snapshot.get("window", {})),
        objectives=evaluated,
        verdict=worst,
    )


def validate_health_report(record: dict) -> None:
    """Structural validation of one health report document."""
    if not isinstance(record, dict):
        raise ObservabilityError(
            "health report must be a JSON object")
    if record.get("format") != HEALTH_FORMAT:
        raise ObservabilityError(
            f"health report format {record.get('format')!r} is not "
            f"{HEALTH_FORMAT!r}"
        )
    if record.get("schema_version") != HEALTH_SCHEMA_VERSION:
        raise ObservabilityError(
            f"health report schema version "
            f"{record.get('schema_version')!r} is not "
            f"{HEALTH_SCHEMA_VERSION}"
        )
    if record.get("verdict") not in _VERDICT_RANK:
        raise ObservabilityError(
            f"health report verdict {record.get('verdict')!r} is not "
            f"one of {sorted(_VERDICT_RANK)}"
        )
    slo = record.get("slo")
    if not isinstance(slo, dict) or slo.get("format") != SLO_FORMAT:
        raise ObservabilityError(
            "health report carries no embedded SLO spec"
        )
    objectives = record.get("objectives")
    if not isinstance(objectives, list):
        raise ObservabilityError(
            "health report needs an 'objectives' list"
        )
    for row in objectives:
        if not isinstance(row, dict):
            raise ObservabilityError(
                f"malformed objective row: {row!r}")
        for key in ("name", "kind", "verdict", "observed",
                    "threshold", "breaches"):
            if key not in row:
                raise ObservabilityError(
                    f"objective row {row.get('name')!r} is missing "
                    f"{key!r}"
                )
        if row["verdict"] not in _VERDICT_RANK:
            raise ObservabilityError(
                f"objective {row['name']!r} has unknown verdict "
                f"{row['verdict']!r}"
            )
    if not isinstance(record.get("telemetry_window"), dict):
        raise ObservabilityError(
            "health report needs a 'telemetry_window' block"
        )


# ----------------------------------------------------------------------
# Rendering (the ``repro health`` view)
# ----------------------------------------------------------------------

_VERDICT_MARK = {VERDICT_OK: "+", VERDICT_DEGRADED: "~",
                 VERDICT_FAILING: "x"}


def render_health(report: HealthReport) -> str:
    """Plain-text rendering of one health report."""
    spec_name = report.spec.get("name", "?")
    revision = report.spec.get("revision", "?")
    lines = [
        f"health {report.verdict.upper()} — SLO {spec_name!r} "
        f"(revision {revision}), "
        f"{len(report.objectives)} objective(s)"
    ]
    for row in report.objectives:
        tenant = row.get("tenant") or "(all)"
        mark = _VERDICT_MARK[row["verdict"]]
        quantile = row.get("quantile")
        series = row["series"] + (f".{quantile}" if quantile else "")
        lines.append(
            f" {mark} {row['verdict']:<9} {row['name']} "
            f"[{tenant}] {series}: observed "
            f"{row['observed']} vs {row['threshold']} "
            f"({len(row['breaches'])} breach(es) over "
            f"{row.get('windows_evaluated', 0)} window(s))"
        )
        for breach in row["breaches"]:
            where = ("aggregate" if breach["window_start"] is None
                     else f"window [{breach['window_start']}, "
                          f"{breach['window_end']})")
            lines.append(
                f"     breach: {where} observed {breach['observed']} "
                f"vs {breach['threshold']}"
            )
    return "\n".join(lines)
