"""Metrics: counters, gauges, and fixed-bucket histograms.

The quantitative half of the observability layer: where spans record
*structure* (what nested under what, for how long), metrics record
*totals* — events reconstructed, conditions payloads read, lint
findings per rule, chunk latencies. A :class:`MetricsRegistry` owns
every instrument, keyed by ``(name, label set)``, and snapshots to
deterministic JSON.

Determinism convention: instruments whose name ends in ``_seconds`` or
``_utilization`` carry timing-derived values and are **normalized away**
in a deterministic snapshot (values and bucket occupancies zeroed,
observation *counts* kept — the count of observations is a property of
the computation, their durations are a property of the machine). All
other instruments must hold run-invariant values for the deterministic
export guarantee to hold; counting events satisfies that, sampling
clocks does not.

Counter increments are lock-protected so thread-pool workers
(``ExecutionPolicy(mode="thread")``) can share a registry without losing
updates; process-pool workers each see a copy-on-write clone and must
report totals back through their return values instead.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from dataclasses import dataclass

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

#: Name suffixes marking timing-derived instruments (normalized away in
#: deterministic snapshots).
TIMING_SUFFIXES = ("_seconds", "_utilization")


def is_timing_metric(name: str) -> bool:
    """True when ``name`` denotes a timing-derived instrument."""
    return name.endswith(TIMING_SUFFIXES)


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class _Instrument:
    """Shared identity of every metric: a name plus a label set."""

    name: str
    labels: tuple

    def label_dict(self) -> dict:
        """The label set as a plain dict for export."""
        return {key: value for key, value in self.labels}


class Counter(_Instrument):
    """A monotonically increasing event count."""

    def __init__(self, name: str, labels: tuple) -> None:
        super().__init__(name=name, labels=labels)
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the count; thread-safe."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """A point-in-time value (last write wins)."""

    def __init__(self, name: str, labels: tuple) -> None:
        super().__init__(name=name, labels=labels)
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value; thread-safe."""
        with self._lock:
            self.value = float(value)


class Histogram(_Instrument):
    """A fixed-bucket distribution of observed values.

    ``buckets`` are ascending *inclusive* upper bounds: an observation
    lands in the first bucket whose bound is >= the value (a value on
    an exact edge belongs to that edge's bucket); values above the last
    bound land in the overflow bucket. Bounds are fixed at creation so
    two runs of the same workload always bin identically.
    """

    def __init__(self, name: str, labels: tuple,
                 buckets: tuple = DEFAULT_BUCKETS) -> None:
        super().__init__(name=name, labels=labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bounds must strictly ascend, "
                f"got {bounds}"
            )
        self.buckets = bounds
        self._lock = threading.Lock()
        #: One count per bound, plus the trailing overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation; thread-safe."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> float:
        """The bucket upper bound covering the ``q``-quantile.

        A fixed-bucket histogram cannot recover exact sample values, so
        the readout is the *bound* of the bucket the quantile rank
        falls in — deterministic (no interpolation, no machine
        dependence) and conservative (never under-reports). Overflow
        observations answer ``inf``; an empty histogram answers 0.0.

        >>> h = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
        >>> for v in (0.5, 1.5, 1.5, 3.0):
        ...     h.observe(v)
        >>> h.quantile(0.5)
        2.0
        >>> h.quantile(1.0)
        4.0
        """
        if not 0.0 < q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in (0, 1], got {q}"
            )
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        # The 1-based rank of the order statistic the quantile names.
        rank = max(1, math.ceil(q * total))
        running = 0
        for index, bound in enumerate(self.buckets):
            running += counts[index]
            if running >= rank:
                return bound
        return float("inf")


class MetricsRegistry:
    """The per-run home of every instrument.

    Instruments are created on first use and shared thereafter:
    ``registry.counter("reco.events").inc()`` anywhere in the chain
    increments one count. Labels discriminate series under one name —
    ``registry.counter("lint.findings", code="DAS001")``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, _label_key(labels))
            return self._counters[key]

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, _label_key(labels))
            return self._gauges[key]

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``buckets`` only takes effect at creation; a later caller asking
        for different bounds under the same identity is a bug.
        """
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._histograms.get(key)
            if existing is None:
                existing = Histogram(name, _label_key(labels), buckets)
                self._histograms[key] = existing
            elif existing.buckets != tuple(float(b) for b in buckets):
                raise ObservabilityError(
                    f"histogram {name!r} already exists with bounds "
                    f"{existing.buckets}"
                )
            return existing

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self, *, deterministic: bool = False) -> dict:
        """The registry as one deterministic JSON-serialisable dict.

        Series are sorted by ``(name, labels)``; in deterministic mode,
        timing-derived instruments keep their observation counts but
        lose their machine-dependent values (see the module docstring).
        """
        with self._lock:
            counters = sorted(self._counters.values(),
                              key=lambda m: (m.name, m.labels))
            gauges = sorted(self._gauges.values(),
                            key=lambda m: (m.name, m.labels))
            histograms = sorted(self._histograms.values(),
                                key=lambda m: (m.name, m.labels))
        record: dict = {"counters": [], "gauges": [], "histograms": []}
        for counter in counters:
            record["counters"].append({
                "name": counter.name,
                "labels": counter.label_dict(),
                "value": counter.value,
            })
        for gauge in gauges:
            value = gauge.value
            if deterministic and is_timing_metric(gauge.name):
                value = 0.0
            record["gauges"].append({
                "name": gauge.name,
                "labels": gauge.label_dict(),
                "value": value,
            })
        for histogram in histograms:
            timing = deterministic and is_timing_metric(histogram.name)
            record["histograms"].append({
                "name": histogram.name,
                "labels": histogram.label_dict(),
                "buckets": list(histogram.buckets),
                "counts": ([0] * len(histogram.counts) if timing
                           else list(histogram.counts)),
                "count": histogram.count,
                "sum": 0.0 if timing else histogram.sum,
            })
        return record

    def to_json_bytes(self, *, deterministic: bool = False) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF."""
        return (json.dumps(self.snapshot(deterministic=deterministic),
                           indent=1, sort_keys=True) + "\n").encode("utf-8")


def render_metrics(snapshot: dict) -> str:
    """Plain-text rendering of one metrics snapshot.

    Label values are escaped Prometheus-style (backslash, quote, and
    newline) so a label carrying arbitrary text — a dataset title, a
    file path — can never corrupt the line structure of the rendering.
    For the full ``# HELP``/``# TYPE`` exposition document, see
    :func:`repro.obs.promexport.render_prometheus`.
    """
    from repro.obs.promexport import escape_label_value

    lines: list[str] = []

    def label_suffix(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(
            f'{k}="{escape_label_value(v)}"'
            for k, v in sorted(labels.items())
        )
        return "{" + inner + "}"

    for counter in snapshot.get("counters", []):
        lines.append(f"counter   {counter['name']}"
                     f"{label_suffix(counter['labels'])} "
                     f"= {counter['value']}")
    for gauge in snapshot.get("gauges", []):
        lines.append(f"gauge     {gauge['name']}"
                     f"{label_suffix(gauge['labels'])} "
                     f"= {gauge['value']:.6g}")
    for histogram in snapshot.get("histograms", []):
        lines.append(f"histogram {histogram['name']}"
                     f"{label_suffix(histogram['labels'])} "
                     f"count={histogram['count']} "
                     f"sum={histogram['sum']:.6g}")
        bounds = histogram["buckets"]
        counts = histogram["counts"]
        for bound, count in zip(bounds, counts):
            lines.append(f"            le {bound:g}: {count}")
        lines.append(f"            overflow: {counts[len(bounds)]}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
