"""Environment capture and the shared ``BENCH_*.json`` envelope.

Run evidence is incomplete without *where* it ran: interpreter, machine,
host, and start time. :func:`capture_environment` collects exactly that,
and every benchmark baseline at the repo root (``BENCH_parallel.json``,
``BENCH_lint.json``, ``BENCH_obs.json``) wraps its workloads in the one
envelope :func:`bench_envelope` builds — so trajectory files share a
schema and :func:`validate_bench_report` can pin it.

Deterministic exports drop ``started_at`` (the only wall-clock field):
two runs on the same host then capture byte-identical environments.
"""

from __future__ import annotations

import os
import platform
import time

from repro.errors import ObservabilityError

#: Schema identity of the shared benchmark envelope.
BENCH_FORMAT = "repro-bench-report"
BENCH_SCHEMA_VERSION = 1

#: Fields every environment capture must carry.
ENVIRONMENT_FIELDS = ("python", "implementation", "machine", "system",
                      "host", "cpu_count", "started_at")


def capture_environment(*, deterministic: bool = False) -> dict:
    """The execution environment as a JSON-serialisable record.

    ``deterministic`` empties the one wall-clock field (``started_at``)
    so the capture is byte-stable across runs on the same host.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "host": platform.node(),
        "cpu_count": os.cpu_count() or 1,
        "started_at": ("" if deterministic
                       else time.strftime("%Y-%m-%dT%H:%M:%S%z")),
    }


def bench_envelope(benchmark: str, **extra) -> dict:
    """A fresh benchmark record in the shared ``BENCH_*.json`` schema.

    Callers fill ``record["workloads"]`` with their named measurements;
    ``extra`` lands at the top level (e.g. ``target="src/repro"``).
    """
    record = {
        "schema": {"format": BENCH_FORMAT,
                   "version": BENCH_SCHEMA_VERSION},
        "benchmark": benchmark,
        "environment": capture_environment(),
        "workloads": {},
    }
    record.update(extra)
    return record


def validate_bench_report(record: dict) -> None:
    """Validate one benchmark record against the shared envelope.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    violation; extra keys beyond the envelope are allowed.
    """
    if not isinstance(record, dict):
        raise ObservabilityError("bench report must be a JSON object")
    schema = record.get("schema")
    if not isinstance(schema, dict):
        raise ObservabilityError("bench report has no 'schema' block")
    if schema.get("format") != BENCH_FORMAT:
        raise ObservabilityError(
            f"bench report format {schema.get('format')!r} is not "
            f"{BENCH_FORMAT!r}"
        )
    if schema.get("version") != BENCH_SCHEMA_VERSION:
        raise ObservabilityError(
            f"bench report schema version {schema.get('version')!r} "
            f"is not {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(record.get("benchmark"), str) \
            or not record["benchmark"]:
        raise ObservabilityError(
            "bench report needs a non-empty 'benchmark' name"
        )
    environment = record.get("environment")
    if not isinstance(environment, dict):
        raise ObservabilityError(
            "bench report has no 'environment' capture"
        )
    for field in ENVIRONMENT_FIELDS:
        if field not in environment:
            raise ObservabilityError(
                f"bench environment is missing {field!r}"
            )
    workloads = record.get("workloads")
    if not isinstance(workloads, dict):
        raise ObservabilityError("bench report has no 'workloads' map")
    for name, workload in workloads.items():
        if not isinstance(workload, dict):
            raise ObservabilityError(
                f"bench workload {name!r} must be a JSON object"
            )
