"""Prometheus text exposition of a metrics snapshot.

The bridge from the preservation-grade snapshot format (sorted,
canonical JSON — what replays compare) to the operational format every
scrape-based monitoring stack speaks: the Prometheus text exposition
format, version 0.0.4.

Compliance points this module gets right that a naive renderer misses:

- **Label escaping** — backslash, double-quote, and newline inside a
  label *value* must be escaped as ``\\\\``, ``\\"``, and ``\\n``; an
  unescaped value silently corrupts the scrape.
- **Name sanitisation** — repro metric names are dotted
  (``service.commits``); Prometheus names admit ``[a-zA-Z0-9_:]`` only,
  so dots become underscores.
- **Metadata lines** — each metric family is preceded by ``# HELP``
  and ``# TYPE`` lines; counters gain the ``_total`` suffix, and
  histograms expand into cumulative ``_bucket{le=...}`` series plus
  ``_sum`` and ``_count``, with the mandatory ``le="+Inf"`` bucket.
- **Value formatting** — values render via ``repr``/``str`` (shortest
  round-trip form), never a fixed precision that would destroy the
  determinism contract or the parse round-trip.

:func:`parse_prometheus` inverts the rendering closely enough to prove
the round trip in tests — escaping, bucket cumulation, and all.
"""

from __future__ import annotations

from repro.errors import ObservabilityError

#: The exposition format version this renderer targets.
EXPOSITION_VERSION = "0.0.4"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789_:"
)


def sanitize_metric_name(name: str) -> str:
    """A repro metric name as a legal Prometheus metric name."""
    if not name:
        raise ObservabilityError("metric name cannot be empty")
    cleaned = "".join(
        ch if ch in _NAME_OK else "_" for ch in name
    )
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape one label value per the exposition format.

    >>> escape_label_value('a"b\\\\c\\nd')
    'a\\\\"b\\\\\\\\c\\\\nd'
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                out.append(ch)
                out.append(nxt)
            index += 2
            continue
        out.append(ch)
        index += 1
    return "".join(out)


def _format_value(value) -> str:
    """One sample value in shortest round-trip form."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_block(labels: dict, extra: tuple = ()) -> str:
    """The ``{k="v",...}`` block, sorted, escaped; empty when bare."""
    pairs = [(str(key), str(labels[key])) for key in sorted(labels)]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in pairs
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """One metrics snapshot in Prometheus text exposition format.

    The input is a :meth:`MetricsRegistry.snapshot` dict. Families are
    emitted in sorted-name order with ``# HELP``/``# TYPE`` metadata;
    the output ends with exactly one trailing newline (the format's
    final-line requirement).
    """
    families: dict[str, dict] = {}

    def family(name: str, kind: str) -> dict:
        entry = families.get(name)
        if entry is None:
            entry = {"kind": kind, "samples": []}
            families[name] = entry
        elif entry["kind"] != kind:
            raise ObservabilityError(
                f"metric family {name!r} registered as both "
                f"{entry['kind']!r} and {kind!r}"
            )
        return entry

    for counter in snapshot.get("counters", ()):
        name = sanitize_metric_name(counter["name"]) + "_total"
        family(name, "counter")["samples"].append(
            (name + _label_block(counter["labels"]),
             counter["value"])
        )
    for gauge in snapshot.get("gauges", ()):
        name = sanitize_metric_name(gauge["name"])
        family(name, "gauge")["samples"].append(
            (name + _label_block(gauge["labels"]), gauge["value"])
        )
    for histogram in snapshot.get("histograms", ()):
        name = sanitize_metric_name(histogram["name"])
        entry = family(name, "histogram")
        labels = histogram["labels"]
        running = 0
        for bound, count in zip(histogram["buckets"],
                                histogram["counts"]):
            running += count
            entry["samples"].append(
                (name + "_bucket"
                 + _label_block(labels,
                                (("le", _format_value(bound)),)),
                 running)
            )
        entry["samples"].append(
            (name + "_bucket" + _label_block(labels, (("le", "+Inf"),)),
             histogram["count"])
        )
        entry["samples"].append(
            (name + "_sum" + _label_block(labels), histogram["sum"])
        )
        entry["samples"].append(
            (name + "_count" + _label_block(labels),
             histogram["count"])
        )

    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# HELP {name} repro metric {name}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for sample, value in entry["samples"]:
            lines.append(f"{sample} {_format_value(value)}")
    if not lines:
        return "# (no metrics recorded)\n"
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing (the round-trip proof)
# ----------------------------------------------------------------------

def _parse_labels(block: str) -> dict:
    """Parse one ``k="v",...`` label block body."""
    labels: dict[str, str] = {}
    index = 0
    while index < len(block):
        if block[index] == ",":
            index += 1
            continue
        eq = block.index("=", index)
        key = block[index:eq].strip()
        if block[eq + 1] != '"':
            raise ObservabilityError(
                f"label value for {key!r} is not quoted"
            )
        cursor = eq + 2
        raw = []
        while cursor < len(block):
            ch = block[cursor]
            if ch == "\\" and cursor + 1 < len(block):
                raw.append(block[cursor:cursor + 2])
                cursor += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            cursor += 1
        else:
            raise ObservabilityError(
                f"unterminated label value for {key!r}"
            )
        labels[key] = unescape_label_value("".join(raw))
        index = cursor + 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Parse exposition text back into families and samples.

    Returns ``{family: {"kind": ..., "samples": [(name, labels,
    value), ...]}}`` — enough structure for round-trip tests to
    compare against the snapshot the text was rendered from.
    """
    families: dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            current = families.setdefault(
                name, {"kind": kind.strip(), "samples": []}
            )
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value = float(value_text) if value_text != "+Inf" else value_text
        if current is None:
            raise ObservabilityError(
                f"sample {name!r} precedes any # TYPE line"
            )
        current["samples"].append((name, labels, value))
    return families
