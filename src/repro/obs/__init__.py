"""``repro.obs`` — structured tracing, metrics, and run reports.

The observability layer of the processing chain: :class:`Tracer`/
:class:`Span` record what executed and how it nested,
:class:`MetricsRegistry` counts what happened, and :class:`RunReport`
bundles both with an environment capture into a schema-versioned,
provenance-linked JSON artifact a :class:`PreservationArchive` can hold
next to the data it describes. Deterministic exports are byte-identical
across runs of the same seeded workload, so run evidence is
fixity-checkable like any other preserved content.
"""

from repro.obs.env import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    ENVIRONMENT_FIELDS,
    bench_envelope,
    capture_environment,
    validate_bench_report,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    is_timing_metric,
    render_metrics,
)
from repro.obs.report import (
    REPORT_FORMAT,
    REPORT_SCHEMA_VERSION,
    RUN_REPORT_KIND,
    RunReport,
    attach_report_to_archive,
    export_spans,
    link_run_report,
    load_report_from_archive,
    render_trace,
    validate_run_report,
)
from repro.obs.trace import (
    NOOP_TRACER,
    Span,
    Tracer,
    active,
    derive_span_id,
)

__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA_VERSION",
    "Counter",
    "DEFAULT_BUCKETS",
    "ENVIRONMENT_FIELDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "REPORT_FORMAT",
    "REPORT_SCHEMA_VERSION",
    "RUN_REPORT_KIND",
    "RunReport",
    "Span",
    "Tracer",
    "active",
    "attach_report_to_archive",
    "bench_envelope",
    "capture_environment",
    "derive_span_id",
    "export_spans",
    "is_timing_metric",
    "link_run_report",
    "load_report_from_archive",
    "render_metrics",
    "render_trace",
    "validate_bench_report",
    "validate_run_report",
]
