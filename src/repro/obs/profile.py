"""Span profiling: self/cumulative time over the recorded span tree.

A trace answers "what executed"; a profile answers "where did the time
go". This module folds the span tree of a :class:`~repro.obs.RunReport`
into a deterministic profile: spans are grouped by *name path* (the
chain of span names from the root down), and each node carries call
counts plus cumulative and self time in integer microseconds.

Two invariants make the profile preservable evidence rather than a
debugging convenience:

1. **Exact telescoping** — ``self == cum - sum(child cums)`` at every
   node, with integer microsecond arithmetic, so the self-time totals
   of any subtree sum *exactly* to that subtree root's cumulative
   time. A node whose children's rounded times exceed its own is
   widened to the children's total (never clamped), keeping the
   identity exact instead of approximately true.
2. **Deterministic fallback** — a report built deterministically has
   all durations normalized to zero; the profile then weights nodes by
   *call counts* instead and says so in its ``unit`` field, so replay
   CI can byte-compare profile exports the same way it compares event
   logs.

Exports: canonical JSON (:meth:`SpanProfile.to_json_bytes`), collapsed
stacks compatible with Brendan Gregg's ``flamegraph.pl``
(:meth:`SpanProfile.collapsed`), and an ASCII table
(:func:`render_profile`) behind ``repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.canonical import canonical_document, canonical_text
from repro.errors import ObservabilityError

#: Schema identity of the profile document.
PROFILE_FORMAT = "repro-span-profile"
PROFILE_SCHEMA_VERSION = 1

#: Weight units a profile can carry.
UNIT_MICROSECONDS = "microseconds"
UNIT_CALLS = "calls"

#: Frame separator of the collapsed-stack format.
_FRAME_SEP = ";"


def _span_us(duration: float) -> int:
    """One span's duration as integer microseconds (round-half-even)."""
    return int(round(float(duration) * 1_000_000.0))


@dataclass
class ProfileNode:
    """One aggregation point: every span sharing one name path."""

    path: tuple
    calls: int = 0
    errors: int = 0
    cum_us: int = 0
    self_us: int = 0

    @property
    def name(self) -> str:
        """The leaf frame of this node's path."""
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Nesting depth (roots are depth 0)."""
        return len(self.path) - 1

    def to_dict(self) -> dict:
        """Serialise for the profile document."""
        return {
            "path": list(self.path),
            "calls": self.calls,
            "errors": self.errors,
            "cum_us": self.cum_us,
            "self_us": self.self_us,
        }


@dataclass
class SpanProfile:
    """The folded profile of one run's span tree."""

    trace_id: str
    unit: str
    nodes: list = field(default_factory=list)

    @classmethod
    def from_spans(cls, spans: list[dict], *, trace_id: str = "trace",
                   deterministic: bool = False) -> "SpanProfile":
        """Fold exported span records into a profile.

        ``spans`` are run-report span records (dicts with ``name``,
        ``span_id``, ``parent_id``, ``duration``, ``status``), ordered
        so parents precede children — the order
        :func:`~repro.obs.report.export_spans` guarantees.
        """
        by_id: dict[str, dict] = {}
        paths: dict[str, tuple] = {}
        children: dict[str | None, list[dict]] = {}
        for span in spans:
            parent_id = span["parent_id"]
            if parent_id is not None and parent_id not in by_id:
                raise ObservabilityError(
                    f"span {span['name']!r} references parent "
                    f"{parent_id!r} which does not precede it"
                )
            by_id[span["span_id"]] = span
            parent_path = paths[parent_id] if parent_id else ()
            paths[span["span_id"]] = parent_path + (span["name"],)
            children.setdefault(parent_id, []).append(span)

        # Bottom-up pass (children carry higher sequence numbers, so a
        # reverse sweep sees every child before its parent): a span's
        # cumulative microseconds are its own rounded duration, widened
        # to its children's total where rounding made that larger, so
        # the telescoping identity holds in exact integer arithmetic.
        cum_us: dict[str, int] = {}
        self_us: dict[str, int] = {}
        for span in reversed(spans):
            span_id = span["span_id"]
            child_total = sum(
                cum_us[child["span_id"]]
                for child in children.get(span_id, ())
            )
            own = max(_span_us(span["duration"]), child_total)
            cum_us[span_id] = own
            self_us[span_id] = own - child_total

        nodes: dict[tuple, ProfileNode] = {}
        for span in spans:
            path = paths[span["span_id"]]
            node = nodes.get(path)
            if node is None:
                node = ProfileNode(path=path)
                nodes[path] = node
            node.calls += 1
            if span["status"] != "ok":
                node.errors += 1
            node.cum_us += cum_us[span["span_id"]]
            node.self_us += self_us[span["span_id"]]

        unit = UNIT_CALLS if deterministic else UNIT_MICROSECONDS
        ordered = [nodes[path] for path in sorted(nodes)]
        return cls(trace_id=trace_id, unit=unit, nodes=ordered)

    @classmethod
    def from_report(cls, report) -> "SpanProfile":
        """Profile one :class:`~repro.obs.RunReport`."""
        return cls.from_spans(
            report.spans,
            trace_id=report.trace_id,
            deterministic=report.deterministic,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def deterministic(self) -> bool:
        """True when weights are call counts, not clock readings."""
        return self.unit == UNIT_CALLS

    def root_nodes(self) -> list:
        """The depth-0 nodes of the profile."""
        return [node for node in self.nodes if node.depth == 0]

    @property
    def total_us(self) -> int:
        """Cumulative microseconds across every root node.

        Equal — exactly — to the sum of every node's ``self_us``; the
        telescoping identity the collapsed export relies on.
        """
        return sum(node.cum_us for node in self.root_nodes())

    def _weight(self, node: ProfileNode) -> int:
        return node.calls if self.deterministic else node.self_us

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack lines (``flamegraph.pl`` input format).

        One ``frame;frame;frame weight`` line per node with non-zero
        weight, sorted by path. Weights are self-microseconds (or calls
        for deterministic reports); their sum equals :attr:`total_us`
        (or total calls) by construction.
        """
        lines = []
        for node in self.nodes:
            weight = self._weight(node)
            if weight <= 0:
                continue
            lines.append(
                _FRAME_SEP.join(node.path) + " " + str(weight)
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """The schema-versioned profile document."""
        return {
            "format": PROFILE_FORMAT,
            "schema_version": PROFILE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "unit": self.unit,
            "total_us": self.total_us,
            "n_nodes": len(self.nodes),
            "nodes": [node.to_dict() for node in self.nodes],
        }

    def to_json_bytes(self) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF."""
        return canonical_document(self.to_dict())

    def to_json_text(self) -> str:
        """The profile document as canonical text."""
        return canonical_text(self.to_dict())


def validate_profile(record: dict) -> None:
    """Structural validation of one profile document.

    Checks the envelope, node shapes, path prefix links, and the
    telescoping identity ``self == cum - sum(child cums)`` node by
    node. Raises :class:`~repro.errors.ObservabilityError` on the
    first violation.
    """
    if not isinstance(record, dict):
        raise ObservabilityError("profile must be a JSON object")
    if record.get("format") != PROFILE_FORMAT:
        raise ObservabilityError(
            f"profile format {record.get('format')!r} is not "
            f"{PROFILE_FORMAT!r}"
        )
    if record.get("schema_version") != PROFILE_SCHEMA_VERSION:
        raise ObservabilityError(
            f"profile schema version "
            f"{record.get('schema_version')!r} is not "
            f"{PROFILE_SCHEMA_VERSION}"
        )
    if record.get("unit") not in (UNIT_MICROSECONDS, UNIT_CALLS):
        raise ObservabilityError(
            f"profile unit {record.get('unit')!r} is unknown"
        )
    nodes = record.get("nodes")
    if not isinstance(nodes, list):
        raise ObservabilityError("profile needs a 'nodes' list")
    child_cums: dict[tuple, int] = {}
    paths: dict[tuple, dict] = {}
    for node in nodes:
        if not isinstance(node, dict):
            raise ObservabilityError(f"malformed node: {node!r}")
        for key in ("path", "calls", "errors", "cum_us", "self_us"):
            if key not in node:
                raise ObservabilityError(
                    f"profile node is missing {key!r}: {node!r}"
                )
        path = tuple(node["path"])
        if not path:
            raise ObservabilityError("profile node has an empty path")
        if path in paths:
            raise ObservabilityError(
                f"duplicate profile path {list(path)!r}"
            )
        paths[path] = node
        if len(path) > 1:
            child_cums[path[:-1]] = (
                child_cums.get(path[:-1], 0) + int(node["cum_us"])
            )
    for path in sorted(paths):
        if len(path) > 1 and path[:-1] not in paths:
            raise ObservabilityError(
                f"profile path {list(path)!r} has no parent node"
            )
        node = paths[path]
        expected = int(node["cum_us"]) - child_cums.get(path, 0)
        if int(node["self_us"]) != expected:
            raise ObservabilityError(
                f"profile node {list(path)!r} breaks the telescoping "
                f"identity: self_us {node['self_us']} != cum_us "
                f"{node['cum_us']} - children {child_cums.get(path, 0)}"
            )
    roots_total = sum(int(node["cum_us"]) for p, node in sorted(paths.items())
                      if len(p) == 1)
    if record.get("total_us") != roots_total:
        raise ObservabilityError(
            f"profile total_us {record.get('total_us')!r} does not "
            f"match the root sum {roots_total}"
        )


# ----------------------------------------------------------------------
# Rendering (the ``repro profile`` view)
# ----------------------------------------------------------------------

def render_profile(profile: SpanProfile) -> str:
    """ASCII table of the profile, hottest self-weight first."""
    unit = "calls" if profile.deterministic else "us"
    header = (
        f"profile {profile.trace_id!r} — {len(profile.nodes)} "
        f"node(s), total {profile.total_us} us"
        + (" (deterministic: weights are call counts)"
           if profile.deterministic else "")
    )
    lines = [header,
             f"{'self(' + unit + ')':>12} {'cum(us)':>12} "
             f"{'calls':>7} {'errors':>7}  path"]
    ranked = sorted(
        profile.nodes,
        key=lambda node: (-profile._weight(node), node.path),
    )
    for node in ranked:
        lines.append(
            f"{profile._weight(node):>12} {node.cum_us:>12} "
            f"{node.calls:>7} {node.errors:>7}  "
            + _FRAME_SEP.join(node.path)
        )
    return "\n".join(lines)
