"""Digitisation: simulation output -> the RAW data tier.

The digitiser converts particle traversals into anonymous detector hits —
tracker space points along each helix, calorimeter cell energies, muon
chamber segments — plus electronic noise. Crucially, **truth links do not
survive digitisation**: the RAW tier contains only what the detector would
actually read out, so downstream reconstruction has to do genuine pattern
recognition, exactly as the paper describes the Reconstruction step.

Helix model
-----------
In a solenoid field ``B`` a particle of charge ``q`` and transverse
momentum ``pt`` follows, to first order in the sagitta, the azimuth

    phi(r) = phi0 + d0 / r - q * K * B * r / (2 * pt)

where ``K = 0.0003 GeV / (T mm)`` and ``d0`` is the signed transverse
impact parameter. Longitudinally ``z(r) = z0 + r * sinh(eta)``. Both are
linear in the fit basis ``(1, 1/r, r)`` and ``(1, r)``, which is what the
track fitter exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.detector.geometry import DetectorGeometry
from repro.detector.simulation import SimulatedEvent, Traversal
from repro.errors import DetectorError
from repro.kinematics.fourvector import wrap_phi

#: Curvature constant: dphi/dr = -q * KAPPA * B / (2 pt), r in mm, B in T.
KAPPA = 0.0003


@dataclass(frozen=True)
class TrackerHit:
    """One tracker space point: ``(layer, r, phi, z)`` with noise applied."""

    layer: int
    r_mm: float
    phi: float
    z_mm: float

    def to_dict(self) -> dict:
        """Serialise for the RAW file format."""
        return {"layer": self.layer, "r": self.r_mm, "phi": self.phi,
                "z": self.z_mm}

    @classmethod
    def from_dict(cls, record: dict) -> "TrackerHit":
        """Inverse of :meth:`to_dict`."""
        return cls(int(record["layer"]), float(record["r"]),
                   float(record["phi"]), float(record["z"]))


@dataclass(frozen=True)
class CaloCellHit:
    """Energy recorded in one calorimeter cell."""

    subdetector: str
    ieta: int
    iphi: int
    energy: float

    def to_dict(self) -> dict:
        """Serialise for the RAW file format."""
        return {"sub": self.subdetector, "ieta": self.ieta,
                "iphi": self.iphi, "e": self.energy}

    @classmethod
    def from_dict(cls, record: dict) -> "CaloCellHit":
        """Inverse of :meth:`to_dict`."""
        return cls(str(record["sub"]), int(record["ieta"]),
                   int(record["iphi"]), float(record["e"]))


@dataclass(frozen=True)
class MuonChamberHit:
    """A muon-chamber segment: station index plus direction estimate."""

    station: int
    eta: float
    phi: float

    def to_dict(self) -> dict:
        """Serialise for the RAW file format."""
        return {"station": self.station, "eta": self.eta, "phi": self.phi}

    @classmethod
    def from_dict(cls, record: dict) -> "MuonChamberHit":
        """Inverse of :meth:`to_dict`."""
        return cls(int(record["station"]), float(record["eta"]),
                   float(record["phi"]))


@dataclass
class RawEvent:
    """The RAW data tier for one event: detector signals only."""

    run_number: int
    event_number: int
    bunch_crossing: int
    tracker_hits: list[TrackerHit] = field(default_factory=list)
    calo_hits: list[CaloCellHit] = field(default_factory=list)
    muon_hits: list[MuonChamberHit] = field(default_factory=list)

    def approximate_size_bytes(self) -> int:
        """Rough persistent size, used by tier-volume accounting."""
        return (
            64
            + 32 * len(self.tracker_hits)
            + 24 * len(self.calo_hits)
            + 24 * len(self.muon_hits)
        )

    def to_dict(self) -> dict:
        """Serialise for the RAW JSON-lines format."""
        return {
            "run": self.run_number,
            "event": self.event_number,
            "bx": self.bunch_crossing,
            "tracker_hits": [h.to_dict() for h in self.tracker_hits],
            "calo_hits": [h.to_dict() for h in self.calo_hits],
            "muon_hits": [h.to_dict() for h in self.muon_hits],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RawEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_number=int(record["run"]),
            event_number=int(record["event"]),
            bunch_crossing=int(record["bx"]),
            tracker_hits=[TrackerHit.from_dict(h)
                          for h in record.get("tracker_hits", [])],
            calo_hits=[CaloCellHit.from_dict(h)
                       for h in record.get("calo_hits", [])],
            muon_hits=[MuonChamberHit.from_dict(h)
                       for h in record.get("muon_hits", [])],
        )


@dataclass(frozen=True)
class DigitizerConfig:
    """Noise and inefficiency parameters of the readout electronics."""

    #: Probability that any given tracker layer misses a crossing particle.
    layer_inefficiency: float = 0.02
    #: Mean number of random tracker noise hits per event.
    tracker_noise_hits: float = 3.0
    #: Gaussian noise per calorimeter cell, GeV.
    calo_cell_noise: float = 0.05
    #: Zero-suppression threshold for calorimeter cells, GeV.
    calo_cell_threshold: float = 0.15
    #: Mean number of noise calorimeter cells surviving zero suppression.
    calo_noise_cells: float = 2.0


class Digitizer:
    """Converts :class:`SimulatedEvent` records to :class:`RawEvent`."""

    def __init__(
        self,
        geometry: DetectorGeometry,
        config: DigitizerConfig | None = None,
        run_number: int = 1,
        seed: int = 4242,
    ) -> None:
        self.geometry = geometry
        self.config = config if config is not None else DigitizerConfig()
        self.run_number = run_number
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._bx = 0

    # ------------------------------------------------------------------
    # Helix hit generation
    # ------------------------------------------------------------------

    def _tracker_hits_for(self, traversal: Traversal) -> list[TrackerHit]:
        tracker = self.geometry.tracker
        rng = self._rng
        momentum = traversal.momentum
        pt = momentum.pt
        if pt <= 0.0:
            raise DetectorError("cannot digitise a zero-pt traversal")
        eta = momentum.eta
        phi0 = momentum.phi
        x0, y0, z0 = traversal.origin
        # Signed transverse impact parameter of a straight line through
        # (x0, y0) with direction phi0.
        d0 = x0 * math.sin(phi0) - y0 * math.cos(phi0)
        curvature = (
            -traversal.charge * KAPPA * self.geometry.bfield_tesla / (2.0 * pt)
        )
        transverse_origin = math.hypot(x0, y0)
        sinh_eta = math.sinh(eta)
        hits = []
        for layer, radius in enumerate(tracker.layer_radii_mm):
            if radius <= transverse_origin:
                # Particle produced outside this layer (displaced decay).
                continue
            if rng.uniform() < self.config.layer_inefficiency:
                continue
            z = z0 + radius * sinh_eta
            # Longitudinal acceptance from the eta_max envelope.
            if abs(z) > radius * math.sinh(tracker.eta_max) + 200.0:
                continue
            phi_noise = rng.normal(0.0, tracker.hit_resolution_mm / radius)
            z_noise = rng.normal(0.0, 3.0 * tracker.hit_resolution_mm)
            phi = wrap_phi(phi0 + d0 / radius + curvature * radius
                           + phi_noise)
            hits.append(TrackerHit(layer=layer, r_mm=radius, phi=phi,
                                   z_mm=z + z_noise))
        return hits

    def _noise_tracker_hits(self) -> list[TrackerHit]:
        tracker = self.geometry.tracker
        rng = self._rng
        n_noise = int(rng.poisson(self.config.tracker_noise_hits))
        hits = []
        for _ in range(n_noise):
            layer = int(rng.integers(0, len(tracker.layer_radii_mm)))
            radius = tracker.layer_radii_mm[layer]
            hits.append(TrackerHit(
                layer=layer,
                r_mm=radius,
                phi=float(rng.uniform(-math.pi, math.pi)),
                z_mm=float(rng.uniform(-2500.0, 2500.0)),
            ))
        return hits

    # ------------------------------------------------------------------
    # Calorimeter cells
    # ------------------------------------------------------------------

    def _cell_index(self, subdetector_name: str, eta: float,
                    phi: float) -> tuple[int, int] | None:
        sub = self.geometry.subdetectors[subdetector_name]
        if abs(eta) > sub.eta_max or sub.eta_cells == 0:
            return None
        ieta = int((eta + sub.eta_max) / (2.0 * sub.eta_max) * sub.eta_cells)
        ieta = min(max(ieta, 0), sub.eta_cells - 1)
        iphi = int((phi + math.pi) / (2.0 * math.pi) * sub.phi_cells)
        iphi = min(max(iphi, 0), sub.phi_cells - 1)
        return ieta, iphi

    def cell_center(self, subdetector_name: str, ieta: int,
                    iphi: int) -> tuple[float, float]:
        """The (eta, phi) centre of a cell — used by clustering."""
        sub = self.geometry.subdetectors[subdetector_name]
        eta = -sub.eta_max + (ieta + 0.5) * (2.0 * sub.eta_max
                                             / sub.eta_cells)
        phi = -math.pi + (iphi + 0.5) * (2.0 * math.pi / sub.phi_cells)
        return eta, phi

    def _calo_cells(self, sim_event: SimulatedEvent) -> list[CaloCellHit]:
        rng = self._rng
        cells: dict[tuple[str, int, int], float] = {}
        for deposit in sim_event.deposits:
            index = self._cell_index(deposit.subdetector, deposit.eta,
                                     deposit.phi)
            if index is None:
                continue
            # Split the shower over a 1+neighbour footprint: 80% core,
            # 20% shared with a random adjacent cell in phi.
            core_key = (deposit.subdetector, index[0], index[1])
            cells[core_key] = cells.get(core_key, 0.0) + 0.8 * deposit.measured_energy
            sub = self.geometry.subdetectors[deposit.subdetector]
            neighbour_phi = (index[1] + int(rng.choice([-1, 1]))) % sub.phi_cells
            neighbour_key = (deposit.subdetector, index[0], neighbour_phi)
            cells[neighbour_key] = (
                cells.get(neighbour_key, 0.0) + 0.2 * deposit.measured_energy
            )
        # Electronic noise on hit cells.
        hits = []
        for (sub_name, ieta, iphi), energy in cells.items():
            noisy = energy + rng.normal(0.0, self.config.calo_cell_noise)
            if noisy >= self.config.calo_cell_threshold:
                hits.append(CaloCellHit(sub_name, ieta, iphi, noisy))
        # Pure-noise cells.
        for sub_name in ("ecal", "hcal"):
            if sub_name not in self.geometry.subdetectors:
                continue
            sub = self.geometry.subdetectors[sub_name]
            n_noise = int(rng.poisson(self.config.calo_noise_cells))
            for _ in range(n_noise):
                hits.append(CaloCellHit(
                    sub.name,
                    int(rng.integers(0, sub.eta_cells)),
                    int(rng.integers(0, sub.phi_cells)),
                    float(self.config.calo_cell_threshold
                          + rng.exponential(0.1)),
                ))
        return hits

    # ------------------------------------------------------------------
    # Muon chambers
    # ------------------------------------------------------------------

    def _muon_hits(self, sim_event: SimulatedEvent) -> list[MuonChamberHit]:
        muon_system = self.geometry.muon_system
        rng = self._rng
        hits = []
        for traversal in sim_event.traversals:
            if not traversal.reaches_muon_system:
                continue
            for station, radius in enumerate(muon_system.layer_radii_mm):
                if rng.uniform() < self.config.layer_inefficiency:
                    continue
                angular_noise = muon_system.hit_resolution_mm / radius
                hits.append(MuonChamberHit(
                    station=station,
                    eta=traversal.momentum.eta + float(
                        rng.normal(0.0, 5.0 * angular_noise)),
                    phi=wrap_phi(traversal.momentum.phi + float(
                        rng.normal(0.0, angular_noise))),
                ))
        return hits

    # ------------------------------------------------------------------

    def digitize(self, sim_event: SimulatedEvent) -> RawEvent:
        """Produce the RAW record for one simulated event."""
        self._bx += 1
        raw = RawEvent(
            run_number=self.run_number,
            event_number=sim_event.event_number,
            bunch_crossing=self._bx,
        )
        for traversal in sim_event.traversals:
            raw.tracker_hits.extend(self._tracker_hits_for(traversal))
        raw.tracker_hits.extend(self._noise_tracker_hits())
        raw.calo_hits.extend(self._calo_cells(sim_event))
        raw.muon_hits.extend(self._muon_hits(sim_event))
        return raw

    def digitize_many(self, sim_events: list[SimulatedEvent]) -> list[RawEvent]:
        """Digitise a list of simulated events in order."""
        return [self.digitize(event) for event in sim_events]

    def digitize_many_batch(
            self, sim_events: list[SimulatedEvent]) -> list[RawEvent]:
        """Columnar twin of :meth:`digitize_many`: random draws are
        batched per phase (see :mod:`repro.columnar.kernels`), so output
        is statistically — not bitwise — equivalent to the scalar path.
        Advances the bunch-crossing counter exactly as the scalar loop.
        """
        from repro.columnar.kernels import digitize_batch

        return digitize_batch(self, sim_events)

    def describe(self) -> dict:
        """Provenance description of the digitiser configuration."""
        return {
            "digitizer": "repro-digi",
            "version": "1.0.0",
            "run_number": self.run_number,
            "layer_inefficiency": self.config.layer_inefficiency,
            "calo_cell_threshold": self.config.calo_cell_threshold,
        }
