"""Transport of truth particles through the detector.

:class:`DetectorSimulation` converts a :class:`~repro.generation.GenEvent`
into a :class:`SimulatedEvent`: the set of charged-particle traversals that
will make tracker hits, the muon-system traversals, and the calorimeter
energy deposits. Truth links are retained *here* (they are needed for
efficiency studies and for the truth-vs-reco fidelity benchmarks) but are
deliberately dropped at digitisation: the RAW tier, as in a real experiment,
carries detector signals only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.detector.geometry import DetectorGeometry
from repro.detector.response import CaloResponse, EfficiencyCurve
from repro.generation.hepmc import GenEvent, GenParticle
from repro.kinematics import FourVector, ParticleTable, default_particle_table

#: PDG ids of particles that never leave a detector signal.
INVISIBLE_PDG_IDS = frozenset({12, -12, 14, -14, 16, -16, 1000022, -1000022})

#: Fraction of a charged hadron's energy deposited in the ECAL.
_HADRON_ECAL_FRACTION = 0.25

#: Mean ionisation energy a muon leaves in the calorimeters, GeV.
_MUON_MIP_ENERGY = 3.0


@dataclass(frozen=True)
class Traversal:
    """A charged particle crossing the tracker (and maybe muon system).

    ``origin`` is the production point in mm; ``truth_index`` links back to
    the generator record for efficiency bookkeeping.
    """

    truth_index: int
    pdg_id: int
    charge: float
    momentum: FourVector
    origin: tuple[float, float, float]
    reaches_muon_system: bool


@dataclass(frozen=True)
class CaloDeposit:
    """An energy deposit in one calorimeter, pre-digitisation.

    ``measured_energy`` already includes the calorimeter resolution
    smearing; the digitiser distributes it over cells and adds noise.
    """

    truth_index: int
    subdetector: str
    eta: float
    phi: float
    measured_energy: float


@dataclass
class SimulatedEvent:
    """Simulation output for one event, with truth links intact."""

    event_number: int
    process_name: str
    primary_vertex: tuple[float, float, float]
    traversals: list[Traversal] = field(default_factory=list)
    deposits: list[CaloDeposit] = field(default_factory=list)
    truth: GenEvent | None = None

    def traversal_for(self, truth_index: int) -> Traversal | None:
        """The traversal made by a given truth particle, if any."""
        for traversal in self.traversals:
            if traversal.truth_index == truth_index:
                return traversal
        return None


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of the fast simulation."""

    track_efficiency: EfficiencyCurve = EfficiencyCurve(
        plateau=0.97, threshold=0.5, width=0.15
    )
    muon_efficiency: EfficiencyCurve = EfficiencyCurve(
        plateau=0.95, threshold=3.0, width=0.8
    )
    ecal_response: CaloResponse = CaloResponse(
        stochastic_term=0.10, constant_term=0.007
    )
    hcal_response: CaloResponse = CaloResponse(
        stochastic_term=0.50, constant_term=0.03
    )
    #: Minimum pt for a charged particle to cross the tracker at all.
    min_track_pt: float = 0.2
    #: Minimum pseudorapidity for forward spectrometers (0 disables).
    eta_min: float = 0.0
    #: Beam-spot z spread used when the generator did not set a vertex, mm.
    beamspot_sigma_z_mm: float = 35.0
    beamspot_sigma_xy_mm: float = 0.015


class DetectorSimulation:
    """Fast simulation of one detector geometry.

    >>> from repro.detector import generic_lhc_detector
    >>> sim = DetectorSimulation(generic_lhc_detector(), seed=7)
    """

    def __init__(
        self,
        geometry: DetectorGeometry,
        config: SimulationConfig | None = None,
        table: ParticleTable | None = None,
        seed: int = 42,
    ) -> None:
        self.geometry = geometry
        self.config = config if config is not None else SimulationConfig()
        self.table = table if table is not None else default_particle_table()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def _in_acceptance(self, particle: GenParticle, eta_max: float) -> bool:
        eta = particle.momentum.eta
        if math.isinf(eta):
            return False
        if abs(eta) > eta_max:
            return False
        if self.config.eta_min > 0.0 and abs(eta) < self.config.eta_min:
            return False
        return True

    def _charge_of(self, pdg_id: int) -> float:
        if pdg_id in self.table:
            return self.table.by_id(pdg_id).charge
        # Unknown exotics are treated as neutral and invisible.
        return 0.0

    def _is_visible(self, particle: GenParticle) -> bool:
        if particle.pdg_id in INVISIBLE_PDG_IDS:
            return False
        if particle.pdg_id not in self.table:
            return False
        return True

    # ------------------------------------------------------------------

    def simulate(self, event: GenEvent) -> SimulatedEvent:
        """Run the fast simulation over one truth event."""
        rng = self._rng
        primary_vertex = (
            float(rng.normal(0.0, self.config.beamspot_sigma_xy_mm)),
            float(rng.normal(0.0, self.config.beamspot_sigma_xy_mm)),
            float(rng.normal(0.0, self.config.beamspot_sigma_z_mm)),
        )
        sim_event = SimulatedEvent(
            event_number=event.event_number,
            process_name=event.process_name,
            primary_vertex=primary_vertex,
            truth=event,
        )
        tracker = self.geometry.tracker
        muon_system = self.geometry.muon_system

        for particle in event.final_state():
            if not self._is_visible(particle):
                continue
            momentum = particle.momentum
            charge = self._charge_of(particle.pdg_id)
            origin = particle.production_vertex
            if origin is None:
                origin = primary_vertex
            else:
                origin = (
                    origin[0] + primary_vertex[0],
                    origin[1] + primary_vertex[1],
                    origin[2] + primary_vertex[2],
                )
            abs_id = abs(particle.pdg_id)
            is_muon = abs_id == 13

            # Charged particles: tracker traversal, subject to efficiency.
            if charge != 0.0 and momentum.pt >= self.config.min_track_pt:
                if self._in_acceptance(particle, tracker.eta_max):
                    efficiency = (
                        self.config.muon_efficiency
                        if is_muon
                        else self.config.track_efficiency
                    )
                    if efficiency.passes(momentum.pt, rng):
                        reaches_muon = (
                            is_muon
                            and momentum.pt > 3.0
                            and self._in_acceptance(particle,
                                                    muon_system.eta_max)
                        )
                        sim_event.traversals.append(Traversal(
                            truth_index=particle.index,
                            pdg_id=particle.pdg_id,
                            charge=charge,
                            momentum=momentum,
                            origin=origin,
                            reaches_muon_system=reaches_muon,
                        ))

            # Calorimeter deposits.
            self._deposit(sim_event, particle, is_muon)

        return sim_event

    def _deposit(self, sim_event: SimulatedEvent, particle: GenParticle,
                 is_muon: bool) -> None:
        """Deposit the particle's energy into the calorimeters."""
        rng = self._rng
        momentum = particle.momentum
        energy = momentum.e
        eta = momentum.eta
        phi = momentum.phi
        if math.isinf(eta):
            return
        abs_id = abs(particle.pdg_id)
        ecal = self.geometry.ecal
        hcal = self.geometry.hcal
        config = self.config

        if is_muon:
            # Minimum-ionising deposit, split between the calorimeters.
            if abs(eta) <= hcal.eta_max:
                mip = min(energy, rng.exponential(_MUON_MIP_ENERGY))
                sim_event.deposits.append(CaloDeposit(
                    particle.index, hcal.name, eta, phi,
                    config.hcal_response.smear(0.7 * mip, rng)))
                sim_event.deposits.append(CaloDeposit(
                    particle.index, ecal.name, eta, phi,
                    config.ecal_response.smear(0.3 * mip, rng)))
            return

        if abs_id in (11, 22):
            # Electrons and photons shower fully in the ECAL.
            if abs(eta) <= ecal.eta_max:
                measured = config.ecal_response.smear(energy, rng)
                sim_event.deposits.append(CaloDeposit(
                    particle.index, ecal.name, eta, phi, measured))
            return

        # Hadrons: a fraction in the ECAL, the rest in the HCAL.
        if abs(eta) <= hcal.eta_max:
            ecal_part = _HADRON_ECAL_FRACTION * energy
            hcal_part = energy - ecal_part
            if abs(eta) <= ecal.eta_max:
                sim_event.deposits.append(CaloDeposit(
                    particle.index, ecal.name, eta, phi,
                    config.ecal_response.smear(ecal_part, rng)))
            else:
                hcal_part = energy
            sim_event.deposits.append(CaloDeposit(
                particle.index, hcal.name, eta, phi,
                config.hcal_response.smear(hcal_part, rng)))

    def simulate_many(self, events: list[GenEvent]) -> list[SimulatedEvent]:
        """Simulate a list of events in order."""
        return [self.simulate(event) for event in events]

    def simulate_many_batch(self,
                            events: list[GenEvent]) -> list[SimulatedEvent]:
        """Columnar twin of :meth:`simulate_many`: random draws are
        batched per phase (see :mod:`repro.columnar.kernels`), so output
        is statistically — not bitwise — equivalent to the scalar path.
        """
        from repro.columnar.kernels import simulate_batch

        return simulate_batch(self, events)

    def describe(self) -> dict:
        """Provenance description of the simulation configuration."""
        return {
            "simulator": "repro-fastsim",
            "version": "1.0.0",
            "geometry": self.geometry.name,
            "bfield_tesla": self.geometry.bfield_tesla,
            "track_efficiency_plateau":
                self.config.track_efficiency.plateau,
            "ecal_stochastic": self.config.ecal_response.stochastic_term,
            "hcal_stochastic": self.config.hcal_response.stochastic_term,
        }
