"""Parameterised detector response models.

These encode the resolution and efficiency behaviour that the full
simulation would produce: calorimeter stochastic terms, tracker momentum
resolution, and sigmoid efficiency turn-on curves. The digitiser applies
the *hit-level* noise; these object-level models are used where the
simulation shortcuts hit formation (calorimeter deposits, efficiencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CaloResponse:
    """Calorimeter energy response ``sigma/E = a/sqrt(E) (+) b``.

    ``a`` is the stochastic (sampling) term in sqrt(GeV) units and ``b``
    the constant term; the two are added in quadrature, the standard
    calorimetry parameterisation.
    """

    stochastic_term: float
    constant_term: float
    energy_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.stochastic_term < 0.0 or self.constant_term < 0.0:
            raise ConfigurationError("resolution terms must be non-negative")

    def relative_resolution(self, energy: float) -> float:
        """Fractional resolution sigma(E)/E at the given energy.

        sqrt-of-squares rather than ``hypot`` so :meth:`smear_array`
        computes the bit-identical sigma.
        """
        if energy <= 0.0:
            return 0.0
        stochastic = self.stochastic_term / math.sqrt(energy)
        return math.sqrt(stochastic * stochastic
                         + self.constant_term * self.constant_term)

    def smear(self, energy: float, rng: np.random.Generator) -> float:
        """Sample a measured energy for a true deposit ``energy``."""
        if energy <= 0.0:
            return 0.0
        sigma = self.relative_resolution(energy) * energy
        measured = self.energy_scale * (energy + rng.normal(0.0, sigma))
        return max(0.0, measured)

    def smear_array(self, energies, rng: np.random.Generator) -> np.ndarray:
        """Vectorised :meth:`smear` over an array of true energies.

        Bit-identical to the scalar loop ``[smear(e, rng) for e in
        energies]`` on the same generator: non-positive energies draw
        nothing (as in the scalar path), and a single vectorised
        ``rng.normal(0.0, sigma)`` call consumes the generator stream
        exactly as the per-deposit scalar draws would.
        """
        energies = np.asarray(energies, dtype=np.float64)
        measured = np.zeros_like(energies)
        positive = energies > 0.0
        if np.any(positive):
            energy = energies[positive]
            stochastic = self.stochastic_term / np.sqrt(energy)
            sigma = np.sqrt(
                stochastic * stochastic
                + self.constant_term * self.constant_term
            ) * energy
            smeared = self.energy_scale * (energy + rng.normal(0.0, sigma))
            measured[positive] = np.maximum(0.0, smeared)
        return measured


@dataclass(frozen=True)
class TrackerResponse:
    """Track momentum response ``sigma(pt)/pt = a*pt (+) b``.

    ``curvature_term`` (``a``, per GeV) dominates at high pt where the
    sagitta is small; ``ms_term`` (``b``) models multiple scattering at low
    pt. Only used for parameterised smearing paths; hit-based tracking gets
    its resolution from hit noise instead.
    """

    curvature_term: float = 2.0e-4
    ms_term: float = 0.01

    def relative_resolution(self, pt: float) -> float:
        """Fractional pt resolution at the given transverse momentum.

        sqrt-of-squares rather than ``hypot`` so :meth:`smear_pt_array`
        computes the bit-identical sigma.
        """
        curvature = self.curvature_term * pt
        return math.sqrt(curvature * curvature
                         + self.ms_term * self.ms_term)

    def smear_pt(self, pt: float, rng: np.random.Generator) -> float:
        """Sample a measured pt for a true transverse momentum."""
        sigma = self.relative_resolution(pt) * pt
        return max(0.01, pt + rng.normal(0.0, sigma))

    def smear_pt_array(self, pts, rng: np.random.Generator) -> np.ndarray:
        """Vectorised :meth:`smear_pt`; bit-identical to the scalar loop
        on the same generator (one draw per pt, in order)."""
        pts = np.asarray(pts, dtype=np.float64)
        curvature = self.curvature_term * pts
        sigma = np.sqrt(curvature * curvature
                        + self.ms_term * self.ms_term) * pts
        return np.maximum(0.01, pts + rng.normal(0.0, sigma))


@dataclass(frozen=True)
class EfficiencyCurve:
    """A sigmoid turn-on efficiency curve in pt.

    ``plateau`` is the asymptotic efficiency, ``threshold`` the pt at which
    the curve reaches half the plateau, and ``width`` the turn-on sharpness.
    """

    plateau: float
    threshold: float
    width: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.plateau <= 1.0:
            raise ConfigurationError(
                f"plateau must be a probability, got {self.plateau}"
            )
        if self.width <= 0.0:
            raise ConfigurationError(f"width must be positive: {self.width}")

    def value(self, pt: float) -> float:
        """Efficiency at the given pt."""
        return self.plateau / (
            1.0 + math.exp(-(pt - self.threshold) / self.width)
        )

    def value_array(self, pts) -> np.ndarray:
        """Vectorised :meth:`value` (``np.exp`` may differ from libm's
        ``exp`` in the last ulp; see :meth:`passes_array`)."""
        pts = np.asarray(pts, dtype=np.float64)
        return self.plateau / (
            1.0 + np.exp(-(pts - self.threshold) / self.width)
        )

    def passes(self, pt: float, rng: np.random.Generator) -> bool:
        """Sample a pass/fail decision at the given pt."""
        return bool(rng.uniform() < self.value(pt))

    def passes_array(self, pts, rng: np.random.Generator) -> np.ndarray:
        """Vectorised :meth:`passes` over an array of pts.

        Consumes the generator stream exactly as the scalar loop does
        (one uniform per pt, in order). The decision is identical
        unless a uniform lands within one ulp of the efficiency value
        — where ``np.exp`` and libm's ``exp`` can differ — which the
        equivalence suite treats as the documented tolerance of this
        kernel.
        """
        pts = np.asarray(pts, dtype=np.float64)
        return rng.uniform(size=len(pts)) < self.value_array(pts)
