"""Parameterised detector response models.

These encode the resolution and efficiency behaviour that the full
simulation would produce: calorimeter stochastic terms, tracker momentum
resolution, and sigmoid efficiency turn-on curves. The digitiser applies
the *hit-level* noise; these object-level models are used where the
simulation shortcuts hit formation (calorimeter deposits, efficiencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CaloResponse:
    """Calorimeter energy response ``sigma/E = a/sqrt(E) (+) b``.

    ``a`` is the stochastic (sampling) term in sqrt(GeV) units and ``b``
    the constant term; the two are added in quadrature, the standard
    calorimetry parameterisation.
    """

    stochastic_term: float
    constant_term: float
    energy_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.stochastic_term < 0.0 or self.constant_term < 0.0:
            raise ConfigurationError("resolution terms must be non-negative")

    def relative_resolution(self, energy: float) -> float:
        """Fractional resolution sigma(E)/E at the given energy."""
        if energy <= 0.0:
            return 0.0
        stochastic = self.stochastic_term / math.sqrt(energy)
        return math.hypot(stochastic, self.constant_term)

    def smear(self, energy: float, rng: np.random.Generator) -> float:
        """Sample a measured energy for a true deposit ``energy``."""
        if energy <= 0.0:
            return 0.0
        sigma = self.relative_resolution(energy) * energy
        measured = self.energy_scale * (energy + rng.normal(0.0, sigma))
        return max(0.0, measured)


@dataclass(frozen=True)
class TrackerResponse:
    """Track momentum response ``sigma(pt)/pt = a*pt (+) b``.

    ``curvature_term`` (``a``, per GeV) dominates at high pt where the
    sagitta is small; ``ms_term`` (``b``) models multiple scattering at low
    pt. Only used for parameterised smearing paths; hit-based tracking gets
    its resolution from hit noise instead.
    """

    curvature_term: float = 2.0e-4
    ms_term: float = 0.01

    def relative_resolution(self, pt: float) -> float:
        """Fractional pt resolution at the given transverse momentum."""
        return math.hypot(self.curvature_term * pt, self.ms_term)

    def smear_pt(self, pt: float, rng: np.random.Generator) -> float:
        """Sample a measured pt for a true transverse momentum."""
        sigma = self.relative_resolution(pt) * pt
        return max(0.01, pt + rng.normal(0.0, sigma))


@dataclass(frozen=True)
class EfficiencyCurve:
    """A sigmoid turn-on efficiency curve in pt.

    ``plateau`` is the asymptotic efficiency, ``threshold`` the pt at which
    the curve reaches half the plateau, and ``width`` the turn-on sharpness.
    """

    plateau: float
    threshold: float
    width: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.plateau <= 1.0:
            raise ConfigurationError(
                f"plateau must be a probability, got {self.plateau}"
            )
        if self.width <= 0.0:
            raise ConfigurationError(f"width must be positive: {self.width}")

    def value(self, pt: float) -> float:
        """Efficiency at the given pt."""
        return self.plateau / (
            1.0 + math.exp(-(pt - self.threshold) / self.width)
        )

    def passes(self, pt: float, rng: np.random.Generator) -> bool:
        """Sample a pass/fail decision at the given pt."""
        return bool(rng.uniform() < self.value(pt))
