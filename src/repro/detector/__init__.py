"""Parameterised detector simulation and digitisation.

This package stands in for the full GEANT-based simulation chains of the
LHC experiments. A :class:`DetectorGeometry` describes the apparatus (the
same description the outreach event displays consume); the
:class:`DetectorSimulation` transports truth particles through it, applying
acceptance, efficiency, and resolution; :mod:`repro.detector.digitization`
converts the energy deposits into the RAW data tier that reconstruction
consumes — completing the "Raw -> Reconstruction" half of the paper's
workflow taxonomy.
"""

from repro.detector.geometry import (
    DetectorGeometry,
    SubDetector,
    forward_spectrometer,
    generic_lhc_detector,
)
from repro.detector.response import (
    CaloResponse,
    EfficiencyCurve,
    TrackerResponse,
)
from repro.detector.simulation import DetectorSimulation, SimulatedEvent
from repro.detector.digitization import (
    CaloCellHit,
    Digitizer,
    MuonChamberHit,
    RawEvent,
    TrackerHit,
)

__all__ = [
    "DetectorGeometry",
    "SubDetector",
    "generic_lhc_detector",
    "forward_spectrometer",
    "TrackerResponse",
    "CaloResponse",
    "EfficiencyCurve",
    "DetectorSimulation",
    "SimulatedEvent",
    "Digitizer",
    "RawEvent",
    "TrackerHit",
    "CaloCellHit",
    "MuonChamberHit",
]
