"""Detector geometry descriptions.

A geometry is both a *simulation input* (layer radii, cell granularity,
acceptance) and a *preservation artifact*: Table 1 of the paper records how
each experiment ships a geometry description (ROOT, XML, XML/JSON) to its
event displays. :meth:`DetectorGeometry.to_display_dict` is our equivalent
of those exports — a self-describing JSON structure the outreach display
layer renders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class SubDetectorKind(enum.Enum):
    """Coarse functional classes of sub-detectors."""

    TRACKER = "tracker"
    ECAL = "ecal"
    HCAL = "hcal"
    MUON = "muon"


@dataclass(frozen=True)
class SubDetector:
    """One cylindrical sub-detector.

    ``layer_radii_mm`` lists the sensitive layers for tracking detectors
    (empty for calorimeters); ``eta_cells`` x ``phi_cells`` gives the
    calorimeter cell granularity (zero for trackers); ``eta_max`` is the
    acceptance edge.
    """

    name: str
    kind: SubDetectorKind
    eta_max: float
    inner_radius_mm: float
    outer_radius_mm: float
    layer_radii_mm: tuple[float, ...] = ()
    eta_cells: int = 0
    phi_cells: int = 0
    hit_resolution_mm: float = 0.0

    def __post_init__(self) -> None:
        if self.inner_radius_mm >= self.outer_radius_mm:
            raise ConfigurationError(
                f"{self.name}: inner radius {self.inner_radius_mm} must be "
                f"less than outer radius {self.outer_radius_mm}"
            )
        if self.eta_max <= 0.0:
            raise ConfigurationError(f"{self.name}: eta_max must be positive")
        for radius in self.layer_radii_mm:
            if not self.inner_radius_mm <= radius <= self.outer_radius_mm:
                raise ConfigurationError(
                    f"{self.name}: layer at {radius} mm outside envelope"
                )

    def to_dict(self) -> dict:
        """Serialise for the display-geometry export."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "eta_max": self.eta_max,
            "inner_radius_mm": self.inner_radius_mm,
            "outer_radius_mm": self.outer_radius_mm,
            "layer_radii_mm": list(self.layer_radii_mm),
            "eta_cells": self.eta_cells,
            "phi_cells": self.phi_cells,
        }


@dataclass
class DetectorGeometry:
    """A complete detector: named sub-detectors plus the solenoid field."""

    name: str
    bfield_tesla: float
    subdetectors: dict[str, SubDetector] = field(default_factory=dict)

    def add(self, subdetector: SubDetector) -> None:
        """Register a sub-detector; names must be unique."""
        if subdetector.name in self.subdetectors:
            raise ConfigurationError(
                f"duplicate sub-detector name {subdetector.name!r}"
            )
        self.subdetectors[subdetector.name] = subdetector

    def of_kind(self, kind: SubDetectorKind) -> list[SubDetector]:
        """All sub-detectors of a functional kind."""
        return [s for s in self.subdetectors.values() if s.kind == kind]

    @property
    def tracker(self) -> SubDetector:
        """The (single) tracking detector."""
        trackers = self.of_kind(SubDetectorKind.TRACKER)
        if len(trackers) != 1:
            raise ConfigurationError(
                f"{self.name}: expected exactly one tracker, found "
                f"{len(trackers)}"
            )
        return trackers[0]

    @property
    def ecal(self) -> SubDetector:
        """The electromagnetic calorimeter."""
        ecals = self.of_kind(SubDetectorKind.ECAL)
        if len(ecals) != 1:
            raise ConfigurationError(
                f"{self.name}: expected exactly one ECAL, found {len(ecals)}"
            )
        return ecals[0]

    @property
    def hcal(self) -> SubDetector:
        """The hadronic calorimeter."""
        hcals = self.of_kind(SubDetectorKind.HCAL)
        if len(hcals) != 1:
            raise ConfigurationError(
                f"{self.name}: expected exactly one HCAL, found {len(hcals)}"
            )
        return hcals[0]

    @property
    def muon_system(self) -> SubDetector:
        """The muon spectrometer."""
        muons = self.of_kind(SubDetectorKind.MUON)
        if len(muons) != 1:
            raise ConfigurationError(
                f"{self.name}: expected exactly one muon system, found "
                f"{len(muons)}"
            )
        return muons[0]

    def to_display_dict(self) -> dict:
        """Self-describing geometry export for event displays.

        This is the analogue of the XML/JSON geometry files in Table 1: it
        contains everything a display needs to draw the detector, plus a
        ``schema`` block documenting its own fields.
        """
        return {
            "schema": {
                "format": "repro-display-geometry",
                "version": "1.0",
                "units": {"length": "mm", "field": "tesla"},
                "fields": {
                    "name": "detector name",
                    "bfield_tesla": "solenoid field strength",
                    "subdetectors": "list of cylindrical sub-detectors",
                },
            },
            "name": self.name,
            "bfield_tesla": self.bfield_tesla,
            "subdetectors": [s.to_dict() for s in self.subdetectors.values()],
        }


def generic_lhc_detector(name: str = "GPD") -> DetectorGeometry:
    """A general-purpose (ATLAS/CMS-like) detector geometry."""
    geometry = DetectorGeometry(name=name, bfield_tesla=2.0)
    geometry.add(SubDetector(
        name="tracker",
        kind=SubDetectorKind.TRACKER,
        eta_max=2.5,
        inner_radius_mm=30.0,
        outer_radius_mm=1100.0,
        layer_radii_mm=(50.0, 90.0, 160.0, 250.0, 400.0, 600.0, 850.0,
                        1050.0),
        hit_resolution_mm=0.05,
    ))
    geometry.add(SubDetector(
        name="ecal",
        kind=SubDetectorKind.ECAL,
        eta_max=3.0,
        inner_radius_mm=1300.0,
        outer_radius_mm=1700.0,
        eta_cells=120,
        phi_cells=128,
    ))
    geometry.add(SubDetector(
        name="hcal",
        kind=SubDetectorKind.HCAL,
        eta_max=4.0,
        inner_radius_mm=1800.0,
        outer_radius_mm=3000.0,
        eta_cells=80,
        phi_cells=64,
    ))
    geometry.add(SubDetector(
        name="muon",
        kind=SubDetectorKind.MUON,
        eta_max=2.4,
        inner_radius_mm=4000.0,
        outer_radius_mm=7000.0,
        layer_radii_mm=(4500.0, 5500.0, 6500.0),
        hit_resolution_mm=0.3,
    ))
    return geometry


def forward_spectrometer(name: str = "FWD") -> DetectorGeometry:
    """An LHCb-like forward spectrometer.

    Modelled as a cylinder but with acceptance restricted to the forward
    region (2 < eta < 4.8 approximated by ``eta_max`` plus an ``eta_min``
    convention handled in the simulation via the acceptance helper).
    """
    geometry = DetectorGeometry(name=name, bfield_tesla=1.1)
    geometry.add(SubDetector(
        name="velo_tracker",
        kind=SubDetectorKind.TRACKER,
        eta_max=4.8,
        inner_radius_mm=8.0,
        outer_radius_mm=900.0,
        layer_radii_mm=(10.0, 30.0, 70.0, 150.0, 300.0, 550.0, 800.0),
        hit_resolution_mm=0.012,
    ))
    geometry.add(SubDetector(
        name="ecal",
        kind=SubDetectorKind.ECAL,
        eta_max=4.8,
        inner_radius_mm=1000.0,
        outer_radius_mm=1300.0,
        eta_cells=100,
        phi_cells=100,
    ))
    geometry.add(SubDetector(
        name="hcal",
        kind=SubDetectorKind.HCAL,
        eta_max=4.8,
        inner_radius_mm=1400.0,
        outer_radius_mm=1900.0,
        eta_cells=60,
        phi_cells=60,
    ))
    geometry.add(SubDetector(
        name="muon",
        kind=SubDetectorKind.MUON,
        eta_max=4.8,
        inner_radius_mm=2000.0,
        outer_radius_mm=3000.0,
        layer_radii_mm=(2200.0, 2600.0),
        hit_resolution_mm=0.5,
    ))
    return geometry
