"""Configuration value objects for the RECAST request service.

Both are small frozen dataclasses so they can travel inside event
logs, provenance records, and submission scripts unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError


@dataclass(frozen=True)
class TenantQuota:
    """Admission and concurrency limits for one tenant.

    ``weight`` is the tenant's fair-share weight: a weight-2 tenant
    receives twice the lease slots of a weight-1 tenant under
    contention. ``max_queued`` caps how many *executions* the tenant
    may have waiting in the queue (dedup subscribers ride along free —
    that is the incentive to share work); ``max_inflight`` caps how
    many of its executions may hold leases concurrently.
    """

    weight: float = 1.0
    max_queued: int = 16
    max_inflight: int = 2

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ServiceError(
                f"tenant weight must be > 0, got {self.weight}"
            )
        if self.max_queued < 1:
            raise ServiceError(
                f"max_queued must be >= 1, got {self.max_queued}"
            )
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )

    def to_dict(self) -> dict:
        """Serialise for event logs and scripts."""
        return {"weight": self.weight, "max_queued": self.max_queued,
                "max_inflight": self.max_inflight}

    @classmethod
    def from_dict(cls, record: dict) -> "TenantQuota":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {"weight", "max_queued", "max_inflight"}
        unknown = set(record) - known
        if unknown:
            raise ServiceError(
                f"unknown tenant-quota fields: {sorted(unknown)}"
            )
        return cls(
            weight=float(record.get("weight", 1.0)),
            max_queued=int(record.get("max_queued", 16)),
            max_inflight=int(record.get("max_inflight", 2)),
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduler-wide behaviour of one :class:`RecastService`.

    ``lease_duration`` is in clock units (ticks under a
    :class:`~repro.runtime.LogicalClock`, seconds under the monotonic
    clock). ``max_attempts`` counts lease grants per execution: with
    the default 3, an execution whose lease expires twice runs a third
    time before the scheduler gives up. Backoff after the n-th failed
    attempt is ``backoff_base * 2**(n-1)`` capped at ``backoff_cap``.
    """

    lease_duration: float = 10.0
    max_attempts: int = 3
    backoff_base: float = 2.0
    backoff_cap: float = 60.0
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.lease_duration <= 0.0:
            raise ServiceError(
                f"lease_duration must be > 0, got {self.lease_duration}"
            )
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0.0 or self.backoff_cap < self.backoff_base:
            raise ServiceError(
                f"backoff must satisfy 0 <= base <= cap, got "
                f"base={self.backoff_base} cap={self.backoff_cap}"
            )
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )

    def backoff(self, attempt: int) -> float:
        """Requeue delay after the ``attempt``-th failed attempt."""
        if attempt < 1:
            raise ServiceError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (attempt - 1)))

    def to_dict(self) -> dict:
        """Serialise for event logs and scripts."""
        return {
            "lease_duration": self.lease_duration,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ServiceConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {"lease_duration", "max_attempts", "backoff_base",
                 "backoff_cap", "max_inflight"}
        unknown = set(record) - known
        if unknown:
            raise ServiceError(
                f"unknown service-config fields: {sorted(unknown)}"
            )
        defaults = cls()
        return cls(
            lease_duration=float(record.get(
                "lease_duration", defaults.lease_duration)),
            max_attempts=int(record.get(
                "max_attempts", defaults.max_attempts)),
            backoff_base=float(record.get(
                "backoff_base", defaults.backoff_base)),
            backoff_cap=float(record.get(
                "backoff_cap", defaults.backoff_cap)),
            max_inflight=int(record.get(
                "max_inflight", defaults.max_inflight)),
        )
