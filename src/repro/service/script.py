"""Deterministic submission scripts for the RECAST service.

A *submission script* is a JSON document describing everything a
service run depends on: the service configuration, the tenant roster
with quotas, and an ordered list of actions (submissions interleaved
with explicit scheduler rounds). Replaying the same script through
:func:`run_script` produces byte-identical event logs — the property
``repro serve`` and the CI replay check assert.

Script format (version 1)::

    {
      "format": "repro-service-script",
      "version": 1,
      "config": { ... ServiceConfig.to_dict() ... },
      "tenants": [{"name": "...", "quota": { ... }}, ...],
      "actions": [
        {"action": "submit", "tenant": "...", "analysis": "...",
         "model": { ... ModelSpec.to_dict() ... }, "priority": 0},
        {"action": "step", "count": 3},
        ...
      ]
    }

Trailing work is always drained: after the last action the service
runs until idle, so a script never leaves executions stranded.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryHub
from repro.obs.trace import Tracer
from repro.recast.api import RecastAPI
from repro.recast.backend import FullChainBackend
from repro.recast.catalog import AnalysisCatalog, PreservedSearch
from repro.recast.requests import ModelSpec
from repro.runtime import ExecutionPolicy, LogicalClock
from repro.service.config import ServiceConfig, TenantQuota
from repro.service.scheduler import RecastService, SubmitTicket

#: The submission-script envelope marker and its current version.
SCRIPT_FORMAT = "repro-service-script"
SCRIPT_VERSION = 1


def load_script(path: str | Path) -> dict:
    """Read and validate one submission script."""
    try:
        script = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"cannot read script {path}: {exc}") from exc
    return validate_script(script)


def validate_script(script: dict) -> dict:
    """Check the envelope and shape of one submission script."""
    if not isinstance(script, dict):
        raise ServiceError("submission script must be a JSON object")
    if script.get("format") != SCRIPT_FORMAT:
        raise ServiceError(
            f"script format must be {SCRIPT_FORMAT!r}, "
            f"got {script.get('format')!r}"
        )
    if script.get("version") != SCRIPT_VERSION:
        raise ServiceError(
            f"script version must be {SCRIPT_VERSION}, "
            f"got {script.get('version')!r}"
        )
    tenants = script.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        raise ServiceError("script needs a non-empty 'tenants' list")
    for tenant in tenants:
        if not isinstance(tenant, dict) or "name" not in tenant:
            raise ServiceError(f"malformed tenant entry: {tenant!r}")
    actions = script.get("actions")
    if not isinstance(actions, list):
        raise ServiceError("script needs an 'actions' list")
    for action in actions:
        kind = action.get("action") if isinstance(action, dict) else None
        if kind == "submit":
            missing = {"tenant", "analysis", "model"} - set(action)
            if missing:
                raise ServiceError(
                    f"submit action missing {sorted(missing)}"
                )
        elif kind == "step":
            if int(action.get("count", 1)) < 1:
                raise ServiceError("step count must be >= 1")
        else:
            raise ServiceError(f"unknown script action: {action!r}")
    return script


def run_script(
    api: RecastAPI,
    script: dict,
    *,
    policy: ExecutionPolicy | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    telemetry: TelemetryHub | None = None,
) -> tuple[RecastService, list[SubmitTicket]]:
    """Replay one submission script against one RecastAPI.

    Builds the service with a fresh :class:`~repro.runtime.LogicalClock`
    (the script is the only source of time), applies the actions in
    order, drains trailing work, and returns the service plus every
    ticket issued — all a pure function of ``(api, script)``. The
    service's telemetry windows are flushed (``final=True``) before
    returning, so the snapshot covers the whole run; pass ``telemetry``
    to substitute a pre-built (for example disabled) hub — a hub with
    its own clock will not see the script's logical time.
    """
    validate_script(script)
    config = ServiceConfig.from_dict(script.get("config", {}))
    service = RecastService(api, config, clock=LogicalClock(),
                            policy=policy, tracer=tracer,
                            metrics=metrics, telemetry=telemetry)
    for tenant in script["tenants"]:
        service.register_tenant(
            tenant["name"],
            TenantQuota.from_dict(tenant.get("quota", {})),
        )
    tickets: list[SubmitTicket] = []
    for action in script["actions"]:
        if action["action"] == "submit":
            tickets.append(service.submit(
                action["tenant"],
                action["analysis"],
                ModelSpec.from_dict(action["model"]),
                requester=action.get("requester", ""),
                priority=int(action.get("priority", 0)),
            ))
        else:
            for _ in range(int(action.get("count", 1))):
                service.step()
    service.run_until_idle()
    service.telemetry.flush(final=True)
    return service, tickets


def demo_api(*, n_events: int = 60, n_limit_toys: int = 400,
             seed: int = 900) -> RecastAPI:
    """A small self-contained RecastAPI for scripts and benchmarks.

    One experiment ("GPD"), one preserved high-mass dimuon search,
    processed by a :class:`~repro.recast.backend.FullChainBackend`
    sized for fast deterministic runs.
    """
    from repro.datamodel import (
        AndCut,
        CountCut,
        MassWindowCut,
        SkimSpec,
    )

    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    catalog = AnalysisCatalog("GPD")
    catalog.register(PreservedSearch(
        analysis_id="GPD-EXO-01",
        title="High-mass dimuon search",
        experiment="GPD",
        selection=selection,
        n_observed=3,
        background=2.5,
        background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    ))
    api = RecastAPI()
    api.register_experiment(
        catalog,
        FullChainBackend("GPD", n_events=n_events,
                         n_limit_toys=n_limit_toys, seed=seed),
    )
    return api


def default_service_slo():
    """The built-in SLO spec ``repro serve --health-out`` evaluates.

    Generic over tenant rosters: the latency objective uses the
    ``"*"`` selector, expanding into one evaluation per tenant seen in
    the telemetry — the per-tenant coverage the health report is for.
    Thresholds are sized for logical-clock runs (wait time in ticks).
    """
    from repro.obs.slo import Objective, SLOSpec

    return SLOSpec(
        name="recast-service-defaults",
        revision=1,
        objectives=(
            Objective(
                name="wait-p95-ceiling",
                kind="quantile_ceiling",
                series="service.wait_time",
                quantile=0.95,
                threshold=16.0,
                tenant="*",
                tolerated_breach_fraction=0.25,
            ),
            Objective(
                name="commit-availability",
                kind="availability",
                series="service.commits",
                bad_series="service.backend_failures",
                threshold=0.99,
            ),
            Objective(
                name="retry-rate-ceiling",
                kind="ratio_ceiling",
                series="service.lease_retries",
                bad_series="service.leases",
                threshold=0.5,
            ),
            Objective(
                name="dedup-floor",
                kind="ratio_floor",
                series="service.dedup_hits",
                bad_series="service.submissions",
                threshold=0.1,
            ),
        ),
    )


def demo_script() -> dict:
    """The built-in demo submission script ``repro serve`` defaults to.

    Two tenants with 2:1 weights, repeat submissions exercising the
    dedup path, and explicit scheduler rounds between bursts.
    """
    zp_15 = {"name": "Zp-1.5TeV", "process": "zprime",
             "parameters": {"mass": 1500.0, "cross_section_pb": 0.05}}
    zp_20 = {"name": "Zp-2.0TeV", "process": "zprime",
             "parameters": {"mass": 2000.0, "cross_section_pb": 0.02}}
    return {
        "format": SCRIPT_FORMAT,
        "version": SCRIPT_VERSION,
        "config": {"lease_duration": 4.0, "max_attempts": 3,
                   "backoff_base": 1.0, "backoff_cap": 8.0,
                   "max_inflight": 2},
        "tenants": [
            {"name": "pheno-group",
             "quota": {"weight": 2.0, "max_queued": 8,
                       "max_inflight": 2}},
            {"name": "lone-theorist",
             "quota": {"weight": 1.0, "max_queued": 4,
                       "max_inflight": 1}},
        ],
        "actions": [
            {"action": "submit", "tenant": "pheno-group",
             "analysis": "GPD-EXO-01", "model": zp_15},
            {"action": "submit", "tenant": "lone-theorist",
             "analysis": "GPD-EXO-01", "model": zp_20},
            # Identical to the first submission: dedup subscribes it.
            {"action": "submit", "tenant": "lone-theorist",
             "analysis": "GPD-EXO-01", "model": zp_15},
            {"action": "step", "count": 2},
            # After the first commit this is a result-cache hit.
            {"action": "submit", "tenant": "pheno-group",
             "analysis": "GPD-EXO-01", "model": zp_15},
        ],
    }
