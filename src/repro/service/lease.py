"""Time-limited leases and the exactly-once commit gate.

A worker never *owns* a request — it holds a lease: a claim that
expires at a known clock reading unless the worker commits first. The
:class:`LeaseTable` is the driver-side source of truth for which
execution is held by which attempt, and :meth:`LeaseTable.settle` is
the single gate every outcome must pass: an outcome whose attempt
number no longer matches the live lease (the lease expired and the
execution was re-leased, or was already committed) is *stale* and must
be discarded — that refusal is what makes retried execution
idempotent and commits exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LeaseError


@dataclass(frozen=True)
class Lease:
    """One worker's time-limited claim on one execution."""

    lease_id: str
    key: str
    tenant: str
    attempt: int
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        """True once the clock has passed the lease deadline."""
        return now >= self.expires_at


class LeaseTable:
    """Live leases keyed by execution key."""

    def __init__(self) -> None:
        self._leases: dict[str, Lease] = {}
        self._sequence = 0

    def grant(self, key: str, tenant: str, attempt: int, *,
              now: float, duration: float) -> Lease:
        """Issue a lease on one execution; double-grants are bugs."""
        if key in self._leases:
            raise LeaseError(
                f"execution {key[:12]}... already holds lease "
                f"{self._leases[key].lease_id}"
            )
        self._sequence += 1
        lease = Lease(
            lease_id=f"lease-{self._sequence:05d}",
            key=key,
            tenant=tenant,
            attempt=attempt,
            granted_at=now,
            expires_at=now + duration,
        )
        self._leases[key] = lease
        return lease

    def settle(self, key: str, attempt: int) -> Lease | None:
        """Close the lease for one outcome, if it is still current.

        Returns the released lease when ``attempt`` matches the live
        lease on ``key`` — the outcome may be committed. Returns
        ``None`` for a stale outcome (no live lease, or a newer
        attempt holds it): the caller must discard the result.
        """
        lease = self._leases.get(key)
        if lease is None or lease.attempt != attempt:
            return None
        del self._leases[key]
        return lease

    def revoke(self, key: str) -> Lease:
        """Forcibly drop the lease on one execution (expiry sweep)."""
        try:
            return self._leases.pop(key)
        except KeyError:
            raise LeaseError(
                f"execution {key[:12]}... holds no lease to revoke"
            ) from None

    def expired(self, now: float) -> list[Lease]:
        """Every live lease the clock has outrun, grant-ordered."""
        return sorted(
            (lease for lease in self._leases.values()
             if lease.expired(now)),
            key=lambda lease: lease.lease_id,
        )

    def inflight_by_tenant(self) -> dict[str, int]:
        """Live lease count per tenant (the concurrency accountant)."""
        counts: dict[str, int] = {}
        for lease in self._leases.values():
            counts[lease.tenant] = counts.get(lease.tenant, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, key: str) -> bool:
        return key in self._leases
