"""The RECAST request service: the deterministic scheduling core.

:class:`RecastService` turns the synchronous
:class:`~repro.recast.api.RecastAPI` into a multi-tenant service. A
submission is admitted against its tenant's quota, content-addressed
(:mod:`repro.service.dedup`), and either *queued* as a fresh
execution, *subscribed* to an identical in-flight one, or answered
from the result cache on the spot. Executions are drained by
:meth:`RecastService.step`, a discrete-event scheduler round:

1. sweep expired leases — re-queue with backoff, or fail at the cap;
2. re-admit backoff-complete retries;
3. grant leases fair-share until the in-flight caps bind;
4. dispatch the newly leased work through the worker pool and commit
   each outcome through the lease table's exactly-once gate;
5. advance the injected clock one tick.

Every decision is a pure function of the submission sequence and the
injected :class:`~repro.runtime.LogicalClock`, so the service's event
log — canonical JSON lines from :meth:`RecastService.event_log_bytes`
— is byte-identical across replays, under every execution policy.
That replayable log *is* the preservation claim of this layer: a
service whose scheduling cannot be replayed cannot have its results
audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.canonical import canonical_json
from repro.errors import QuotaError, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryHub
from repro.obs.trace import Tracer, active
from repro.recast.api import RecastAPI
from repro.recast.requests import ModelSpec, RequestStatus
from repro.runtime import ExecutionPolicy, LogicalClock
from repro.service.config import ServiceConfig, TenantQuota
from repro.service.dedup import ResultCache, backend_fingerprint, dedup_key
from repro.service.lease import LeaseTable
from repro.service.pool import (
    OUTCOME_CRASHED,
    OUTCOME_OK,
    LeaseOutcome,
    LeaseTask,
    execute_lease,
    run_lease_batch,
)
from repro.service.queue import FairShareQueue, QueueEntry

#: Ticket statuses a submission can come back with.
TICKET_QUEUED = "queued"
TICKET_SUBSCRIBED = "subscribed"
TICKET_CACHED = "cached"
TICKET_REJECTED = "rejected"


@dataclass(frozen=True)
class SubmitTicket:
    """What the service hands back for one submission."""

    request_id: str
    status: str
    key: str

    def to_dict(self) -> dict:
        """Serialise for event logs and CLI output."""
        return {"request_id": self.request_id, "status": self.status,
                "key": self.key}


@dataclass
class _Execution:
    """One deduplicated unit of back-end work and its subscribers.

    ``request_ids[0]`` is the *primary* request — the one whose state
    follows the lease lifecycle; later entries are dedup subscribers
    that stay QUEUED until the shared outcome fans out to them.
    """

    key: str
    tenant: str
    priority: int
    sequence: int
    analysis_id: str
    model: ModelSpec
    experiment: str
    attempt: int = 0
    request_ids: list[str] = field(default_factory=list)
    #: Clock reading of the last (re-)queueing — wait-time origin.
    enqueued_at: float = 0.0


class RecastService:
    """A deterministic multi-tenant scheduler over one RecastAPI."""

    def __init__(
        self,
        api: RecastAPI,
        config: ServiceConfig | None = None,
        *,
        clock: LogicalClock | None = None,
        policy: ExecutionPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry: TelemetryHub | None = None,
    ) -> None:
        self.api = api
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else LogicalClock()
        self.policy = policy
        self._tracer = active(tracer)
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        #: Windowed per-tenant series, keyed on the service clock. The
        #: default hub shares ``self.clock``, so telemetry windows are
        #: as replayable as the event log; pass ``telemetry`` to share
        #: a hub across services or to disable collection.
        self._telemetry = (telemetry if telemetry is not None
                           else TelemetryHub(self.clock))
        self.queue = FairShareQueue()
        self.leases = LeaseTable()
        self.cache = ResultCache()
        #: Live executions by dedup key (queued, leased, or backing off).
        self._executions: dict[str, _Execution] = {}
        #: Executions waiting out a retry backoff: key -> ready time.
        self._backoff: dict[str, float] = {}
        self._sequence = 0
        self._steps = 0
        self._events: list[dict] = []

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------

    def _record(self, kind: str, **payload) -> None:
        self._events.append({
            "seq": len(self._events),
            "time": self.clock.now(),
            "event": kind,
            **payload,
        })

    @property
    def events(self) -> list[dict]:
        """The full request-event log, in decision order."""
        return list(self._events)

    def event_log_bytes(self) -> bytes:
        """The event log as canonical JSON lines.

        Byte-identical across replays of the same submission sequence —
        the artifact determinism tests and the CI replay check compare.
        """
        lines = [canonical_json(event).decode("utf-8")
                 for event in self._events]
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""

    # ------------------------------------------------------------------
    # Tenants and submission
    # ------------------------------------------------------------------

    def register_tenant(self, name: str,
                        quota: TenantQuota | None = None) -> None:
        """Admit a tenant with its quota (defaults apply if omitted)."""
        self.queue.register_tenant(
            name, quota if quota is not None else TenantQuota()
        )
        self._record("tenant_registered", tenant=name,
                     quota=self.queue.quota(name).to_dict())

    def submit(self, tenant: str, analysis_id: str, model: ModelSpec,
               *, requester: str = "", priority: int = 0) -> SubmitTicket:
        """Admit one request: queue it, subscribe it, or answer it.

        Never raises for service-level outcomes — a quota bounce comes
        back as a ``rejected`` ticket (the request itself records the
        rejection), because a multi-tenant service answers overload
        with a polite refusal, not a stack trace. Unknown analyses and
        unknown tenants *do* raise: those are caller bugs.
        """
        experiment, search = self.api.find_search(analysis_id)
        backend = self.api.backend_for(experiment)
        key = dedup_key(analysis_id, model,
                        backend_fingerprint(backend))
        request = self.api.submit(
            analysis_id, model, requester or tenant
        )
        self._metrics.counter("service.submissions", tenant=tenant).inc()
        self._telemetry.event("service.submissions", tenant=tenant)

        with self._tracer.span("service.submit", tenant=tenant,
                               analysis=analysis_id) as span:
            # Cached: the question was already answered — accept and
            # deliver without touching the queue.
            cached = self.cache.get(key)
            if cached is not None:
                self.api.accept(request.request_id,
                                f"service:{tenant} (cached)")
                request.transition(RequestStatus.QUEUED)
                request.result = cached
                request.transition(RequestStatus.PENDING_APPROVAL,
                                   "answered from result cache")
                self._metrics.counter("service.cache_hits",
                                      tenant=tenant).inc()
                self._telemetry.event("service.cache_hits",
                                      tenant=tenant)
                span.set("ticket", TICKET_CACHED)
                self._record("cache_hit", tenant=tenant, key=key,
                             request_id=request.request_id)
                return SubmitTicket(request.request_id, TICKET_CACHED,
                                    key)

            # In flight: subscribe to the identical execution.
            existing = self._executions.get(key)
            if existing is not None:
                self.api.accept(request.request_id,
                                f"service:{tenant} (dedup)")
                request.transition(RequestStatus.QUEUED,
                                   f"subscribed to {key[:12]}")
                existing.request_ids.append(request.request_id)
                self._metrics.counter("service.dedup_hits",
                                      tenant=tenant).inc()
                self._telemetry.event("service.dedup_hits",
                                      tenant=tenant)
                span.set("ticket", TICKET_SUBSCRIBED)
                self._record("dedup_subscribe", tenant=tenant, key=key,
                             request_id=request.request_id,
                             primary=existing.request_ids[0])
                return SubmitTicket(request.request_id,
                                    TICKET_SUBSCRIBED, key)

            # Fresh: admit a new execution against the tenant's quota.
            self._sequence += 1
            entry = QueueEntry(key=key, tenant=tenant,
                               priority=priority,
                               sequence=self._sequence)
            try:
                self.queue.push(entry)
            except QuotaError as quota:
                self.api.reject(request.request_id, str(quota))
                self._metrics.counter("service.quota_rejections",
                                      tenant=tenant).inc()
                self._telemetry.event("service.admission_rejections",
                                      tenant=tenant)
                span.set("ticket", TICKET_REJECTED)
                self._record("quota_reject", tenant=tenant, key=key,
                             request_id=request.request_id,
                             reason=str(quota))
                return SubmitTicket(request.request_id,
                                    TICKET_REJECTED, key)

            self.api.accept(request.request_id, f"service:{tenant}")
            request.transition(RequestStatus.QUEUED)
            self._executions[key] = _Execution(
                key=key, tenant=tenant, priority=priority,
                sequence=self._sequence, analysis_id=analysis_id,
                model=model, experiment=experiment,
                request_ids=[request.request_id],
                enqueued_at=self.clock.now(),
            )
            self._telemetry.event("service.admissions", tenant=tenant)
            span.set("ticket", TICKET_QUEUED)
            self._record("enqueue", tenant=tenant, key=key,
                         request_id=request.request_id,
                         priority=priority)
            return SubmitTicket(request.request_id, TICKET_QUEUED, key)

    # ------------------------------------------------------------------
    # The scheduler round
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Run one scheduler round; returns outcomes committed.

        Sweeps expired leases, re-admits backoff-complete retries,
        grants leases fair-share, dispatches the granted work, commits
        what the lease table accepts, and advances the clock one tick.
        """
        with self._tracer.span("service.step", step=self._steps):
            now = self.clock.now()
            self._sweep_expired(now)
            self._readmit_ready(now)
            tasks = self._grant_leases(now)
            committed = self._dispatch(tasks)
            self._update_depth_gauges()
            self._sample_depth_series(now)
            self.clock.advance()
            self._telemetry.flush()
            self._steps += 1
        return committed

    def run_until_idle(self, *, max_steps: int = 10_000) -> int:
        """Step until no execution is queued, leased, or backing off.

        Returns the number of rounds taken; ``max_steps`` is the
        runaway guard — a scheduler that cannot drain is a bug, not a
        workload.
        """
        steps = 0
        while self._executions:
            if steps >= max_steps:
                raise ServiceError(
                    f"service did not drain within {max_steps} steps; "
                    f"{len(self._executions)} execution(s) still live"
                )
            self.step()
            steps += 1
        return steps

    # -- round phases ---------------------------------------------------

    def _sweep_expired(self, now: float) -> None:
        """Re-queue or fail every execution whose lease has expired."""
        for lease in self.leases.expired(now):
            self.leases.revoke(lease.key)
            execution = self._executions[lease.key]
            primary = self.api.get_request(execution.request_ids[0])
            self._metrics.counter("service.leases_expired",
                                  tenant=lease.tenant).inc()
            self._telemetry.event("service.lease_expiries",
                                  tenant=lease.tenant)
            self._record("lease_expire", key=lease.key,
                         lease_id=lease.lease_id,
                         tenant=lease.tenant, attempt=lease.attempt)
            if execution.attempt >= self.config.max_attempts:
                reason = (f"retry cap exhausted after "
                          f"{execution.attempt} attempt(s)")
                primary.transition(RequestStatus.FAILED, reason)
                primary.failure_reason = reason
                self._fail_subscribers(execution, reason)
                self._finish(execution, "failed", reason=reason)
            else:
                delay = self.config.backoff(execution.attempt)
                primary.transition(
                    RequestStatus.RETRYING,
                    f"lease {lease.lease_id} expired; retry in {delay:g}"
                )
                self._backoff[lease.key] = now + delay
                self._metrics.counter("service.retries",
                                      tenant=lease.tenant).inc()
                self._telemetry.event("service.lease_retries",
                                      tenant=lease.tenant)
                self._record("retry_scheduled", key=lease.key,
                             tenant=lease.tenant,
                             attempt=execution.attempt,
                             ready_at=now + delay)

    def _readmit_ready(self, now: float) -> None:
        """Move backoff-complete executions back into the queue."""
        for key in sorted(k for k, ready in self._backoff.items()
                          if ready <= now):
            del self._backoff[key]
            execution = self._executions[key]
            primary = self.api.get_request(execution.request_ids[0])
            primary.transition(RequestStatus.QUEUED, "backoff complete")
            execution.enqueued_at = now
            self.queue.push(
                QueueEntry(key=key, tenant=execution.tenant,
                           priority=execution.priority,
                           sequence=execution.sequence),
                requeue=True,
            )
            self._record("requeue", key=key, tenant=execution.tenant,
                         attempt=execution.attempt)

    def _grant_leases(self, now: float) -> list[LeaseTask]:
        """Lease fair-share-selected executions up to the caps."""
        tasks: list[LeaseTask] = []
        while len(self.leases) < self.config.max_inflight:
            entry = self.queue.pop_next(self.leases.inflight_by_tenant())
            if entry is None:
                break
            execution = self._executions[entry.key]
            execution.attempt += 1
            lease = self.leases.grant(
                entry.key, entry.tenant, execution.attempt,
                now=now, duration=self.config.lease_duration,
            )
            primary = self.api.get_request(execution.request_ids[0])
            primary.transition(RequestStatus.LEASED, lease.lease_id)
            self._metrics.counter("service.leases_granted",
                                  tenant=entry.tenant).inc()
            self._telemetry.event("service.leases", tenant=entry.tenant)
            self._telemetry.observe("service.wait_time",
                                    now - execution.enqueued_at,
                                    tenant=entry.tenant)
            self._record("lease_grant", key=entry.key,
                         lease_id=lease.lease_id, tenant=entry.tenant,
                         attempt=execution.attempt,
                         expires_at=lease.expires_at)
            _, search = self.api.find_search(execution.analysis_id)
            tasks.append(LeaseTask(
                key=entry.key, attempt=execution.attempt,
                analysis_id=execution.analysis_id,
                backend=self.api.backend_for(execution.experiment),
                search=search, model=execution.model,
            ))
        return tasks

    def _dispatch(self, tasks: list[LeaseTask]) -> int:
        """Run the granted leases and commit surviving outcomes."""
        if not tasks:
            return 0
        outcomes = run_lease_batch(execute_lease, tasks, self.policy,
                                   metrics=self._metrics)
        committed = 0
        for outcome in outcomes:
            if outcome.status == OUTCOME_CRASHED:
                # A crashed worker reports nothing in real life; the
                # lease stays live and the expiry sweep recovers it.
                self._record("worker_crash", key=outcome.key,
                             attempt=outcome.attempt,
                             error=outcome.error)
                continue
            committed += self._commit(outcome)
        return committed

    def _commit(self, outcome: LeaseOutcome) -> int:
        """Pass one outcome through the exactly-once gate."""
        lease = self.leases.settle(outcome.key, outcome.attempt)
        if lease is None:
            self._metrics.counter("service.stale_outcomes").inc()
            self._record("stale_drop", key=outcome.key,
                         attempt=outcome.attempt)
            return 0
        execution = self._executions[outcome.key]
        primary = self.api.get_request(execution.request_ids[0])
        if outcome.status == OUTCOME_OK:
            self.cache.put(outcome.key, outcome.result)
            primary.result = outcome.result
            primary.transition(RequestStatus.PENDING_APPROVAL,
                               f"committed on attempt {outcome.attempt}")
            for request_id in execution.request_ids[1:]:
                subscriber = self.api.get_request(request_id)
                subscriber.result = outcome.result
                subscriber.transition(
                    RequestStatus.PENDING_APPROVAL,
                    f"shared result of {primary.request_id}"
                )
            self._metrics.counter("service.commits",
                                  tenant=execution.tenant).inc()
            self._telemetry.event("service.commits",
                                  tenant=execution.tenant)
            self._telemetry.observe(
                "service.backend_seconds",
                self.clock.now() - lease.granted_at,
                tenant=execution.tenant,
            )
            self._finish(execution, "committed",
                         fanout=len(execution.request_ids))
        else:
            # Deterministic back-end failure: retrying cannot change
            # physics, so the execution fails now, retry budget unspent.
            primary.failure_reason = outcome.error
            primary.transition(RequestStatus.FAILED, outcome.error)
            self._fail_subscribers(execution, outcome.error)
            self._metrics.counter("service.backend_failures",
                                  tenant=execution.tenant).inc()
            self._telemetry.event("service.backend_failures",
                                  tenant=execution.tenant)
            self._finish(execution, "failed", reason=outcome.error)
        return 1

    # -- helpers --------------------------------------------------------

    def _fail_subscribers(self, execution: _Execution,
                          reason: str) -> None:
        for request_id in execution.request_ids[1:]:
            subscriber = self.api.get_request(request_id)
            subscriber.failure_reason = reason
            subscriber.transition(RequestStatus.FAILED, reason)

    def _finish(self, execution: _Execution, verdict: str,
                **payload) -> None:
        del self._executions[execution.key]
        self._record(verdict, key=execution.key,
                     tenant=execution.tenant,
                     attempt=execution.attempt,
                     request_id=execution.request_ids[0], **payload)

    def _update_depth_gauges(self) -> None:
        for tenant, depth in self.queue.depths().items():
            self._metrics.gauge("service.queue_depth",
                                tenant=tenant).set(depth)
        self._metrics.gauge("service.inflight").set(len(self.leases))

    def _sample_depth_series(self, now: float) -> None:
        """One windowed depth sample per registered tenant per round."""
        depths = self.queue.depths()
        for tenant in sorted(depths):
            self._telemetry.observe("service.queue_depth",
                                    depths[tenant], tenant=tenant)
        self._telemetry.observe("service.inflight",
                                float(len(self.leases)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's metrics registry."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The service's tracer."""
        return self._tracer

    @property
    def telemetry(self) -> TelemetryHub:
        """The service's windowed telemetry hub."""
        return self._telemetry

    def pending_executions(self) -> int:
        """Executions still queued, leased, or backing off."""
        return len(self._executions)
