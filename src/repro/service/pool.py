"""The lease worker pool: what actually runs a leased request.

:func:`execute_lease` is the module-level worker function —
pool-safe by construction: it mutates nothing it did not create,
draws no randomness of its own (back ends seed their chains from
their own configuration), and reports *everything* as a returned
:class:`LeaseOutcome`, never an exception. A worker that dies is
modelled by the ``crashed`` outcome status: the driver treats it
exactly like a worker that reported nothing, leaving the lease to
expire and the retry machinery to recover — which is what a real
killed process would look like.

:func:`run_lease_batch` is the fan-out primitive, registered with
:mod:`repro.runtime.workers` so the DAS3xx parallel-safety rules
trace lease workers like any other pool worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.recast.backend import RecastBackend
from repro.recast.catalog import PreservedSearch
from repro.recast.requests import ModelSpec
from repro.recast.results import RecastResult
from repro.runtime import ExecutionPolicy, parallel_map

#: Outcome statuses a lease worker can report.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_CRASHED = "crashed"


class WorkerCrash(ServiceError):
    """A worker died mid-request (infrastructure, not physics).

    Raised by fault-injecting back ends to simulate a killed worker;
    distinct from ordinary back-end exceptions, which are
    deterministic request failures and are **not** retried.
    """


@dataclass(frozen=True)
class LeaseTask:
    """Everything one worker needs to run one leased execution.

    Pure data plus a picklable back end, so the task crosses a
    process-pool boundary unchanged.
    """

    key: str
    attempt: int
    analysis_id: str
    backend: RecastBackend
    search: PreservedSearch
    model: ModelSpec


@dataclass(frozen=True)
class LeaseOutcome:
    """What one worker reports back for one leased execution."""

    key: str
    attempt: int
    status: str
    result: RecastResult | None = None
    error: str = ""


def execute_lease(task: LeaseTask) -> LeaseOutcome:
    """Run one leased request through its back end.

    Never raises: a :class:`WorkerCrash` becomes a ``crashed``
    outcome (the driver ignores it and lets the lease expire), any
    other exception becomes an ``error`` outcome (a deterministic
    request failure, committed as FAILED without retry).
    """
    try:
        result = task.backend.process(task.search, task.model)
    except WorkerCrash as crash:
        return LeaseOutcome(key=task.key, attempt=task.attempt,
                            status=OUTCOME_CRASHED, error=str(crash))
    except Exception as exc:
        return LeaseOutcome(key=task.key, attempt=task.attempt,
                            status=OUTCOME_ERROR, error=str(exc))
    return LeaseOutcome(key=task.key, attempt=task.attempt,
                        status=OUTCOME_OK, result=result)


def run_lease_batch(
    fn,
    tasks: list[LeaseTask],
    policy: ExecutionPolicy | None = None,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[LeaseOutcome]:
    """Fan one batch of lease tasks out across the worker pool.

    Outcomes come back in task order regardless of worker finish
    order (the :func:`~repro.runtime.parallel_map` contract), so the
    driver's commit sequence — and therefore the event log — is
    deterministic under every :class:`~repro.runtime.ExecutionPolicy`.
    """
    return parallel_map(fn, tasks, policy, tracer=tracer,
                        metrics=metrics)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

@dataclass
class CrashingBackend(RecastBackend):
    """A back end whose first ``crash_times`` calls per key die.

    The crash-injection harness for lease tests and benchmarks: each
    distinct ``(analysis, model)`` question crashes with
    :class:`WorkerCrash` on its first ``crash_times`` process calls,
    then delegates to the wrapped back end. Call counting lives in the
    driver-side instance, so fault injection requires a serial or
    thread policy (a process pool's copy would forget its count —
    exactly why real services persist attempt counts driver-side).
    """

    inner: RecastBackend
    crash_times: int = 1
    name: str = "crashing"
    _calls: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.crash_times < 0:
            raise ServiceError(
                f"crash_times must be >= 0, got {self.crash_times}"
            )

    def process(self, search: PreservedSearch,
                model: ModelSpec) -> RecastResult:
        """Crash for the first ``crash_times`` calls, then delegate."""
        question = (search.analysis_id, model.name)
        seen = self._calls.get(question, 0)
        self._calls[question] = seen + 1
        if seen < self.crash_times:
            raise WorkerCrash(
                f"injected worker death #{seen + 1} for "
                f"{model.name!r} vs {search.analysis_id!r}"
            )
        return self.inner.process(search, model)


@dataclass
class FailingBackend(RecastBackend):
    """A back end that always fails deterministically (no crash).

    Models a physics-level failure — the request is wrong, retrying
    cannot help — so the scheduler must commit FAILED without
    consuming retry attempts.
    """

    reason: str = "injected deterministic failure"
    name: str = "failing"

    def process(self, search: PreservedSearch,
                model: ModelSpec) -> RecastResult:
        """Raise the configured failure."""
        raise ServiceError(self.reason)
