"""repro.service: the RECAST system run as a multi-tenant service.

The paper's RECAST vision is an always-on facility: many requesters,
one pool of preserved analyses, experiments in control of what runs
and what is released. This package supplies the scheduling middle:
per-tenant fair-share queueing with quotas
(:mod:`repro.service.queue`), content-addressed request deduplication
with a result cache (:mod:`repro.service.dedup`), lease-based
exactly-once execution with capped retries
(:mod:`repro.service.lease`, :mod:`repro.service.pool`), and the
deterministic scheduler that ties them together
(:mod:`repro.service.scheduler`) — replayable from submission scripts
(:mod:`repro.service.script`).
"""

from repro.service.config import ServiceConfig, TenantQuota
from repro.service.dedup import (
    CacheStats,
    ResultCache,
    backend_fingerprint,
    dedup_key,
)
from repro.service.lease import Lease, LeaseTable
from repro.service.pool import (
    CrashingBackend,
    FailingBackend,
    LeaseOutcome,
    LeaseTask,
    WorkerCrash,
    execute_lease,
    run_lease_batch,
)
from repro.service.queue import FairShareQueue, QueueEntry
from repro.service.scheduler import RecastService, SubmitTicket
from repro.service.script import (
    default_service_slo,
    demo_api,
    demo_script,
    load_script,
    run_script,
    validate_script,
)

__all__ = [
    "CacheStats",
    "CrashingBackend",
    "FailingBackend",
    "FairShareQueue",
    "Lease",
    "LeaseOutcome",
    "LeaseTable",
    "LeaseTask",
    "QueueEntry",
    "RecastService",
    "ResultCache",
    "ServiceConfig",
    "SubmitTicket",
    "TenantQuota",
    "WorkerCrash",
    "backend_fingerprint",
    "dedup_key",
    "default_service_slo",
    "demo_api",
    "demo_script",
    "execute_lease",
    "load_script",
    "run_lease_batch",
    "run_script",
    "validate_script",
]
