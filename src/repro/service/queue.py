"""The multi-tenant priority queue with fair-share scheduling.

Selection is a deterministic *stride scheduler*: each tenant carries a
virtual time that advances by ``1 / weight`` whenever one of its
executions is leased, and the schedulable tenant with the smallest
``(virtual time, name)`` goes next — so a weight-2 tenant receives
twice the lease slots of a weight-1 tenant under contention, with no
clocks, randomness, or arrival-timing dependence anywhere. Within a
tenant, entries order by ``(-priority, sequence)``: higher priority
first, FIFO among equals.

Quotas are enforced at two distinct points: ``max_queued`` at
admission (:meth:`FairShareQueue.push` raises
:class:`~repro.errors.QuotaError`), ``max_inflight`` at selection
(:meth:`FairShareQueue.pop_next` skips tenants at their concurrency
cap — their work stays queued, never lost).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import QuotaError, ServiceError
from repro.service.config import TenantQuota


@dataclass(frozen=True)
class QueueEntry:
    """One schedulable execution waiting for a lease.

    ``sequence`` is the service-wide admission number — the FIFO
    tie-breaker and the reason replays order identically.
    """

    key: str
    tenant: str
    priority: int
    sequence: int


@dataclass
class _TenantState:
    """Book-keeping for one registered tenant."""

    quota: TenantQuota
    virtual_time: float = 0.0
    #: Heap of (-priority, sequence, entry): priority then FIFO.
    waiting: list = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.waiting)


class FairShareQueue:
    """Deterministic weighted fair queueing across tenants."""

    def __init__(self) -> None:
        self._tenants: dict[str, _TenantState] = {}

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------

    def register_tenant(self, name: str, quota: TenantQuota) -> None:
        """Admit a tenant; duplicate registrations are driver bugs."""
        if not name:
            raise ServiceError("tenant needs a non-empty name")
        if name in self._tenants:
            raise ServiceError(f"tenant {name!r} already registered")
        self._tenants[name] = _TenantState(quota=quota)

    def tenants(self) -> list[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def quota(self, tenant: str) -> TenantQuota:
        """The quota of one registered tenant."""
        return self._state(tenant).quota

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ServiceError(
                f"unknown tenant {tenant!r}; register it first"
            ) from None

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------

    def push(self, entry: QueueEntry, *, requeue: bool = False) -> None:
        """Admit one execution to its tenant's queue.

        ``requeue=True`` bypasses the ``max_queued`` admission check:
        a retried execution was already admitted once, and bouncing it
        at the quota would turn a worker crash into a lost request.
        """
        state = self._state(entry.tenant)
        if not requeue and state.depth >= state.quota.max_queued:
            raise QuotaError(
                f"tenant {entry.tenant!r} has {state.depth} queued "
                f"execution(s), at its max_queued="
                f"{state.quota.max_queued} quota"
            )
        heapq.heappush(state.waiting,
                       (-entry.priority, entry.sequence, entry))

    def pop_next(self, inflight: dict[str, int]) -> QueueEntry | None:
        """The next execution to lease, or None when nothing may run.

        ``inflight`` maps tenant name to its current leased-execution
        count; tenants at their ``max_inflight`` cap are skipped, and
        the stride scheduler picks among the rest.
        """
        best: str | None = None
        for name in sorted(self._tenants):
            state = self._tenants[name]
            if not state.waiting:
                continue
            if inflight.get(name, 0) >= state.quota.max_inflight:
                continue
            if (best is None or state.virtual_time
                    < self._tenants[best].virtual_time):
                best = name
        if best is None:
            return None
        state = self._tenants[best]
        _, _, entry = heapq.heappop(state.waiting)
        state.virtual_time += 1.0 / state.quota.weight
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def depth(self, tenant: str) -> int:
        """Queued executions of one tenant."""
        return self._state(tenant).depth

    def total_depth(self) -> int:
        """Queued executions across all tenants."""
        return sum(state.depth for state in self._tenants.values())

    def depths(self) -> dict[str, int]:
        """Queue depth per tenant, name-sorted."""
        return {name: self._tenants[name].depth
                for name in sorted(self._tenants)}
