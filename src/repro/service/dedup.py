"""Content-addressed request deduplication and the result cache.

Two submissions asking the same question — the same preserved
analysis, the same model parameters, the same back-end configuration —
must not run the full chain twice. The dedup key is the SHA-256 of
that question's canonical JSON form; every submission hashing to an
in-flight execution *subscribes* to it, and every submission hashing
to a completed one is answered from the :class:`ResultCache`
immediately. Repeat parameter scans therefore degrade into cache
reads, which is what lets the service absorb heavy repeat traffic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.canonical import canonical_json
from repro.recast.requests import ModelSpec
from repro.recast.results import RecastResult

#: Backend constructor attributes that define *what* is computed.
#: Deliberately a closed list: runtime knobs (tracers, caches) must
#: never leak into the dedup identity.
_FINGERPRINT_TYPES = (bool, int, float, str)


def backend_fingerprint(backend) -> dict:
    """The JSON-able configuration identity of one back end.

    Collects the backend class, its reported ``name``, and every
    public scalar attribute (event counts, seeds, toy counts, flags) —
    the values that change *what a request computes*. Non-scalar
    attributes (conditions stores, repositories) are identified by
    their class name only.
    """
    fingerprint: dict = {
        "class": type(backend).__name__,
        "name": getattr(backend, "name", type(backend).__name__),
    }
    for attribute, value in sorted(vars(backend).items()):
        if attribute.startswith("_"):
            continue
        if isinstance(value, _FINGERPRINT_TYPES):
            fingerprint[attribute] = value
        else:
            fingerprint[attribute] = type(value).__name__
    return fingerprint


def dedup_key(analysis_id: str, model: ModelSpec,
              backend_config: dict) -> str:
    """The content address of one (analysis, model, backend) question.

    Canonical JSON (sorted keys, fixed separators) hashed with
    SHA-256, so the key is stable across processes, runs, and hosts.

    >>> spec = ModelSpec("Zp", "zprime", {"mass": 1000.0})
    >>> key = dedup_key("A-01", spec, {"class": "Stub"})
    >>> key == dedup_key("A-01", spec, {"class": "Stub"})
    True
    >>> len(key)
    64
    """
    payload = canonical_json(
        {"analysis": analysis_id, "model": model.to_dict(),
         "backend": backend_config})
    return hashlib.sha256(payload).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one result cache."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ResultCache:
    """Committed results keyed by dedup key.

    The cache is unbounded by design: a committed RECAST result is a
    preserved artifact, not an eviction candidate, and one entry is a
    few hundred bytes.
    """

    _entries: dict[str, RecastResult] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def get(self, key: str) -> RecastResult | None:
        """The cached result for ``key``, counting the lookup."""
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, key: str, result: RecastResult) -> None:
        """Store one committed result (idempotent per key)."""
        self._entries[key] = result

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
