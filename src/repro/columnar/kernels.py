"""Batched detector-simulation and digitisation kernels.

The scalar :meth:`DetectorSimulation.simulate` / :meth:`Digitizer.digitize`
paths draw every random number one at a time from a single generator, in
the order the physics loop reaches them. The batch kernels here reorganise
those draws into a handful of *phase streams* — one seeded generator per
draw category (vertex smearing, efficiencies, calorimeter smearing,
tracker noise, ...) — so each category becomes a single vectorised
``Generator`` call over all events at once.

Seeding contract
----------------
Each phase stream is seeded with the same SHA-256 derivation the runtime
scheduler uses for work units::

    np.random.default_rng(derive_seed(seed, "columnar", phase))

so batch output is a pure function of the configured seed, reproducible
across runs and machines, and statistically independent of the scalar
stream. Because the draws are re-phased, batch events are **not
bit-identical** to scalar events — they are drawn from the identical
distributions with the identical acceptance logic (the equivalence suite
checks distribution-level agreement). Where bit-identity *is* possible —
the object-level smearing kernels in :mod:`repro.detector.response` fed
from one stream in scalar draw order — the vectorised call matches the
scalar loop exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.columnar.fourvec import wrap_phi_array
from repro.columnar.tiers import equivalence_tier
from repro.detector.digitization import (
    CaloCellHit,
    Digitizer,
    MuonChamberHit,
    RawEvent,
    TrackerHit,
)
from repro.detector.simulation import (
    _MUON_MIP_ENERGY,
    CaloDeposit,
    DetectorSimulation,
    SimulatedEvent,
    Traversal,
)
from repro.errors import DetectorError
from repro.generation.hepmc import GenEvent
from repro.runtime.scheduler import derive_seed

#: Draw-phase names, in documentation order.
SIMULATION_PHASES = ("vertex", "efficiency", "mip", "ecal", "hcal")
DIGITIZATION_PHASES = ("tracker", "tracker_noise", "calo", "calo_noise",
                       "muon")


def batch_stream(seed: int, phase: str) -> np.random.Generator:
    """The seeded generator of one batch draw phase."""
    return np.random.default_rng(derive_seed(seed, "columnar", phase))


def _streams(seed: int, phases) -> dict[str, np.random.Generator]:
    return {phase: batch_stream(seed, phase) for phase in phases}


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------


@equivalence_tier("statistical")
def simulate_batch(sim: DetectorSimulation,
                   events: list[GenEvent]) -> list[SimulatedEvent]:
    """Vectorised twin of ``[sim.simulate(e) for e in events]``.

    The per-particle classification (visibility, acceptance, charge) is
    identical to the scalar path; only the random draws are re-phased
    into vectorised per-category calls.
    """
    config = sim.config
    geometry = sim.geometry
    streams = _streams(sim.seed, SIMULATION_PHASES)
    n_events = len(events)

    vertex_x = streams["vertex"].normal(
        0.0, config.beamspot_sigma_xy_mm, size=n_events)
    vertex_y = streams["vertex"].normal(
        0.0, config.beamspot_sigma_xy_mm, size=n_events)
    vertex_z = streams["vertex"].normal(
        0.0, config.beamspot_sigma_z_mm, size=n_events)

    tracker = geometry.tracker
    muon_system = geometry.muon_system
    ecal = geometry.ecal
    hcal = geometry.hcal

    # Classification pass: no RNG, records which draws each particle
    # needs. ``candidates`` are potential tracker traversals awaiting an
    # efficiency draw; deposit slots await mip and/or smearing draws.
    sim_events: list[SimulatedEvent] = []
    candidates: list[tuple[SimulatedEvent, object, float, tuple, bool]] = []
    candidate_pts: list[float] = []
    candidate_is_muon: list[bool] = []
    mip_energies: list[float] = []
    ecal_true: list[float] = []
    hcal_true: list[float] = []
    # (sim_event, truth_index, subdetector name, eta, phi, array, index)
    deposit_slots: list[tuple] = []

    for index, event in enumerate(events):
        primary_vertex = (float(vertex_x[index]), float(vertex_y[index]),
                          float(vertex_z[index]))
        sim_event = SimulatedEvent(
            event_number=event.event_number,
            process_name=event.process_name,
            primary_vertex=primary_vertex,
            truth=event,
        )
        sim_events.append(sim_event)
        for particle in event.final_state():
            if not sim._is_visible(particle):
                continue
            momentum = particle.momentum
            charge = sim._charge_of(particle.pdg_id)
            origin = particle.production_vertex
            if origin is None:
                origin = primary_vertex
            else:
                origin = (origin[0] + primary_vertex[0],
                          origin[1] + primary_vertex[1],
                          origin[2] + primary_vertex[2])
            abs_id = abs(particle.pdg_id)
            is_muon = abs_id == 13

            if (charge != 0.0
                    and momentum.pt >= config.min_track_pt
                    and sim._in_acceptance(particle, tracker.eta_max)):
                reaches_muon = (
                    is_muon
                    and momentum.pt > 3.0
                    and sim._in_acceptance(particle, muon_system.eta_max)
                )
                candidates.append(
                    (sim_event, particle, charge, origin, reaches_muon))
                candidate_pts.append(momentum.pt)
                candidate_is_muon.append(is_muon)

            eta = momentum.eta
            if math.isinf(eta):
                continue
            phi = momentum.phi
            energy = momentum.e
            if is_muon:
                if abs(eta) <= hcal.eta_max:
                    mip_slot = len(mip_energies)
                    mip_energies.append(energy)
                    deposit_slots.append((sim_event, particle.index,
                                          hcal.name, eta, phi,
                                          "hcal", ("mip", mip_slot, 0.7)))
                    deposit_slots.append((sim_event, particle.index,
                                          ecal.name, eta, phi,
                                          "ecal", ("mip", mip_slot, 0.3)))
            elif abs_id in (11, 22):
                if abs(eta) <= ecal.eta_max:
                    deposit_slots.append((sim_event, particle.index,
                                          ecal.name, eta, phi, "ecal",
                                          len(ecal_true)))
                    ecal_true.append(energy)
            elif abs(eta) <= hcal.eta_max:
                if abs(eta) <= ecal.eta_max:
                    ecal_part = 0.25 * energy
                    deposit_slots.append((sim_event, particle.index,
                                          ecal.name, eta, phi, "ecal",
                                          len(ecal_true)))
                    ecal_true.append(ecal_part)
                    hcal_part = energy - ecal_part
                else:
                    hcal_part = energy
                deposit_slots.append((sim_event, particle.index,
                                      hcal.name, eta, phi, "hcal",
                                      len(hcal_true)))
                hcal_true.append(hcal_part)

    # Efficiency phase: one uniform per candidate, against the curve that
    # the particle species selects.
    pts = np.asarray(candidate_pts, dtype=np.float64)
    is_muon_arr = np.asarray(candidate_is_muon, dtype=bool)
    values = np.where(is_muon_arr,
                      config.muon_efficiency.value_array(pts),
                      config.track_efficiency.value_array(pts))
    passed = streams["efficiency"].uniform(size=len(pts)) < values
    for keep, (sim_event, particle, charge, origin, reaches_muon) in zip(
            passed, candidates):
        if keep:
            sim_event.traversals.append(Traversal(
                truth_index=particle.index,
                pdg_id=particle.pdg_id,
                charge=charge,
                momentum=particle.momentum,
                origin=origin,
                reaches_muon_system=reaches_muon,
            ))

    # Muon MIP phase, then the two calorimeter smearing phases. Slots
    # tagged ("mip", i, fraction) resolve to a fraction of the capped
    # exponential ionisation draw, then smear through their calorimeter.
    mip = np.minimum(
        np.asarray(mip_energies, dtype=np.float64),
        streams["mip"].exponential(_MUON_MIP_ENERGY,
                                   size=len(mip_energies)))
    ecal_energies = np.asarray(ecal_true, dtype=np.float64)
    hcal_energies = np.asarray(hcal_true, dtype=np.float64)
    mip_ecal = config.ecal_response.smear_array(0.3 * mip, streams["ecal"])
    mip_hcal = config.hcal_response.smear_array(0.7 * mip, streams["hcal"])
    ecal_measured = config.ecal_response.smear_array(ecal_energies,
                                                     streams["ecal"])
    hcal_measured = config.hcal_response.smear_array(hcal_energies,
                                                     streams["hcal"])

    for (sim_event, truth_index, sub_name, eta, phi,
         calo, slot) in deposit_slots:
        if isinstance(slot, tuple):
            _, mip_index, fraction = slot
            measured = (mip_ecal[mip_index] if calo == "ecal"
                        else mip_hcal[mip_index])
        else:
            measured = (ecal_measured[slot] if calo == "ecal"
                        else hcal_measured[slot])
        sim_event.deposits.append(CaloDeposit(
            truth_index, sub_name, eta, phi, float(measured)))

    return sim_events


# ----------------------------------------------------------------------
# Digitisation
# ----------------------------------------------------------------------


@equivalence_tier("statistical")
def digitize_batch(digi: Digitizer,
                   sim_events: list[SimulatedEvent]) -> list[RawEvent]:
    """Vectorised twin of ``[digi.digitize(e) for e in sim_events]``.

    Bunch-crossing numbering continues from the digitiser's current
    counter exactly as the scalar loop would advance it.
    """
    from repro.detector.digitization import KAPPA

    config = digi.config
    geometry = digi.geometry
    tracker = geometry.tracker
    muon_system = geometry.muon_system
    streams = _streams(digi.seed, DIGITIZATION_PHASES)
    n_events = len(sim_events)

    start_bx = digi._bx
    raws = [RawEvent(run_number=digi.run_number,
                     event_number=sim_event.event_number,
                     bunch_crossing=start_bx + index + 1)
            for index, sim_event in enumerate(sim_events)]
    # lint: ignore[DAS309] -- the scalar contract: digitisation advances
    # the digitiser's bunch-crossing counter exactly like digi.digitize()
    digi._bx = start_bx + n_events

    # ---- Tracker hits from traversals -------------------------------
    # One candidate entry per (traversal, layer) the particle can reach;
    # geometry (z position, envelope) is deterministic, so only the
    # inefficiency uniform and the two noise normals are drawn.
    entry_raw: list[RawEvent] = []
    entry_layer: list[int] = []
    radius_list: list[float] = []
    phi_geo: list[float] = []
    z_geo: list[float] = []
    envelope_ok: list[bool] = []
    z_envelope = math.sinh(tracker.eta_max)
    for raw, sim_event in zip(raws, sim_events):
        for traversal in sim_event.traversals:
            momentum = traversal.momentum
            pt = momentum.pt
            if pt <= 0.0:
                raise DetectorError("cannot digitise a zero-pt traversal")
            eta = momentum.eta
            phi0 = momentum.phi
            x0, y0, z0 = traversal.origin
            d0 = x0 * math.sin(phi0) - y0 * math.cos(phi0)
            curvature = (-traversal.charge * KAPPA
                         * geometry.bfield_tesla / (2.0 * pt))
            transverse_origin = math.hypot(x0, y0)
            sinh_eta = math.sinh(eta)
            for layer, radius in enumerate(tracker.layer_radii_mm):
                if radius <= transverse_origin:
                    continue
                z = z0 + radius * sinh_eta
                entry_raw.append(raw)
                entry_layer.append(layer)
                radius_list.append(radius)
                phi_geo.append(phi0 + d0 / radius + curvature * radius)
                z_geo.append(z)
                envelope_ok.append(
                    abs(z) <= radius * z_envelope + 200.0)

    radii = np.asarray(radius_list, dtype=np.float64)
    uniforms = streams["tracker"].uniform(size=len(radii))
    kept = ((uniforms >= config.layer_inefficiency)
            & np.asarray(envelope_ok, dtype=bool))
    kept_indices = np.flatnonzero(kept)
    sigma_phi = tracker.hit_resolution_mm / radii[kept_indices]
    phi_noise = streams["tracker"].normal(0.0, sigma_phi)
    z_noise = streams["tracker"].normal(
        0.0, 3.0 * tracker.hit_resolution_mm, size=len(kept_indices))
    phis = wrap_phi_array(
        np.asarray(phi_geo, dtype=np.float64)[kept_indices] + phi_noise)
    zs = np.asarray(z_geo, dtype=np.float64)[kept_indices] + z_noise
    for position, flat in enumerate(kept_indices.tolist()):
        entry_raw[flat].tracker_hits.append(TrackerHit(
            layer=entry_layer[flat],
            r_mm=radius_list[flat],
            phi=float(phis[position]),
            z_mm=float(zs[position]),
        ))

    # ---- Tracker noise hits ------------------------------------------
    n_layers = len(tracker.layer_radii_mm)
    noise_counts = streams["tracker_noise"].poisson(
        config.tracker_noise_hits, size=n_events)
    total_noise = int(noise_counts.sum())
    noise_layers = streams["tracker_noise"].integers(
        0, n_layers, size=total_noise)
    noise_phis = streams["tracker_noise"].uniform(
        -math.pi, math.pi, size=total_noise)
    noise_zs = streams["tracker_noise"].uniform(
        -2500.0, 2500.0, size=total_noise)
    cursor = 0
    for raw, count in zip(raws, noise_counts.tolist()):
        for offset in range(cursor, cursor + count):
            layer = int(noise_layers[offset])
            raw.tracker_hits.append(TrackerHit(
                layer=layer,
                r_mm=tracker.layer_radii_mm[layer],
                phi=float(noise_phis[offset]),
                z_mm=float(noise_zs[offset]),
            ))
        cursor += count

    # ---- Calorimeter cells -------------------------------------------
    # Neighbour-sharing direction per valid deposit, batched.
    valid_deposits: list[tuple[int, object, tuple[int, int]]] = []
    for index, sim_event in enumerate(sim_events):
        for deposit in sim_event.deposits:
            cell = digi._cell_index(deposit.subdetector, deposit.eta,
                                    deposit.phi)
            if cell is not None:
                valid_deposits.append((index, deposit, cell))
    directions = (streams["calo"].integers(
        0, 2, size=len(valid_deposits)) * 2 - 1)

    cell_maps: list[dict[tuple[str, int, int], float]] = [
        {} for _ in range(n_events)]
    for (index, deposit, (ieta, iphi)), direction in zip(
            valid_deposits, directions.tolist()):
        cells = cell_maps[index]
        core_key = (deposit.subdetector, ieta, iphi)
        cells[core_key] = (cells.get(core_key, 0.0)
                           + 0.8 * deposit.measured_energy)
        sub = geometry.subdetectors[deposit.subdetector]
        neighbour_key = (deposit.subdetector, ieta,
                         (iphi + direction) % sub.phi_cells)
        cells[neighbour_key] = (cells.get(neighbour_key, 0.0)
                                + 0.2 * deposit.measured_energy)

    cell_counts = [len(cells) for cells in cell_maps]
    cell_noise = streams["calo"].normal(
        0.0, config.calo_cell_noise, size=sum(cell_counts))
    cursor = 0
    for raw, cells in zip(raws, cell_maps):
        for (sub_name, ieta, iphi), energy in cells.items():
            noisy = energy + float(cell_noise[cursor])
            cursor += 1
            if noisy >= config.calo_cell_threshold:
                raw.calo_hits.append(
                    CaloCellHit(sub_name, ieta, iphi, noisy))

    # ---- Pure-noise calorimeter cells --------------------------------
    noise_subs = [name for name in ("ecal", "hcal")
                  if name in geometry.subdetectors]
    sub_counts = {
        name: streams["calo_noise"].poisson(config.calo_noise_cells,
                                            size=n_events)
        for name in noise_subs
    }
    for name in noise_subs:
        sub = geometry.subdetectors[name]
        counts = sub_counts[name]
        total = int(counts.sum())
        ietas = streams["calo_noise"].integers(0, sub.eta_cells,
                                               size=total)
        iphis = streams["calo_noise"].integers(0, sub.phi_cells,
                                               size=total)
        energies = (config.calo_cell_threshold
                    + streams["calo_noise"].exponential(0.1, size=total))
        cursor = 0
        for raw, count in zip(raws, counts.tolist()):
            for offset in range(cursor, cursor + count):
                raw.calo_hits.append(CaloCellHit(
                    sub.name, int(ietas[offset]), int(iphis[offset]),
                    float(energies[offset])))
            cursor += count

    # ---- Muon chamber hits -------------------------------------------
    muon_entries: list[tuple[RawEvent, Traversal, int]] = []
    angular_list: list[float] = []
    for raw, sim_event in zip(raws, sim_events):
        for traversal in sim_event.traversals:
            if not traversal.reaches_muon_system:
                continue
            for station, radius in enumerate(muon_system.layer_radii_mm):
                muon_entries.append((raw, traversal, station))
                angular_list.append(
                    muon_system.hit_resolution_mm / radius)
    muon_uniforms = streams["muon"].uniform(size=len(muon_entries))
    muon_kept = np.flatnonzero(
        muon_uniforms >= config.layer_inefficiency)
    angular = np.asarray(angular_list, dtype=np.float64)[muon_kept]
    eta_noise = streams["muon"].normal(0.0, 5.0 * angular)
    phi_noise = streams["muon"].normal(0.0, angular)
    kept_entries = [muon_entries[flat] for flat in muon_kept.tolist()]
    phis = wrap_phi_array(np.fromiter(
        (entry[1].momentum.phi for entry in kept_entries),
        dtype=np.float64, count=len(kept_entries)) + phi_noise)
    for position, (raw, traversal, station) in enumerate(kept_entries):
        raw.muon_hits.append(MuonChamberHit(
            station=station,
            eta=traversal.momentum.eta + float(eta_noise[position]),
            phi=float(phis[position]),
        ))

    return raws
