"""Vectorised candidate-object building.

:class:`ColumnarObjectBuilder` produces **bit-identical** output to the
scalar :class:`~repro.reconstruction.objects.ObjectBuilder`: the O(n^2)
geometric decisions (isolation cones, muon-segment matching, cluster
vetoes) are evaluated as whole delta-R matrices, but every decision uses
the same float64 values and the same comparison the scalar loops use —
``delta_r`` matrices are sqrt-of-squares exactly like
``ObjectBuilder._delta_r``, isolation sums accumulate in list order via
``np.bincount``, and greedy electron-cluster matching replays the scalar
first-strict-minimum rule with ``argmin``. The final object construction
(four-vectors from track/cluster parameters) deliberately stays scalar:
those are one-per-object operations, and sharing the code path with the
per-event builder is what makes the equivalence testable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.columnar.fourvec import delta_phi_array
from repro.detector.digitization import MuonChamberHit
from repro.kinematics import FourVector
from repro.reconstruction.clustering import CaloCluster
from repro.reconstruction.objects import (
    ELECTRON_MASS,
    MUON_MASS,
    Electron,
    MissingEnergy,
    Muon,
    ObjectBuilder,
    ObjectBuilderConfig,
    Photon,
)
from repro.reconstruction.tracking import Track


def delta_r_matrix(eta1: np.ndarray, phi1: np.ndarray,
                   eta2: np.ndarray, phi2: np.ndarray) -> np.ndarray:
    """The (len(eta1), len(eta2)) matrix of pairwise delta-R values.

    Element (i, j) is bit-identical to
    ``ObjectBuilder._delta_r(eta1[i], phi1[i], eta2[j], phi2[j])``.
    """
    d_eta = eta1[:, None] - eta2[None, :]
    d_phi = delta_phi_array(phi1[:, None], phi2[None, :])
    return np.sqrt(d_eta * d_eta + d_phi * d_phi)


def _track_arrays(tracks: list[Track]) -> tuple[np.ndarray, ...]:
    n = len(tracks)
    eta = np.fromiter((t.eta for t in tracks), dtype=np.float64, count=n)
    phi = np.fromiter((t.phi for t in tracks), dtype=np.float64, count=n)
    pt = np.fromiter((t.pt for t in tracks), dtype=np.float64, count=n)
    return eta, phi, pt


class ColumnarObjectBuilder:
    """Matrix-based twin of :class:`ObjectBuilder` (bit-identical)."""

    def __init__(self, config: ObjectBuilderConfig | None = None) -> None:
        self.config = config if config is not None else ObjectBuilderConfig()
        self._scalar = ObjectBuilder(self.config)

    def _isolations(self, eta: np.ndarray, phi: np.ndarray,
                    pt: np.ndarray) -> np.ndarray:
        """Track isolation sums, in scalar accumulation order.

        ``np.nonzero`` enumerates the in-cone matrix row-major — for
        each track, the others in list order — and ``np.bincount`` adds
        the weights sequentially in that order, so each sum reproduces
        the scalar left-to-right addition bit for bit.
        """
        n = len(pt)
        if n == 0:
            return np.zeros(0)
        in_cone = delta_r_matrix(eta, phi, eta, phi) \
            < self.config.isolation_cone
        np.fill_diagonal(in_cone, False)
        rows, cols = np.nonzero(in_cone)
        return np.bincount(rows, weights=pt[cols], minlength=n)

    def build_muons(self, tracks: list[Track],
                    muon_hits: list[MuonChamberHit]) -> list[Muon]:
        """Vectorised twin of :meth:`ObjectBuilder.build_muons`."""
        if not tracks:
            return []
        eta, phi, pt = _track_arrays(tracks)
        iso = self._isolations(eta, phi, pt)
        n_stations = np.zeros(len(tracks), dtype=np.int64)
        if muon_hits:
            hit_eta = np.fromiter((h.eta for h in muon_hits),
                                  dtype=np.float64, count=len(muon_hits))
            hit_phi = np.fromiter((h.phi for h in muon_hits),
                                  dtype=np.float64, count=len(muon_hits))
            stations = np.fromiter((h.station for h in muon_hits),
                                   dtype=np.int64, count=len(muon_hits))
            matched = delta_r_matrix(eta, phi, hit_eta, hit_phi) \
                < self.config.match_delta_r
            for station in np.unique(stations):
                n_stations += matched[:, stations == station].any(axis=1)
        selected = (pt >= self.config.muon_min_pt) \
            & (n_stations >= self.config.muon_min_stations)
        return [
            Muon(
                p4=tracks[i].p4(MUON_MASS),
                charge=tracks[i].charge,
                n_stations=int(n_stations[i]),
                isolation=float(iso[i]),
            )
            for i in np.flatnonzero(selected)
        ]

    def build_electrons(self, tracks: list[Track],
                        ecal_clusters: list[CaloCluster],
                        muons: list[Muon]) -> list[Electron]:
        """Vectorised twin of :meth:`ObjectBuilder.build_electrons`.

        The greedy one-cluster-per-track assignment is order dependent,
        so candidates are walked in track order; per candidate the
        nearest *unused* cluster comes from an ``argmin`` over a
        precomputed delta-R row (first-occurrence semantics match the
        scalar strict-minimum scan).
        """
        if not tracks:
            return []
        eta, phi, pt = _track_arrays(tracks)
        iso = self._isolations(eta, phi, pt)
        candidate = pt >= self.config.electron_min_pt
        if muons:
            muon_eta = np.fromiter((m.p4.eta for m in muons),
                                   dtype=np.float64, count=len(muons))
            muon_phi = np.fromiter((m.p4.phi for m in muons),
                                   dtype=np.float64, count=len(muons))
            near_muon = (delta_r_matrix(eta, phi, muon_eta, muon_phi)
                         < 0.05).any(axis=1)
            candidate &= ~near_muon
        electrons: list[Electron] = []
        if not ecal_clusters:
            return electrons
        cluster_eta = np.fromiter((c.eta for c in ecal_clusters),
                                  dtype=np.float64,
                                  count=len(ecal_clusters))
        cluster_phi = np.fromiter((c.phi for c in ecal_clusters),
                                  dtype=np.float64,
                                  count=len(ecal_clusters))
        dr = delta_r_matrix(eta, phi, cluster_eta, cluster_phi)
        unused = np.ones(len(ecal_clusters), dtype=bool)
        for index in np.flatnonzero(candidate):
            row = np.where(unused, dr[index], np.inf)
            best = int(row.argmin())
            if not row[best] < self.config.match_delta_r:
                continue
            track = tracks[index]
            cluster = ecal_clusters[best]
            momentum = track.p4(ELECTRON_MASS).p
            if momentum <= 0.0:
                continue
            e_over_p = cluster.energy / momentum
            if not (self.config.e_over_p_min <= e_over_p
                    <= self.config.e_over_p_max):
                continue
            unused[best] = False
            pt_from_calo = cluster.energy / math.cosh(track.eta)
            electrons.append(Electron(
                p4=FourVector.from_ptetaphim(pt_from_calo, track.eta,
                                             track.phi, ELECTRON_MASS),
                charge=track.charge,
                e_over_p=e_over_p,
                isolation=float(iso[index]),
            ))
        return electrons

    def build_photons(self, tracks: list[Track],
                      ecal_clusters: list[CaloCluster],
                      electrons: list[Electron]) -> list[Photon]:
        """Vectorised twin of :meth:`ObjectBuilder.build_photons`."""
        if not ecal_clusters:
            return []
        cluster_eta = np.fromiter((c.eta for c in ecal_clusters),
                                  dtype=np.float64,
                                  count=len(ecal_clusters))
        cluster_phi = np.fromiter((c.phi for c in ecal_clusters),
                                  dtype=np.float64,
                                  count=len(ecal_clusters))
        energies = np.fromiter((c.energy for c in ecal_clusters),
                               dtype=np.float64,
                               count=len(ecal_clusters))
        keep = energies >= self.config.photon_min_energy
        if tracks:
            eta, phi, _ = _track_arrays(tracks)
            keep &= ~(delta_r_matrix(cluster_eta, cluster_phi, eta, phi)
                      < self.config.match_delta_r).any(axis=1)
        if electrons:
            ele_eta = np.fromiter((e.p4.eta for e in electrons),
                                  dtype=np.float64, count=len(electrons))
            ele_phi = np.fromiter((e.p4.phi for e in electrons),
                                  dtype=np.float64, count=len(electrons))
            keep &= ~(delta_r_matrix(cluster_eta, cluster_phi,
                                     ele_eta, ele_phi)
                      < self.config.match_delta_r).any(axis=1)
        return [Photon(p4=ecal_clusters[i].p4())
                for i in np.flatnonzero(keep)]

    def build_met(self, ecal_clusters: list[CaloCluster],
                  hcal_clusters: list[CaloCluster],
                  muons: list[Muon]) -> MissingEnergy:
        """Delegates to the scalar builder: the MET sum is O(n) and its
        sequential accumulation order is the bit-identity contract."""
        return self._scalar.build_met(ecal_clusters, hcal_clusters, muons)
