"""Columnar structure-of-arrays event engine.

``repro.columnar`` is the throughput layer of the library: numpy-backed
four-vector arrays (:class:`FourVectorArray`), jagged per-event object
containers (:class:`EventBatch`), vectorised skim/slim evaluation
(:func:`apply_skim` / :func:`apply_slim`), matrix-based candidate-object
building (:class:`ColumnarObjectBuilder`), and phase-streamed batch
simulation/digitisation kernels (:mod:`repro.columnar.kernels`).

The engine's contract is *equivalence*, not approximation: every kernel
declares whether it is bit-identical to the scalar path, identical up
to one ulp on transcendental-function outputs, or (for re-phased random
draws) statistically equivalent — via :func:`equivalence_tier` from
:mod:`repro.columnar.tiers` — and both the equivalence test suites and
the ``repro lint --par`` static analyzer enforce each tier.
"""

from repro.columnar.batch import EventBatch, JaggedCollection
from repro.columnar.fourvec import (
    FourVectorArray,
    delta_phi_array,
    delta_r_array,
    invariant_mass_array,
    transverse_mass_array,
    wrap_phi_array,
)
from repro.columnar.kernels import (
    batch_stream,
    digitize_batch,
    simulate_batch,
)
from repro.columnar.objects import ColumnarObjectBuilder, delta_r_matrix
from repro.columnar.select import (
    apply_skim,
    apply_slim,
    cut_mask,
    derived_columns,
    skim_mask,
)
from repro.columnar.tiers import (
    EQUIVALENCE_TIERS,
    declared_tier,
    declared_tiers,
    equivalence_tier,
)

__all__ = [
    "ColumnarObjectBuilder",
    "EQUIVALENCE_TIERS",
    "EventBatch",
    "FourVectorArray",
    "JaggedCollection",
    "apply_skim",
    "apply_slim",
    "batch_stream",
    "cut_mask",
    "declared_tier",
    "declared_tiers",
    "delta_phi_array",
    "delta_r_array",
    "delta_r_matrix",
    "derived_columns",
    "digitize_batch",
    "equivalence_tier",
    "invariant_mass_array",
    "simulate_batch",
    "skim_mask",
    "transverse_mass_array",
    "wrap_phi_array",
]
