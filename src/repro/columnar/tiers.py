"""The equivalence-tier declaration registry.

Every columnar kernel — and every worker the runtime fans out — owes
its callers a statement of *how equivalent* its output is to the
scalar/serial path it replaces. The columnar engine's contract
(:mod:`repro.columnar`) names three tiers:

``exact``
    bit-identical to the scalar path for every input;
``ulp``
    identical up to one unit-in-the-last-place on
    transcendental-function outputs (``arcsinh``-class eta math);
``statistical``
    drawn from the identical distributions with identical acceptance
    logic, but not bit-identical (re-phased random draws).

:func:`equivalence_tier` declares a function's tier. The declaration
is doubly visible: at runtime through :func:`declared_tier` /
:func:`declared_tiers` (the equivalence test suites pick the right
comparison per tier), and *statically* — the decorator literally names
the tier at the definition site, which is what the ``repro.lint.par``
order-sensitivity rules (DAS308, DAS310–DAS312) check kernels against.
An ``exact``-tier function that draws random numbers or accumulates
floats in a chunking-dependent order is claiming an equivalence it
cannot deliver, and the analyzer says so.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: The declared equivalence tiers, weakest guarantee last.
EQUIVALENCE_TIERS = ("exact", "ulp", "statistical")

#: ``module.qualname`` -> declared tier.
_DECLARED: dict[str, str] = {}


def equivalence_tier(tier: str):
    """Declare the equivalence tier of a kernel or worker function.

    >>> @equivalence_tier("exact")
    ... def double_all(values):
    ...     return [2 * v for v in values]
    """
    if tier not in EQUIVALENCE_TIERS:
        raise ConfigurationError(
            f"unknown equivalence tier {tier!r}; "
            f"expected one of {EQUIVALENCE_TIERS}"
        )

    def declare(func):
        name = f"{func.__module__}.{func.__qualname__}"
        if _DECLARED.get(name, tier) != tier:
            raise ConfigurationError(
                f"{name} already declared tier {_DECLARED[name]!r}")
        _DECLARED[name] = tier
        func.__equivalence_tier__ = tier
        return func

    return declare


def declared_tier(func_or_name) -> str | None:
    """The declared tier of a function (or dotted name), if any."""
    if isinstance(func_or_name, str):
        return _DECLARED.get(func_or_name)
    return getattr(func_or_name, "__equivalence_tier__", None)


def declared_tiers() -> dict[str, str]:
    """Every declaration, sorted by qualified name."""
    return {name: _DECLARED[name] for name in sorted(_DECLARED)}
