"""Structure-of-arrays four-vectors: the columnar twin of ``FourVector``.

A :class:`FourVectorArray` holds ``(e, px, py, pz)`` as four parallel
numpy ``float64`` arrays and exposes the full scalar
:class:`~repro.kinematics.fourvector.FourVector` API as vectorized
operations. The agreement contract with the scalar type is per-property:

**exact** (bit-identical to the scalar implementation, element-wise)
    ``pt``, ``p``, ``mass2``, ``mass``, ``et``, ``beta``, arithmetic
    (``+``, ``-``, scalar ``*``, negation), ``dot``, ``boosted``,
    :func:`wrap_phi_array`, :func:`delta_phi_array`,
    :func:`delta_r_array`, and the ``px``/``py`` components of
    :meth:`FourVectorArray.from_ptetaphim`. These use only IEEE-754
    arithmetic, ``sqrt``, ``cos``/``sin`` and ``fmod`` — operations for
    which numpy and the C library behind :mod:`math` agree bitwise.

**ulp** (agrees within a few units in the last place)
    ``eta``, ``phi``, ``theta``, ``rapidity``, ``angle`` and the
    ``pz``/``e`` components of :meth:`from_ptetaphim` — these go through
    ``asinh``/``atan2``/``sinh``/``acos``/``log``, where numpy's vendored
    loops and libm legitimately differ in the last bit.

The dedicated equivalence suite (``tests/test_columnar_fourvec.py``)
enforces exactly this contract with hypothesis-generated vectors.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.columnar.tiers import equivalence_tier
from repro.errors import KinematicsError
from repro.kinematics.fourvector import FourVector

_TWO_PI = 2.0 * math.pi


def _as_float_array(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


@equivalence_tier("exact")
def wrap_phi_array(phi) -> np.ndarray:
    """Vectorized :func:`repro.kinematics.fourvector.wrap_phi` (exact)."""
    phi = _as_float_array(phi)
    wrapped = np.fmod(phi, _TWO_PI)
    wrapped = np.where(wrapped > math.pi, wrapped - _TWO_PI, wrapped)
    wrapped = np.where(wrapped <= -math.pi, wrapped + _TWO_PI, wrapped)
    return wrapped


@equivalence_tier("exact")
def delta_phi_array(phi1, phi2) -> np.ndarray:
    """Vectorized smallest signed azimuthal difference (exact)."""
    return wrap_phi_array(_as_float_array(phi1) - _as_float_array(phi2))


@equivalence_tier("exact")
def delta_r_array(eta1, phi1, eta2, phi2) -> np.ndarray:
    """Vectorized angular distance ``sqrt(d_eta^2 + d_phi^2)`` (exact)."""
    with np.errstate(invalid="ignore"):
        # inf - inf -> nan for degenerate (purely longitudinal) inputs,
        # matching the scalar path; no warning needed.
        d_eta = _as_float_array(eta1) - _as_float_array(eta2)
        d_phi = delta_phi_array(phi1, phi2)
        return np.sqrt(d_eta * d_eta + d_phi * d_phi)


class FourVectorArray:
    """N energy-momentum four-vectors in structure-of-arrays layout.

    All four component arrays are one-dimensional ``float64`` of equal
    length. Instances are cheap views over their arrays; operations
    return new instances and never mutate inputs.
    """

    __slots__ = ("e", "px", "py", "pz")

    def __init__(self, e, px, py, pz) -> None:
        self.e = _as_float_array(e)
        self.px = _as_float_array(px)
        self.py = _as_float_array(py)
        self.pz = _as_float_array(pz)
        if not (self.e.shape == self.px.shape == self.py.shape
                == self.pz.shape) or self.e.ndim != 1:
            raise KinematicsError(
                "four-vector component arrays must be equal-length 1-D"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, n: int) -> "FourVectorArray":
        """``n`` null vectors, useful as sum accumulators."""
        return cls(np.zeros(n), np.zeros(n), np.zeros(n), np.zeros(n))

    @classmethod
    def from_ptetaphim(cls, pt, eta, phi, mass) -> "FourVectorArray":
        """Vectorized :meth:`FourVector.from_ptetaphim`.

        ``px``/``py`` are exact; ``pz``/``e`` are ulp-class (``sinh``).
        """
        pt = _as_float_array(pt)
        eta = _as_float_array(eta)
        phi = _as_float_array(phi)
        mass = _as_float_array(mass)
        if np.any(pt < 0.0):
            raise KinematicsError("pt must be non-negative")
        px = pt * np.cos(phi)
        py = pt * np.sin(phi)
        pz = pt * np.sinh(eta)
        energy = np.sqrt(px * px + py * py + pz * pz + mass * mass)
        return cls(energy, px, py, pz)

    @classmethod
    def from_ptetaphie(cls, pt, eta, phi, energy) -> "FourVectorArray":
        """Vectorized :meth:`FourVector.from_ptetaphie`."""
        pt = _as_float_array(pt)
        if np.any(pt < 0.0):
            raise KinematicsError("pt must be non-negative")
        phi = _as_float_array(phi)
        px = pt * np.cos(phi)
        py = pt * np.sin(phi)
        pz = pt * np.sinh(_as_float_array(eta))
        return cls(_as_float_array(energy), px, py, pz)

    @classmethod
    def from_p3m(cls, px, py, pz, mass) -> "FourVectorArray":
        """Vectorized :meth:`FourVector.from_p3m` (exact)."""
        px = _as_float_array(px)
        py = _as_float_array(py)
        pz = _as_float_array(pz)
        mass = _as_float_array(mass)
        energy = np.sqrt(px * px + py * py + pz * pz + mass * mass)
        return cls(energy, px, py, pz)

    @classmethod
    def from_vectors(cls, vectors: Iterable[FourVector]) -> "FourVectorArray":
        """Pack scalar four-vectors into columnar layout (exact)."""
        vectors = list(vectors)
        n = len(vectors)
        e = np.empty(n)
        px = np.empty(n)
        py = np.empty(n)
        pz = np.empty(n)
        for index, vector in enumerate(vectors):
            e[index] = vector.e
            px[index] = vector.px
            py[index] = vector.py
            pz[index] = vector.pz
        return cls(e, px, py, pz)

    @classmethod
    def concatenate(cls, arrays: Sequence["FourVectorArray"]
                    ) -> "FourVectorArray":
        """Concatenate several arrays in order."""
        if not arrays:
            return cls.zeros(0)
        return cls(
            np.concatenate([a.e for a in arrays]),
            np.concatenate([a.px for a in arrays]),
            np.concatenate([a.py for a in arrays]),
            np.concatenate([a.pz for a in arrays]),
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.e)

    def __getitem__(self, index):
        """Scalar ``FourVector`` for an int index; sliced array otherwise."""
        if isinstance(index, (int, np.integer)):
            return FourVector(float(self.e[index]), float(self.px[index]),
                              float(self.py[index]), float(self.pz[index]))
        return FourVectorArray(self.e[index], self.px[index],
                               self.py[index], self.pz[index])

    def take(self, indices) -> "FourVectorArray":
        """The vectors at ``indices``, in that order."""
        indices = np.asarray(indices)
        return FourVectorArray(self.e[indices], self.px[indices],
                               self.py[indices], self.pz[indices])

    def to_vectors(self) -> list[FourVector]:
        """Unpack to scalar four-vectors (exact round-trip)."""
        return [
            FourVector(e, px, py, pz)
            for e, px, py, pz in zip(self.e.tolist(), self.px.tolist(),
                                     self.py.tolist(), self.pz.tolist())
        ]

    # ------------------------------------------------------------------
    # Derived kinematic quantities
    # ------------------------------------------------------------------

    @property
    def pt(self) -> np.ndarray:
        """Transverse momentum (exact)."""
        return np.sqrt(self.px * self.px + self.py * self.py)

    @property
    def p(self) -> np.ndarray:
        """Three-momentum magnitude (exact)."""
        return np.sqrt(self.px * self.px + self.py * self.py
                       + self.pz * self.pz)

    @property
    def phi(self) -> np.ndarray:
        """Azimuthal angle; zero for vanishing pt (ulp)."""
        phi = np.arctan2(self.py, self.px)
        return np.where((self.px == 0.0) & (self.py == 0.0), 0.0, phi)

    @property
    def eta(self) -> np.ndarray:
        """Pseudorapidity; +/-inf for purely longitudinal vectors (ulp)."""
        transverse = self.pt
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.arcsinh(self.pz / transverse)
        longitudinal = transverse == 0.0
        if np.any(longitudinal):
            eta = np.where(longitudinal & (self.pz > 0.0), np.inf, eta)
            eta = np.where(longitudinal & (self.pz < 0.0), -np.inf, eta)
            eta = np.where(longitudinal & (self.pz == 0.0), 0.0, eta)
        return eta

    @property
    def theta(self) -> np.ndarray:
        """Polar angle in [0, pi]; zero for null momenta (ulp)."""
        magnitude = self.p
        with np.errstate(divide="ignore", invalid="ignore"):
            cosine = np.clip(self.pz / magnitude, -1.0, 1.0)
            theta = np.arccos(cosine)
        return np.where(magnitude == 0.0, 0.0, theta)

    @property
    def rapidity(self) -> np.ndarray:
        """True rapidity; raises when undefined for any element (ulp)."""
        if np.any(self.e <= np.abs(self.pz)):
            raise KinematicsError(
                "rapidity undefined for at least one vector (E <= |pz|)"
            )
        return 0.5 * np.log((self.e + self.pz) / (self.e - self.pz))

    @property
    def mass2(self) -> np.ndarray:
        """Invariant mass squared (exact)."""
        return (self.e * self.e - self.px * self.px - self.py * self.py
                - self.pz * self.pz)

    @property
    def mass(self) -> np.ndarray:
        """Invariant mass, negative ``mass2`` clamped to zero (exact)."""
        m2 = self.mass2
        return np.sqrt(np.where(m2 < 0.0, 0.0, m2))

    @property
    def et(self) -> np.ndarray:
        """Transverse energy; zero for null momenta (exact)."""
        magnitude = self.p
        with np.errstate(divide="ignore", invalid="ignore"):
            et = self.e * self.pt / magnitude
        return np.where(magnitude == 0.0, 0.0, et)

    @property
    def beta(self) -> np.ndarray:
        """Velocity in units of c; zero for zero energy (exact)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            beta = self.p / self.e
        return np.where(self.e == 0.0, 0.0, beta)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "FourVectorArray") -> "FourVectorArray":
        return FourVectorArray(self.e + other.e, self.px + other.px,
                               self.py + other.py, self.pz + other.pz)

    def __sub__(self, other: "FourVectorArray") -> "FourVectorArray":
        return FourVectorArray(self.e - other.e, self.px - other.px,
                               self.py - other.py, self.pz - other.pz)

    def __mul__(self, scale) -> "FourVectorArray":
        return FourVectorArray(self.e * scale, self.px * scale,
                               self.py * scale, self.pz * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "FourVectorArray":
        return FourVectorArray(-self.e, -self.px, -self.py, -self.pz)

    def dot(self, other: "FourVectorArray") -> np.ndarray:
        """Element-wise Minkowski inner product (exact)."""
        return (self.e * other.e - self.px * other.px
                - self.py * other.py - self.pz * other.pz)

    # ------------------------------------------------------------------
    # Geometry between arrays
    # ------------------------------------------------------------------

    def delta_phi(self, other: "FourVectorArray") -> np.ndarray:
        """Element-wise signed azimuthal separation (ulp via ``phi``)."""
        return delta_phi_array(self.phi, other.phi)

    def delta_eta(self, other: "FourVectorArray") -> np.ndarray:
        """Element-wise pseudorapidity separation (ulp via ``eta``)."""
        return self.eta - other.eta

    def delta_r(self, other: "FourVectorArray") -> np.ndarray:
        """Element-wise angular distance (ulp via ``eta``/``phi``)."""
        return delta_r_array(self.eta, self.phi, other.eta, other.phi)

    # ------------------------------------------------------------------
    # Boosts
    # ------------------------------------------------------------------

    def boosted(self, bx: float, by: float, bz: float) -> "FourVectorArray":
        """All vectors actively boosted by one velocity (exact).

        Mirrors the scalar :meth:`FourVector.boosted` operation order
        term for term, so each element is bit-identical to boosting the
        corresponding scalar vector.
        """
        b2 = bx * bx + by * by + bz * bz
        if b2 >= 1.0:
            raise KinematicsError(f"boost speed {math.sqrt(b2)} >= c")
        gamma = 1.0 / math.sqrt(1.0 - b2)
        bp = bx * self.px + by * self.py + bz * self.pz
        gamma2 = (gamma - 1.0) / b2 if b2 > 0.0 else 0.0
        px = self.px + gamma2 * bp * bx + gamma * bx * self.e
        py = self.py + gamma2 * bp * by + gamma * by * self.e
        pz = self.pz + gamma2 * bp * bz + gamma * bz * self.e
        energy = gamma * (self.e + bp)
        return FourVectorArray(energy, px, py, pz)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_components(self) -> np.ndarray:
        """An ``(n, 4)`` array of ``[E, px, py, pz]`` rows."""
        return np.stack([self.e, self.px, self.py, self.pz], axis=1)

    @classmethod
    def from_components(cls, components) -> "FourVectorArray":
        """Inverse of :meth:`to_components`."""
        components = _as_float_array(components).reshape(-1, 4)
        return cls(components[:, 0], components[:, 1],
                   components[:, 2], components[:, 3])


@equivalence_tier("exact")
def invariant_mass_array(arrays: Sequence[FourVectorArray]) -> np.ndarray:
    """Element-wise invariant mass of N-vector systems (exact).

    Mirrors the scalar :func:`repro.kinematics.invariant_mass`
    accumulation order: a zero accumulator plus each vector in turn.
    """
    if not arrays:
        raise KinematicsError("invariant mass needs at least one array")
    total = FourVectorArray.zeros(len(arrays[0]))
    for array in arrays:
        total = total + array
    return total.mass


@equivalence_tier("ulp")
def transverse_mass_array(lepton: FourVectorArray, met, met_phi
                          ) -> np.ndarray:
    """Element-wise transverse mass of lepton + missing-momentum systems.

    ``met``/``met_phi`` are plain arrays (the MET is stored polar).
    Ulp-class via the lepton ``phi``.
    """
    d_phi = delta_phi_array(lepton.phi, met_phi)
    mt2 = 2.0 * lepton.pt * _as_float_array(met) * (1.0 - np.cos(d_phi))
    return np.sqrt(np.where(mt2 < 0.0, 0.0, mt2))
