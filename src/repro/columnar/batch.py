"""Jagged-array event batches: the columnar twin of ``AODEvent``.

An :class:`EventBatch` stores N events' object collections in
structure-of-arrays layout: per collection, one flat
:class:`~repro.columnar.fourvec.FourVectorArray` (plus flat per-object
attribute arrays) and an ``offsets`` array of length ``N + 1`` marking
each event's slice — the standard jagged-array encoding. Scalar,
per-event quantities (MET, run/event numbers, track counts) are plain
arrays of length N.

``from_events`` / ``to_events`` round-trip losslessly: every float is
stored in a float64 array and every int in an int64 array, so the
reconstructed :class:`AODEvent` objects compare equal field-for-field
with the originals. Trigger bits are strings and stay a Python list of
tuples — they are never on the hot path.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import compress

import numpy as np

from repro.datamodel.event import AODEvent
from repro.errors import DataModelError
from repro.kinematics import FourVector
from repro.columnar.fourvec import FourVectorArray
from repro.reconstruction.objects import (
    Electron,
    Jet,
    MissingEnergy,
    Muon,
    Photon,
)


def _offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


class JaggedCollection:
    """One object collection for N events, offsets + flat arrays.

    ``offsets[i]:offsets[i+1]`` slices event ``i``'s objects out of the
    flat ``p4`` array and every extra ``fields`` array (int64 or
    float64, all of the same flat length).
    """

    __slots__ = ("offsets", "p4", "fields", "_event_index")

    def __init__(self, offsets, p4: FourVectorArray, **fields) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.p4 = p4
        self.fields = {name: np.asarray(values)
                       for name, values in fields.items()}
        self._event_index: np.ndarray | None = None
        if self.offsets.ndim != 1 or len(self.offsets) == 0:
            raise DataModelError("offsets must be a non-empty 1-D array")
        flat = len(p4)
        if int(self.offsets[-1]) != flat:
            raise DataModelError(
                f"offsets end at {int(self.offsets[-1])} but the flat "
                f"arrays hold {flat} objects"
            )
        for name, values in self.fields.items():
            if len(values) != flat:
                raise DataModelError(
                    f"field {name!r} has {len(values)} entries, "
                    f"expected {flat}"
                )

    @property
    def n_events(self) -> int:
        """Number of events the collection spans."""
        return len(self.offsets) - 1

    def __len__(self) -> int:
        """Total objects across all events."""
        return len(self.p4)

    @property
    def counts(self) -> np.ndarray:
        """Objects per event (length ``n_events``)."""
        return np.diff(self.offsets)

    @property
    def event_index(self) -> np.ndarray:
        """The owning event index of each flat object.

        Computed lazily and cached: the collection's arrays never
        mutate after construction, and the repeat shows up in every
        vectorised cut, so callers share one copy.
        """
        if self._event_index is None:
            self._event_index = np.repeat(
                np.arange(self.n_events, dtype=np.int64), self.counts)
        return self._event_index

    def field(self, name: str) -> np.ndarray:
        """One flat attribute array by name."""
        try:
            return self.fields[name]
        except KeyError:
            raise DataModelError(
                f"collection has no field {name!r}; "
                f"available: {sorted(self.fields)}"
            ) from None

    def select_events(self, mask: np.ndarray) -> "JaggedCollection":
        """The sub-collection of events where ``mask`` is True.

        Object content and order within each kept event are unchanged.
        """
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_events:
            raise DataModelError(
                f"event mask has {len(mask)} entries for "
                f"{self.n_events} events"
            )
        object_mask = np.repeat(mask, self.counts)
        offsets = _offsets_from_counts(self.counts[mask])
        fields = {name: values[object_mask]
                  for name, values in self.fields.items()}
        return JaggedCollection(offsets, self.p4[object_mask], **fields)

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-event sums of a flat per-object array.

        Uses ``np.bincount``, which accumulates in flat-array order —
        the same left-to-right addition order as the scalar per-event
        ``sum()`` loops, so the result is bit-identical to them.
        """
        return np.bincount(self.event_index,
                           weights=np.asarray(values, dtype=np.float64),
                           minlength=self.n_events)


def _pack(objects_per_event: Sequence[Sequence],
          field_specs: Sequence[tuple[str, np.dtype, object]],
          ) -> JaggedCollection:
    """Pack per-event object lists into one jagged collection."""
    counts = np.fromiter((len(objs) for objs in objects_per_event),
                         dtype=np.int64, count=len(objects_per_event))
    offsets = _offsets_from_counts(counts)
    total = int(offsets[-1])
    e = np.empty(total)
    px = np.empty(total)
    py = np.empty(total)
    pz = np.empty(total)
    columns = {name: np.empty(total, dtype=dtype)
               for name, dtype, _ in field_specs}
    position = 0
    for objs in objects_per_event:
        for obj in objs:
            p4 = obj.p4
            e[position] = p4.e
            px[position] = p4.px
            py[position] = p4.py
            pz[position] = p4.pz
            for name, _, getter in field_specs:
                columns[name][position] = getter(obj)
            position += 1
    return JaggedCollection(offsets, FourVectorArray(e, px, py, pz),
                            **columns)


#: (field name, dtype, getter) triples per collection kind.
_ELECTRON_FIELDS = (
    ("charge", np.int64, lambda o: o.charge),
    ("e_over_p", np.float64, lambda o: o.e_over_p),
    ("isolation", np.float64, lambda o: o.isolation),
)
_MUON_FIELDS = (
    ("charge", np.int64, lambda o: o.charge),
    ("n_stations", np.int64, lambda o: o.n_stations),
    ("isolation", np.float64, lambda o: o.isolation),
)
_PHOTON_FIELDS = ()
_JET_FIELDS = (
    ("n_constituents", np.int64, lambda o: o.n_constituents),
    ("em_fraction", np.float64, lambda o: o.em_fraction),
)


class EventBatch:
    """N AOD events in columnar structure-of-arrays layout."""

    __slots__ = ("run_number", "event_number", "electrons", "muons",
                 "photons", "jets", "met", "met_phi", "trigger_bits",
                 "n_tracks")

    def __init__(self, run_number, event_number,
                 electrons: JaggedCollection, muons: JaggedCollection,
                 photons: JaggedCollection, jets: JaggedCollection,
                 met, met_phi, trigger_bits: list[tuple[str, ...]],
                 n_tracks) -> None:
        self.run_number = np.asarray(run_number, dtype=np.int64)
        self.event_number = np.asarray(event_number, dtype=np.int64)
        self.electrons = electrons
        self.muons = muons
        self.photons = photons
        self.jets = jets
        self.met = np.asarray(met, dtype=np.float64)
        self.met_phi = np.asarray(met_phi, dtype=np.float64)
        self.trigger_bits = list(trigger_bits)
        self.n_tracks = np.asarray(n_tracks, dtype=np.int64)
        n = len(self.run_number)
        collections = (electrons, muons, photons, jets)
        if any(c.n_events != n for c in collections) or not (
                len(self.event_number) == len(self.met)
                == len(self.met_phi) == len(self.trigger_bits)
                == len(self.n_tracks) == n):
            raise DataModelError(
                "event batch arrays disagree on the event count"
            )

    def __len__(self) -> int:
        return len(self.run_number)

    @property
    def n_events(self) -> int:
        """Number of events in the batch."""
        return len(self.run_number)

    # ------------------------------------------------------------------
    # Round trip with the per-event datamodel
    # ------------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Sequence[AODEvent]) -> "EventBatch":
        """Pack per-event AODs into columnar layout (exact)."""
        events = list(events)
        return cls(
            run_number=[e.run_number for e in events],
            event_number=[e.event_number for e in events],
            electrons=_pack([e.electrons for e in events],
                            _ELECTRON_FIELDS),
            muons=_pack([e.muons for e in events], _MUON_FIELDS),
            photons=_pack([e.photons for e in events], _PHOTON_FIELDS),
            jets=_pack([e.jets for e in events], _JET_FIELDS),
            met=[e.met.met for e in events],
            met_phi=[e.met.phi for e in events],
            trigger_bits=[tuple(e.trigger_bits) for e in events],
            n_tracks=[e.n_tracks for e in events],
        )

    def to_events(self) -> list[AODEvent]:
        """Unpack to per-event AODs (exact inverse of ``from_events``)."""
        electrons = _unpack_electrons(self.electrons)
        muons = _unpack_muons(self.muons)
        photons = _unpack_photons(self.photons)
        jets = _unpack_jets(self.jets)
        events = []
        for index in range(len(self)):
            events.append(AODEvent(
                run_number=int(self.run_number[index]),
                event_number=int(self.event_number[index]),
                electrons=electrons[index],
                muons=muons[index],
                photons=photons[index],
                jets=jets[index],
                met=MissingEnergy(met=float(self.met[index]),
                                  phi=float(self.met_phi[index])),
                trigger_bits=list(self.trigger_bits[index]),
                n_tracks=int(self.n_tracks[index]),
            ))
        return events

    # ------------------------------------------------------------------
    # Batch-level derived quantities
    # ------------------------------------------------------------------

    def ht(self) -> np.ndarray:
        """Per-event scalar jet-pt sums, bit-identical to
        ``AODEvent.ht()`` (bincount accumulates in stored jet order)."""
        return self.jets.segment_sum(self.jets.p4.pt)

    def select(self, mask: np.ndarray) -> "EventBatch":
        """The sub-batch of events where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise DataModelError(
                f"event mask has {len(mask)} entries for "
                f"{len(self)} events"
            )
        return EventBatch(
            run_number=self.run_number[mask],
            event_number=self.event_number[mask],
            electrons=self.electrons.select_events(mask),
            muons=self.muons.select_events(mask),
            photons=self.photons.select_events(mask),
            jets=self.jets.select_events(mask),
            met=self.met[mask],
            met_phi=self.met_phi[mask],
            trigger_bits=list(compress(self.trigger_bits, mask)),
            n_tracks=self.n_tracks[mask],
        )


def _slices(collection: JaggedCollection) -> list[tuple[int, int]]:
    bounds = collection.offsets.tolist()
    return list(zip(bounds[:-1], bounds[1:]))


def _vectors(collection: JaggedCollection) -> list[FourVector]:
    return collection.p4.to_vectors()


def _unpack_electrons(c: JaggedCollection) -> list[list[Electron]]:
    p4 = _vectors(c)
    charge = c.field("charge").tolist()
    eop = c.field("e_over_p").tolist()
    iso = c.field("isolation").tolist()
    return [[Electron(p4[i], charge[i], eop[i], iso[i])
             for i in range(lo, hi)] for lo, hi in _slices(c)]


def _unpack_muons(c: JaggedCollection) -> list[list[Muon]]:
    p4 = _vectors(c)
    charge = c.field("charge").tolist()
    stations = c.field("n_stations").tolist()
    iso = c.field("isolation").tolist()
    return [[Muon(p4[i], charge[i], stations[i], iso[i])
             for i in range(lo, hi)] for lo, hi in _slices(c)]


def _unpack_photons(c: JaggedCollection) -> list[list[Photon]]:
    p4 = _vectors(c)
    return [[Photon(p4[i]) for i in range(lo, hi)]
            for lo, hi in _slices(c)]


def _unpack_jets(c: JaggedCollection) -> list[list[Jet]]:
    p4 = _vectors(c)
    ncon = c.field("n_constituents").tolist()
    emf = c.field("em_fraction").tolist()
    return [[Jet(p4[i], ncon[i], emf[i]) for i in range(lo, hi)]
            for lo, hi in _slices(c)]
