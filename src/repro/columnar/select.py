"""Vectorised skim/slim evaluation over :class:`EventBatch`.

Every :class:`~repro.datamodel.skimslim.SelectionCut` node kind has a
mask builder here that evaluates the cut for all events of a batch at
once and returns a boolean array. The builders mirror the scalar
``passes`` semantics decision for decision:

- pt/MET/HT thresholds compare the *same* float64 values the scalar
  path computes (``pt`` and ``ht`` are bit-identical by construction);
- leading-object selection reproduces the scalar stable sorts exactly
  — the dense argmax scan of :func:`_leading_two` (and the
  ``np.lexsort`` fallback for very wide events) resolves pt ties at the
  lowest flat index, which is the scalar tie key: stored order, with
  the flavour rank of :meth:`AODEvent.leptons` for merged leptons;
- pair invariant masses accumulate in the scalar
  :func:`~repro.kinematics.invariant_mass` order.

Eta-based cuts are ulp-class (``arcsinh``); a decision can differ from
the scalar path only if an object's |eta| lies within one ulp of the
threshold. Cut kinds without a registered builder fall back to the
scalar ``passes`` loop, so third-party cut nodes stay correct (just not
vectorised).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.columnar.batch import EventBatch, JaggedCollection
from repro.columnar.fourvec import FourVectorArray
from repro.columnar.tiers import equivalence_tier
from repro.datamodel.event import NtupleRow
from repro.datamodel.skimslim import (
    AndCut,
    CountCut,
    HtCut,
    MassWindowCut,
    MetCut,
    NotCut,
    OrCut,
    SelectionCut,
    SkimSpec,
    SlimSpec,
    TriggerCut,
)
from repro.errors import DataModelError

#: cut kind -> (cut, batch) -> boolean event mask.
_MASK_BUILDERS: dict[str, Callable[[SelectionCut, EventBatch],
                                   np.ndarray]] = {}


def register_mask(kind: str):
    """Class decorator-style registration of a mask builder."""
    def wrap(builder):
        _MASK_BUILDERS[kind] = builder
        return builder
    return wrap


@equivalence_tier("ulp")
def cut_mask(cut: SelectionCut, batch: EventBatch) -> np.ndarray:
    """Evaluate any cut tree over a batch; one bool per event."""
    builder = _MASK_BUILDERS.get(cut.kind())
    if builder is not None:
        return builder(cut, batch)
    # Unknown node kind: fall back to the scalar evaluation so custom
    # cuts registered by downstream code still select correctly.
    events = batch.to_events()
    return np.fromiter((cut.passes(event) for event in events),
                       dtype=bool, count=len(events))


@equivalence_tier("ulp")
def skim_mask(spec: SkimSpec, batch: EventBatch) -> np.ndarray:
    """The event mask of a whole skim spec."""
    return cut_mask(spec.cut, batch)


@equivalence_tier("ulp")
def apply_skim(spec: SkimSpec, batch: EventBatch) -> EventBatch:
    """Batch twin of :meth:`SkimSpec.apply`: the passing sub-batch."""
    return batch.select(skim_mask(spec, batch))


# ----------------------------------------------------------------------
# Merged lepton view (electrons + muons, flavour-ranked)
# ----------------------------------------------------------------------


class _MergedLeptons:
    """Electron and muon collections merged into one flat view.

    Mirrors :meth:`AODEvent.leptons`: flat arrays hold all electrons
    then all muons, each in stored order — within one event that flat
    index order IS the scalar tie key (electrons before muons, then
    stored order), so the stable :func:`_pt_order` sort reproduces the
    scalar lepton ordering without explicit tie keys.
    """

    __slots__ = ("offsets", "event_index", "pt", "charge", "p4",
                 "within")

    def __init__(self, batch: EventBatch) -> None:
        electrons = batch.electrons
        muons = batch.muons
        self.event_index = np.concatenate(
            [electrons.event_index, muons.event_index])
        self.pt = np.concatenate([electrons.p4.pt, muons.p4.pt])
        self.charge = np.concatenate(
            [electrons.field("charge"), muons.field("charge")])
        self.p4 = FourVectorArray.concatenate([electrons.p4, muons.p4])
        counts = electrons.counts + muons.counts
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.offsets = offsets
        # Within-event rank in scalar tie order for _leading_two: each
        # event's electrons (stored order) then its muons.
        electron_within = (np.arange(len(electrons))
                           - np.repeat(electrons.offsets[:-1],
                                       electrons.counts))
        muon_within = (np.arange(len(muons))
                       - np.repeat(muons.offsets[:-1], muons.counts)
                       + electrons.counts[muons.event_index])
        self.within = np.concatenate([electron_within, muon_within])


#: Above this per-event multiplicity the dense top-2 matrix would waste
#: memory; fall back to a full stable sort instead.
_DENSE_WIDTH_LIMIT = 128


def _pt_order(event_index: np.ndarray, pt: np.ndarray) -> np.ndarray:
    """Flat indices ordered by (event, descending pt), stable.

    ``np.lexsort`` is stable, and every flat layout here already
    encodes the scalar tie key in flat-index order — stored order for
    a plain collection, electrons-before-muons-then-stored-order for
    :class:`_MergedLeptons` — so pt ties resolve exactly as the scalar
    stable sorts do, with no explicit tie-key arrays.
    """
    return np.lexsort((-pt, event_index))


def _leading_two(offsets: np.ndarray, event_index: np.ndarray,
                 pt: np.ndarray, within: np.ndarray | None = None,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat indices of each event's two leading-pt objects, sort-free.

    Scatters pt into a dense ``(n_events, max_count)`` matrix and takes
    two argmax passes. ``np.argmax`` returns the *first* maximum, i.e.
    the lowest within-event rank among pt ties — exactly the element a
    stable descending sort would put first — so tie semantics match
    :func:`_pt_order` while costing O(n) instead of O(n log n).

    ``within`` is each object's rank inside its event in scalar tie
    order. It is derived from the flat layout when omitted, which is
    only correct for collections whose flat arrays are grouped by
    event; :class:`_MergedLeptons` (electron block then muon block)
    must pass its own.

    Returns ``(lead, sub, valid)``: ``lead`` is meaningful where
    count >= 1, ``sub`` only where ``valid`` (count >= 2) holds;
    invalid slots carry index 0.
    """
    counts = np.diff(offsets)
    valid = counts >= 2
    n_events = len(counts)
    zeros = np.zeros(n_events, dtype=np.int64)
    if len(pt) == 0:
        return zeros, zeros, valid
    width = int(counts.max())
    if width > _DENSE_WIDTH_LIMIT:
        order = _pt_order(event_index, pt)
        first = offsets[:-1].copy()
        present = counts > 0
        first[~present] = 0
        second = np.where(valid, first + 1, 0)
        lead = np.where(present, order[first], 0)
        return lead, order[second], valid
    grouped = within is None
    if grouped:
        within = np.arange(len(pt)) - np.repeat(offsets[:-1], counts)
    dense = np.full((n_events, width), -np.inf)
    dense[event_index, within] = pt
    rows = np.arange(n_events)
    lead_within = np.argmax(dense, axis=1)
    dense[rows, lead_within] = -np.inf
    sub_within = np.argmax(dense, axis=1)
    if grouped:
        # Event-grouped flat layout: flat index = event start + rank.
        starts = offsets[:-1]
        lead = np.where(counts > 0, starts + lead_within, 0)
        sub = np.where(valid, starts + sub_within, 0)
    else:
        flat_dense = np.zeros((n_events, width), dtype=np.int64)
        flat_dense[event_index, within] = np.arange(len(pt))
        lead = np.where(counts > 0, flat_dense[rows, lead_within], 0)
        sub = np.where(valid, flat_dense[rows, sub_within], 0)
    return lead, sub, valid


def _pair_mass(p4: FourVectorArray, lead: np.ndarray, sub: np.ndarray,
               ) -> np.ndarray:
    """Invariant mass of index pairs, in scalar accumulation order."""
    if len(p4) == 0:
        return np.zeros(len(lead))
    total = FourVectorArray.zeros(len(lead)) + p4.take(lead)
    total = total + p4.take(sub)
    return total.mass


# ----------------------------------------------------------------------
# Mask builders, one per cut kind
# ----------------------------------------------------------------------


def _object_counts(collection: JaggedCollection, min_pt: float,
                   max_abs_eta: float | None) -> np.ndarray:
    keep = collection.p4.pt >= min_pt
    if max_abs_eta is not None:
        keep &= np.abs(collection.p4.eta) <= max_abs_eta
    return np.bincount(collection.event_index[keep],
                       minlength=collection.n_events)


@register_mask("count")
def _count_mask(cut: CountCut, batch: EventBatch) -> np.ndarray:
    if cut.collection == "leptons":
        counts = (
            _object_counts(batch.electrons, cut.min_pt, cut.max_abs_eta)
            + _object_counts(batch.muons, cut.min_pt, cut.max_abs_eta)
        )
    else:
        counts = _object_counts(_batch_collection(batch, cut.collection),
                                cut.min_pt, cut.max_abs_eta)
    return counts >= cut.min_count


def _batch_collection(batch: EventBatch, name: str) -> JaggedCollection:
    if name in ("electrons", "muons", "photons", "jets"):
        return getattr(batch, name)
    raise DataModelError(f"unknown collection {name!r}")


@register_mask("met")
def _met_mask(cut: MetCut, batch: EventBatch) -> np.ndarray:
    return batch.met >= cut.min_met


@register_mask("ht")
def _ht_mask(cut: HtCut, batch: EventBatch) -> np.ndarray:
    return batch.ht() >= cut.min_ht


@register_mask("mass_window")
def _mass_window_mask(cut: MassWindowCut, batch: EventBatch
                      ) -> np.ndarray:
    within = None
    if cut.collection == "leptons":
        merged = _MergedLeptons(batch)
        event_index, offsets = merged.event_index, merged.offsets
        pt, p4, charge = merged.pt, merged.p4, merged.charge
        within = merged.within
    else:
        collection = _batch_collection(batch, cut.collection)
        event_index, offsets = collection.event_index, collection.offsets
        pt, p4 = collection.p4.pt, collection.p4
        charge = collection.fields.get(
            "charge", np.zeros(len(collection), dtype=np.int64))
    lead, sub, valid = _leading_two(offsets, event_index, pt, within)
    result = valid.copy()
    if cut.opposite_charge:
        # getattr(obj, "charge", 0) in the scalar path: chargeless
        # collections carry zeros here, failing the product test too.
        result &= (charge[lead] * charge[sub]) < 0
    mass = _pair_mass(p4, lead, sub)
    result &= (cut.min_mass <= mass) & (mass <= cut.max_mass)
    return result


@register_mask("and")
def _and_mask(cut: AndCut, batch: EventBatch) -> np.ndarray:
    result = np.ones(len(batch), dtype=bool)
    for child in cut.children:
        result &= cut_mask(child, batch)
    return result


@register_mask("or")
def _or_mask(cut: OrCut, batch: EventBatch) -> np.ndarray:
    result = np.zeros(len(batch), dtype=bool)
    for child in cut.children:
        result |= cut_mask(child, batch)
    return result


@register_mask("not")
def _not_mask(cut: NotCut, batch: EventBatch) -> np.ndarray:
    return ~cut_mask(cut.child, batch)


@register_mask("trigger")
def _trigger_mask(cut: TriggerCut, batch: EventBatch) -> np.ndarray:
    # Trigger paths are strings; the per-event membership test is
    # already cheap and stays a comprehension.
    return np.fromiter(
        (any(path in bits for path in cut.paths)
         for bits in batch.trigger_bits),
        dtype=bool, count=len(batch))


# ----------------------------------------------------------------------
# Vectorised slimming
# ----------------------------------------------------------------------


def _lead_values(lead: np.ndarray, pt: np.ndarray,
                 offsets: np.ndarray) -> np.ndarray:
    """Per-event leading pt from :func:`_leading_two`, 0.0 where empty."""
    counts = np.diff(offsets)
    present = counts > 0
    values = np.zeros(len(counts))
    if len(pt):
        values[present] = pt[lead][present]
    return values


def derived_columns(columns: tuple[str, ...], batch: EventBatch
                    ) -> dict[str, np.ndarray]:
    """One value array per requested derived column.

    The vectorised core of :func:`apply_slim`: every derived ntuple
    quantity (counts, MET, HT, leading pts, pair masses) computed for
    all events at once, without the per-row packaging. Values match
    the scalar ``_DERIVED_COLUMNS`` lambdas bit for bit."""
    arrays: dict[str, np.ndarray] = {}
    # The leading-pair scan is the expensive part; compute it once and
    # share it between lead_lepton_pt and dilepton_mass.
    merged: _MergedLeptons | None = None
    merged_top2: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def merged_leptons() -> tuple[
            _MergedLeptons, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        nonlocal merged, merged_top2
        if merged is None:
            merged = _MergedLeptons(batch)
            merged_top2 = _leading_two(merged.offsets,
                                       merged.event_index, merged.pt,
                                       merged.within)
        return merged, merged_top2

    for name in columns:
        if name == "n_electrons":
            arrays[name] = batch.electrons.counts
        elif name == "n_muons":
            arrays[name] = batch.muons.counts
        elif name == "n_jets":
            arrays[name] = batch.jets.counts
        elif name == "met":
            arrays[name] = batch.met
        elif name == "ht":
            arrays[name] = batch.ht()
        elif name == "lead_lepton_pt":
            leptons, (lead, _, _) = merged_leptons()
            arrays[name] = _lead_values(lead, leptons.pt,
                                        leptons.offsets)
        elif name == "lead_jet_pt":
            # Scalar semantics: the *first stored* jet, not the hardest.
            jets = batch.jets
            present = jets.counts > 0
            first = jets.offsets[:-1].copy()
            first[~present] = 0
            values = np.zeros(len(batch))
            if len(jets):
                values[present] = jets.p4.pt[first][present]
            arrays[name] = values
        elif name == "dilepton_mass":
            leptons, (lead, sub, valid) = merged_leptons()
            mass = _pair_mass(leptons.p4, lead, sub)
            arrays[name] = np.where(valid, mass, 0.0)
        elif name == "dimuon_mass":
            muons = batch.muons
            lead, sub, valid = _leading_two(
                muons.offsets, muons.event_index, muons.p4.pt)
            mass = _pair_mass(muons.p4, lead, sub)
            arrays[name] = np.where(valid, mass, 0.0)
        else:
            raise DataModelError(
                f"no columnar builder for derived column {name!r}"
            )
    return arrays


@equivalence_tier("ulp")
def apply_slim(spec: SlimSpec, batch: EventBatch) -> list[NtupleRow]:
    """Batch twin of :meth:`SlimSpec.apply`.

    Columns are computed as whole arrays and only unpacked into rows at
    the end; counts become Python ints and everything else floats, so
    rows serialise identically to the scalar path.
    """
    arrays = derived_columns(spec.columns, batch)
    columns = {
        name: (values.tolist() if values.dtype.kind == "f"
               else [int(v) for v in values.tolist()])
        for name, values in arrays.items()
    }
    runs = batch.run_number.tolist()
    numbers = batch.event_number.tolist()
    return [
        NtupleRow(
            run_number=runs[index],
            event_number=numbers[index],
            columns={name: columns[name][index] for name in spec.columns},
        )
        for index in range(len(batch))
    ]
