"""The Data Sharing Grid (Appendix A, Section 9)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InterviewError

#: Research stages the grid covers.
SHARING_STAGES = ("collection", "processing", "analysis", "publication",
                  "preservation")

#: Recognised audiences, in increasing openness.
AUDIENCES = ("no one", "project collaborators", "host institution",
             "others in the field", "whole world")


@dataclass(frozen=True)
class SharingEntry:
    """One cell row of the grid: who gets the data at one stage, when."""

    stage: str
    audience: str
    when: str
    conditions: str = ""

    def __post_init__(self) -> None:
        if self.stage not in SHARING_STAGES:
            raise InterviewError(
                f"unknown sharing stage {self.stage!r}; known: "
                f"{SHARING_STAGES}"
            )
        if self.audience not in AUDIENCES:
            raise InterviewError(
                f"unknown audience {self.audience!r}; known: {AUDIENCES}"
            )

    @property
    def openness(self) -> int:
        """0 (no one) .. 4 (whole world)."""
        return AUDIENCES.index(self.audience)

    def to_dict(self) -> dict:
        """Serialise for interview responses."""
        return {
            "stage": self.stage,
            "audience": self.audience,
            "when": self.when,
            "conditions": self.conditions,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SharingEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            stage=str(record["stage"]),
            audience=str(record["audience"]),
            when=str(record["when"]),
            conditions=str(record.get("conditions", "")),
        )


@dataclass
class DataSharingGrid:
    """The per-experiment grid: one entry per stage."""

    experiment: str
    entries: list[SharingEntry] = field(default_factory=list)

    def add(self, entry: SharingEntry) -> None:
        """Attach one stage's entry; a stage may appear once."""
        if any(existing.stage == entry.stage for existing in self.entries):
            raise InterviewError(
                f"{self.experiment}: stage {entry.stage!r} already in grid"
            )
        self.entries.append(entry)

    def entry_for(self, stage: str) -> SharingEntry:
        """The entry of one stage."""
        for entry in self.entries:
            if entry.stage == stage:
                return entry
        raise InterviewError(
            f"{self.experiment}: no grid entry for stage {stage!r}"
        )

    def is_complete(self) -> bool:
        """True when every stage has an entry."""
        covered = {entry.stage for entry in self.entries}
        return covered == set(SHARING_STAGES)

    def openness_profile(self) -> dict[str, int]:
        """Stage -> openness score (for cross-experiment comparison)."""
        return {entry.stage: entry.openness for entry in self.entries}

    def to_dict(self) -> dict:
        """Serialise for interview responses."""
        return {
            "experiment": self.experiment,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DataSharingGrid":
        """Inverse of :meth:`to_dict`."""
        grid = cls(experiment=str(record["experiment"]))
        for entry_record in record.get("entries", []):
            grid.add(SharingEntry.from_dict(entry_record))
        return grid
