"""The Data Interview Template structure (Appendix A, verbatim topics)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InterviewError

#: Answer kinds a question may declare.
ANSWER_KINDS = ("text", "number", "boolean", "list", "rating", "grid")


@dataclass(frozen=True)
class InterviewQuestion:
    """One question of the template."""

    question_id: str
    prompt: str
    answer_kind: str = "text"
    required: bool = True

    def __post_init__(self) -> None:
        if self.answer_kind not in ANSWER_KINDS:
            raise InterviewError(
                f"question {self.question_id!r}: unknown answer kind "
                f"{self.answer_kind!r}"
            )


@dataclass(frozen=True)
class InterviewSection:
    """A numbered section of the template."""

    section_id: str
    title: str
    questions: tuple[InterviewQuestion, ...]


@dataclass
class InterviewTemplate:
    """The full interview instrument."""

    sections: list[InterviewSection] = field(default_factory=list)

    def question(self, question_id: str) -> InterviewQuestion:
        """Look a question up by id."""
        for section in self.sections:
            for question in section.questions:
                if question.question_id == question_id:
                    return question
        raise InterviewError(f"no question {question_id!r} in template")

    def question_ids(self) -> list[str]:
        """Every question id, in template order."""
        return [question.question_id
                for section in self.sections
                for question in section.questions]

    def required_ids(self) -> list[str]:
        """Ids of required questions, in template order."""
        return [question.question_id
                for section in self.sections
                for question in section.questions
                if question.required]

    @classmethod
    def standard(cls) -> "InterviewTemplate":
        """The Appendix A template."""
        return cls(sections=[
            InterviewSection("1", "Type and Extent", (
                InterviewQuestion("1A", "Description of data"),
                InterviewQuestion("1B", "Approximate number of files",
                                  "number"),
                InterviewQuestion("1C", "Average file size (bytes)",
                                  "number"),
                InterviewQuestion("1D", "File format(s)", "list"),
            )),
            InterviewSection("2", "Data Lifecycle", (
                InterviewQuestion(
                    "2", "Stages the data goes through, with size/"
                         "number/format changes per stage", "list"),
            )),
            InterviewSection("3", "Tools (Hardware/Software)", (
                InterviewQuestion("3A", "Tools used in generating/"
                                        "collecting/processing", "list"),
                InterviewQuestion("3B", "Tools required to analyze",
                                  "list"),
                InterviewQuestion("3C", "Are the tools widely used / "
                                        "proprietary / alternatives?"),
            )),
            InterviewSection("4", "Software Lifecycle", (
                InterviewQuestion("4A", "External vs internal software "
                                        "per stage", "list"),
                InterviewQuestion("4B", "Software versions per stage",
                                  "list", required=False),
            )),
            InterviewSection("5", "Storage, Backup, Disaster Recovery", (
                InterviewQuestion("5A", "Primary data maintenance"),
                InterviewQuestion("5B", "Backups made?", "boolean"),
                InterviewQuestion("5C", "Security measures?", "boolean"),
                InterviewQuestion("5D", "Disaster recovery plan?",
                                  "boolean"),
                InterviewQuestion("5E", "Funding agency requires data "
                                        "management plan?", "boolean"),
                InterviewQuestion("5F", "Data management / disaster "
                                        "recovery maturity (1-5)",
                                  "rating"),
            )),
            InterviewSection("6", "Data Organization/Description", (
                InterviewQuestion("6A", "Data organization and its "
                                        "documentation"),
                InterviewQuestion("6B", "Standard formats used per "
                                        "stage?", "boolean"),
                InterviewQuestion("6C", "Sufficient for insiders? "
                                        "outsiders?"),
                InterviewQuestion("6D", "Data description maturity "
                                        "(1-5)", "rating"),
            )),
            InterviewSection("7", "Software Organization/Description", (
                InterviewQuestion("7A", "Software organization and "
                                        "documentation"),
                InterviewQuestion("7B", "Versioned in a controlled "
                                        "manner?", "boolean"),
                InterviewQuestion("7C", "Versions per lifecycle stage",
                                  "list", required=False),
                InterviewQuestion("7D", "Sufficient for insiders? "
                                        "outsiders?"),
            )),
            InterviewSection("8", "Data/Software Curation/Preservation", (
                InterviewQuestion("8A", "Most important parts to "
                                        "preserve", "list"),
                InterviewQuestion("8B", "Useful lifetime and future "
                                        "uses"),
                InterviewQuestion("8C", "Software that must be "
                                        "preserved", "list"),
                InterviewQuestion("8D", "Generation process documented, "
                                        "preserved, reproducible?",
                                  "boolean"),
                InterviewQuestion("8E", "Preservation maturity (1-5)",
                                  "rating"),
            )),
            InterviewSection("9", "Data Access and Sharing", (
                InterviewQuestion("9A", "Sharing targets per lifecycle "
                                        "stage", "grid"),
                InterviewQuestion("9B", "When willing to share?"),
                InterviewQuestion("9C", "Conditions on use?",
                                  required=False),
                InterviewQuestion("9D", "Goals for sharing data"),
                InterviewQuestion("9F", "Sharing/access maturity (1-5)",
                                  "rating"),
            )),
        ])
