"""The four maturity-rating rubrics and evidence-based rating.

Appendix A embeds 1-5 rubric tables for data management/disaster
recovery (Q5F), data description (Q6D), preservation (Q8E), and
sharing/access (Q9F). Each scale here carries the rubric text *and* an
evidence ladder: an ordered list of evidence keys such that the rating
is 1 plus the number of consecutive rungs the experiment satisfies —
so the ratings in the benchmark tables are computed, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MaturityError
from repro.experiments.profiles import ExperimentProfile


@dataclass(frozen=True)
class MaturityScale:
    """One 1-5 rubric with its evidence ladder."""

    scale_id: str
    title: str
    #: Rubric text for levels 1..5 (index 0 = level 1).
    level_descriptions: tuple[str, str, str, str, str]
    #: Evidence keys; satisfying the first k consecutive keys gives 1+k.
    evidence_ladder: tuple[str, str, str, str]

    def describe_level(self, level: int) -> str:
        """The rubric text for a level."""
        if not 1 <= level <= 5:
            raise MaturityError(f"maturity level must be 1-5, got {level}")
        return self.level_descriptions[level - 1]


DATA_MANAGEMENT_SCALE = MaturityScale(
    scale_id="5F",
    title="Data Management and Disaster Recovery",
    level_descriptions=(
        "Data management activities focus on the day-to-day",
        "Some awareness of potential risks but few take preventative "
        "action",
        "Policies and plans are in place for disaster recovery and "
        "long-term sustainability",
        "Disaster recovery plans are accompanied by procedures for "
        "implementation; data loss or loss of access is unlikely",
        "Disaster recovery plans are routinely tested and shown to be "
        "effective; succession plans are in place to safeguard data",
    ),
    evidence_ladder=("has_backup", "has_dr_plan", "dr_procedures",
                     "dr_tested"),
)

DATA_DESCRIPTION_SCALE = MaturityScale(
    scale_id="6D",
    title="Data Description",
    level_descriptions=(
        "Metadata is an unfamiliar concept; low engagement with the "
        "need to document data",
        "Metadata and data description practices vary by individual",
        "Metadata is well understood and guidance is provided to "
        "support the use of standards",
        "Data are well labeled, annotated and systematically organized",
        "Data can be understood by other researchers",
    ),
    evidence_ladder=("metadata_understood", "uses_standard_formats",
                     "data_labeled", "outsider_usable"),
)

PRESERVATION_SCALE = MaturityScale(
    scale_id="8E",
    title="Preservation",
    level_descriptions=(
        "Low awareness of requirements to preserve data",
        "Data may remain available but mostly due to chance, not active "
        "preservation practice",
        "Preservation is understood and well-planned",
        "High levels of awareness and engagement; data are selected for "
        "preservation and repositories are in place",
        "Data are efficiently and effectively preserved; the "
        "infrastructure functions well and is widely used",
    ),
    evidence_ladder=("has_backup", "preservation_planned",
                     "repositories_in_place", "preservation_effective"),
)

SHARING_ACCESS_SCALE = MaturityScale(
    scale_id="9F",
    title="Sharing/Access",
    level_descriptions=(
        "Individuals store data and manage access requests; low "
        "awareness of data sharing requirements",
        "Guidance and services exist but are poorly used; ad hoc data "
        "sharing occurs",
        "A mix of systems meets different access needs; sharing is "
        "supported with training and infrastructure",
        "Access is systematically controlled; data are shared where "
        "legally and ethically possible",
        "Systems meet all user needs and security is maintained; there "
        "is a culture of openness copied by others",
    ),
    evidence_ladder=("access_systems", "sharing_supported",
                     "access_controlled", "sharing_culture"),
)


def all_scales() -> list[MaturityScale]:
    """The four Appendix A scales, in questionnaire order."""
    return [DATA_MANAGEMENT_SCALE, DATA_DESCRIPTION_SCALE,
            PRESERVATION_SCALE, SHARING_ACCESS_SCALE]


def rate_from_evidence(scale: MaturityScale, evidence: dict) -> int:
    """Compute a rating: 1 plus consecutive satisfied ladder rungs."""
    rating = 1
    for key in scale.evidence_ladder:
        if not evidence.get(key, False):
            break
        rating += 1
    return rating


def assess_experiment(profile: ExperimentProfile) -> dict[str, int]:
    """All four computed ratings for one experiment profile."""
    return {
        scale.scale_id: rate_from_evidence(scale,
                                           profile.interview_evidence)
        for scale in all_scales()
    }
