"""Maturity gap analysis: what would raise an experiment's rating.

The maturity rubrics become actionable when inverted: for each scale,
which evidence rung is the *next* one missing, and what does the rubric
promise at the next level? This is the advice a curation consultant
would write after conducting the Appendix A interview.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.profiles import ExperimentProfile
from repro.interview.maturity import (
    MaturityScale,
    all_scales,
    rate_from_evidence,
)

#: Human-readable actions per evidence key.
_ACTIONS = {
    "has_backup": "establish routine backups of all data tiers",
    "has_dr_plan": "write a disaster recovery plan",
    "dr_procedures": "attach concrete procedures to the recovery plan",
    "dr_tested": "exercise the recovery plan and record the outcome",
    "metadata_understood": "introduce metadata practice and guidance",
    "uses_standard_formats": "adopt standard formats at every "
                             "lifecycle stage",
    "data_labeled": "label and systematically organize datasets",
    "outsider_usable": "document data well enough for outsiders",
    "preservation_planned": "plan preservation explicitly (selection, "
                            "responsibilities)",
    "repositories_in_place": "stand up preservation repositories",
    "preservation_effective": "operate and monitor preservation "
                              "infrastructure routinely",
    "access_systems": "provide managed data-access systems",
    "sharing_supported": "support sharing with training and "
                         "infrastructure",
    "access_controlled": "control access systematically (rights, "
                         "authentication)",
    "sharing_culture": "build a culture of openness others copy",
}


@dataclass(frozen=True)
class MaturityGap:
    """One scale's current standing and the next step."""

    scale_id: str
    scale_title: str
    current_rating: int
    next_rung: str | None
    action: str | None
    next_level_description: str | None

    @property
    def at_ceiling(self) -> bool:
        """True when the scale is already at 5."""
        return self.next_rung is None

    def summary(self) -> str:
        """One-line recommendation."""
        if self.at_ceiling:
            return (f"{self.scale_id} {self.scale_title}: rating 5 — "
                    f"at ceiling")
        return (f"{self.scale_id} {self.scale_title}: rating "
                f"{self.current_rating} -> {self.current_rating + 1} "
                f"by: {self.action}")


def gap_for_scale(scale: MaturityScale,
                  evidence: dict) -> MaturityGap:
    """The gap analysis for one scale."""
    rating = rate_from_evidence(scale, evidence)
    next_rung = None
    for key in scale.evidence_ladder:
        if not evidence.get(key, False):
            next_rung = key
            break
    if next_rung is None:
        return MaturityGap(
            scale_id=scale.scale_id,
            scale_title=scale.title,
            current_rating=rating,
            next_rung=None,
            action=None,
            next_level_description=None,
        )
    return MaturityGap(
        scale_id=scale.scale_id,
        scale_title=scale.title,
        current_rating=rating,
        next_rung=next_rung,
        action=_ACTIONS.get(next_rung, next_rung),
        next_level_description=scale.describe_level(
            min(5, rating + 1)
        ),
    )


def gap_analysis(profile: ExperimentProfile) -> list[MaturityGap]:
    """Gap analysis across all four scales for one experiment."""
    return [gap_for_scale(scale, profile.interview_evidence)
            for scale in all_scales()]


def render_gap_report(profile: ExperimentProfile) -> str:
    """The consultant's one-page recommendation list."""
    gaps = gap_analysis(profile)
    lines = [f"Maturity gap analysis — {profile.name}", ""]
    for gap in gaps:
        lines.append(f"  {gap.summary()}")
        if not gap.at_ceiling:
            lines.append(
                f"      next level promises: "
                f"{gap.next_level_description}"
            )
    total = sum(gap.current_rating for gap in gaps)
    lines.append("")
    lines.append(f"  combined maturity: {total}/20")
    return "\n".join(lines)
