"""Interview responses and the stock response corpus.

:func:`response_for_experiment` synthesises a complete, validated
response from an experiment profile: the free-text answers follow the
workflow facts (tiers, tools, constants handling), the ratings come from
the evidence ladder, and the sharing grid follows the experiment's data
policy — so the corpus is consistent with everything else the library
knows about each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InterviewError
from repro.experiments.profiles import (
    DataPolicyStatus,
    ExperimentProfile,
)
from repro.interview.maturity import all_scales, rate_from_evidence
from repro.interview.sharing import DataSharingGrid, SharingEntry
from repro.interview.template import InterviewTemplate


@dataclass
class InterviewResponse:
    """One experiment's answers to the template."""

    experiment: str
    answers: dict[str, object] = field(default_factory=dict)
    sharing_grid: DataSharingGrid | None = None

    def answer(self, question_id: str):
        """Fetch one answer."""
        try:
            return self.answers[question_id]
        except KeyError:
            raise InterviewError(
                f"{self.experiment}: no answer to question "
                f"{question_id!r}"
            ) from None

    def validate(self, template: InterviewTemplate) -> list[str]:
        """Missing required question ids (empty list = complete)."""
        missing = []
        for question_id in template.required_ids():
            if question_id == "9A":
                if self.sharing_grid is None:
                    missing.append(question_id)
                continue
            if question_id not in self.answers:
                missing.append(question_id)
        # Rating answers must be in range.
        for question_id, value in self.answers.items():
            question = template.question(question_id)
            if question.answer_kind == "rating":
                if not isinstance(value, int) or not 1 <= value <= 5:
                    raise InterviewError(
                        f"{self.experiment}: rating {question_id} must "
                        f"be an integer 1-5, got {value!r}"
                    )
        return missing


def _sharing_grid_for(profile: ExperimentProfile) -> DataSharingGrid:
    grid = DataSharingGrid(experiment=profile.name)
    grid.add(SharingEntry("collection", "project collaborators",
                          "always", "collaboration membership"))
    grid.add(SharingEntry("processing", "project collaborators",
                          "always", "collaboration membership"))
    grid.add(SharingEntry("analysis", "project collaborators",
                          "always", "collaboration membership"))
    grid.add(SharingEntry("publication", "whole world",
                          "at publication", "citation requested"))
    if profile.data_policy.status == DataPolicyStatus.APPROVED:
        grid.add(SharingEntry(
            "preservation", "whole world",
            "after embargo period", "per approved public data policy",
        ))
    elif profile.data_policy.status == DataPolicyStatus.UNDER_DISCUSSION:
        grid.add(SharingEntry(
            "preservation", "others in the field",
            "case by case", "policy under discussion",
        ))
    else:
        grid.add(SharingEntry(
            "preservation", "project collaborators",
            "on request", "no public policy",
        ))
    return grid


def response_for_experiment(
    profile: ExperimentProfile,
    template: InterviewTemplate | None = None,
) -> InterviewResponse:
    """Build the stock, fully validated response for one experiment."""
    if template is None:
        template = InterviewTemplate.standard()
    evidence = profile.interview_evidence
    ratings = {scale.scale_id: rate_from_evidence(scale, evidence)
               for scale in all_scales()}
    constants = profile.constants_handling.value
    response = InterviewResponse(experiment=profile.name)
    response.answers = {
        "1A": (f"{profile.collider} collision data recorded by the "
               f"{profile.name} {profile.detector_type} detector"),
        "1B": 1_000_000,
        "1C": 2_000_000_000,
        "1D": ["RAW", "RECO", "AOD"] + list(profile.group_formats),
        "2": [
            "collection: RAW files from the detector",
            "processing: RECO then AOD via central production",
            "analysis: group-format skims and ntuples",
            "publication: summary tables and ancillary information",
            "preservation: AOD + software + documentation",
        ],
        "3A": ["DAQ", "trigger farm", "central production system"],
        "3B": ["ROOT", "experiment framework", f"conditions via "
               f"{constants}", "GRID middleware"],
        "3C": ("ROOT and GRID tools are community standards; the "
               "experiment framework is collaboration-specific"),
        "4A": [
            "collection: internal DAQ + external databases",
            f"processing: internal framework + external {constants}",
            "analysis: internal framework + external ROOT",
        ],
        "4B": ["production releases per processing campaign"],
        "5A": "tape archive with disk caches at Tier-0/Tier-1 centres",
        "5B": bool(evidence.get("has_backup", False)),
        "5C": bool(evidence.get("has_security", False)),
        "5D": bool(evidence.get("has_dr_plan", False)),
        "5E": True,
        "5F": ratings["5F"],
        "6A": ("datasets organised by run period and processing "
               "version; documented in the experiment's data catalogue"),
        "6B": bool(evidence.get("uses_standard_formats", False)),
        "6C": ("sufficient for collaborators; outsiders need the "
               "framework documentation"),
        "6D": ratings["6D"],
        "7A": ("central code repository with work packages per "
               "subsystem"),
        "7B": True,
        "7C": ["release tags recorded per dataset"],
        "7D": ("insiders: yes; outsiders: only with significant "
               "effort"),
        "8A": ["AOD", "analysis software", "conditions",
               "documentation"],
        "8B": ("decades: future comparisons, reinterpretation, and "
               "history of science"),
        "8C": ["reconstruction framework", "analysis framework",
               "ROOT"],
        "8D": bool(evidence.get("preservation_planned", False)),
        "8E": ratings["8E"],
        "9B": "publication-level results immediately; data per policy",
        "9C": "acknowledgement and citation",
        "9D": ("enable reinterpretation and education; agencies "
               "increasingly require it"),
        "9F": ratings["9F"],
    }
    response.sharing_grid = _sharing_grid_for(profile)
    missing = response.validate(template)
    if missing:
        raise InterviewError(
            f"stock response for {profile.name} is incomplete: {missing}"
        )
    return response
