"""Interview reporting: per-experiment reports and aggregate tables."""

from __future__ import annotations

from repro.errors import InterviewError
from repro.experiments.profiles import ExperimentProfile
from repro.interview.maturity import all_scales, assess_experiment
from repro.interview.responses import InterviewResponse
from repro.interview.sharing import SHARING_STAGES
from repro.interview.template import InterviewTemplate


def interview_report(response: InterviewResponse,
                     template: InterviewTemplate | None = None) -> str:
    """Render one experiment's full interview as plain text."""
    if template is None:
        template = InterviewTemplate.standard()
    missing = response.validate(template)
    if missing:
        raise InterviewError(
            f"response for {response.experiment} is incomplete: {missing}"
        )
    lines = [f"Data/Software Interview — {response.experiment}", ""]
    for section in template.sections:
        lines.append(f"Section {section.section_id}: {section.title}")
        for question in section.questions:
            if question.question_id == "9A":
                lines.append("  9A. Data Sharing Grid:")
                grid = response.sharing_grid
                for entry in grid.entries:
                    lines.append(
                        f"      {entry.stage}: {entry.audience} "
                        f"({entry.when}; {entry.conditions})"
                    )
                continue
            if question.question_id not in response.answers:
                continue
            answer = response.answers[question.question_id]
            if isinstance(answer, list):
                lines.append(f"  {question.question_id}. "
                             f"{question.prompt}:")
                for item in answer:
                    lines.append(f"      - {item}")
            else:
                lines.append(f"  {question.question_id}. "
                             f"{question.prompt}: {answer}")
        lines.append("")
    return "\n".join(lines)


def maturity_table(profiles: list[ExperimentProfile]) -> dict:
    """The aggregate maturity table: scale -> {experiment -> rating}.

    Also includes each scale's rubric so the emitted table reproduces
    the Appendix A rubric rows alongside the computed ratings.
    """
    table = {"scales": {}, "ratings": {}}
    for scale in all_scales():
        table["scales"][scale.scale_id] = {
            "title": scale.title,
            "levels": list(scale.level_descriptions),
        }
    for profile in profiles:
        table["ratings"][profile.name] = assess_experiment(profile)
    return table


def render_maturity_table(profiles: list[ExperimentProfile]) -> str:
    """Plain-text maturity table."""
    table = maturity_table(profiles)
    names = [profile.name for profile in profiles]
    header = "scale".ljust(40) + "".join(name.ljust(8) for name in names)
    lines = [header, "-" * len(header)]
    for scale in all_scales():
        row = f"{scale.scale_id} {scale.title}"[:38].ljust(40)
        for name in names:
            row += str(table["ratings"][name][scale.scale_id]).ljust(8)
        lines.append(row)
    return "\n".join(lines)


def sharing_grid_table(responses: list[InterviewResponse]) -> dict:
    """Aggregate sharing grid: stage -> {experiment -> audience}."""
    table: dict[str, dict[str, str]] = {stage: {}
                                        for stage in SHARING_STAGES}
    for response in responses:
        if response.sharing_grid is None:
            raise InterviewError(
                f"{response.experiment} has no sharing grid"
            )
        for entry in response.sharing_grid.entries:
            table[entry.stage][response.experiment] = entry.audience
    return table


def render_sharing_grid(responses: list[InterviewResponse]) -> str:
    """Plain-text aggregate sharing grid."""
    table = sharing_grid_table(responses)
    names = [response.experiment for response in responses]
    width = 24
    header = "stage".ljust(14) + "".join(name.ljust(width)
                                         for name in names)
    lines = [header, "-" * len(header)]
    for stage in SHARING_STAGES:
        row = stage.ljust(14)
        for name in names:
            row += table[stage].get(name, "-")[:width - 2].ljust(width)
        lines.append(row)
    return "\n".join(lines)
