"""The Data Interview Template toolkit (Appendix A).

Machine-readable implementation of the workshop's data/software interview
instrument: the question template itself, the four maturity-rating
rubrics, the Data Sharing Grid, and report generation. Ratings are
*computed from evidence answers* (backups exist, plans are tested, ...)
rather than transcribed, so the maturity tables the benchmarks emit are
outputs of running code.
"""

from repro.interview.template import (
    InterviewQuestion,
    InterviewSection,
    InterviewTemplate,
)
from repro.interview.maturity import (
    MaturityScale,
    all_scales,
    assess_experiment,
    rate_from_evidence,
)
from repro.interview.sharing import DataSharingGrid, SharingEntry
from repro.interview.responses import (
    InterviewResponse,
    response_for_experiment,
)
from repro.interview.gap import (
    MaturityGap,
    gap_analysis,
    gap_for_scale,
    render_gap_report,
)
from repro.interview.report import (
    interview_report,
    maturity_table,
    sharing_grid_table,
)

__all__ = [
    "InterviewQuestion",
    "InterviewSection",
    "InterviewTemplate",
    "MaturityScale",
    "all_scales",
    "rate_from_evidence",
    "assess_experiment",
    "DataSharingGrid",
    "SharingEntry",
    "InterviewResponse",
    "response_for_experiment",
    "MaturityGap",
    "gap_analysis",
    "gap_for_scale",
    "render_gap_report",
    "interview_report",
    "maturity_table",
    "sharing_grid_table",
]
