"""AST reproducibility checks for preserved Python sources.

These rules run over RIVET ``Analysis`` plugin sources, example scripts,
and any other Python file an archive carries. Nothing is imported or
executed — a hostile or broken file can at worst produce findings.

Findings can be waived in the source itself with an end-of-line
marker::

    value = time.time()  # lint: ignore[DAS001] -- wall time is display-only

A bare ``# lint: ignore`` waives every rule on that line. The marker
sits either on the physical line the finding points at or on a
standalone comment directly above it (so long waiver reasons can be
written out in full).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint.engine import register_rule
from repro.lint.findings import Finding, Severity

RULE_SYNTAX = register_rule(
    "DAS010", "unparseable-source", Severity.ERROR, "rivet",
    "A preserved Python source does not parse.",
    "An archive whose code cannot even be parsed is unrunnable by "
    "definition; static checking is the cheapest place to notice.",
    "a truncated ``analysis.py`` inside a bundle",
)

RULE_WALLCLOCK = register_rule(
    "DAS001", "wall-clock-call", Severity.ERROR, "rivet",
    "Analysis code reads the wall clock.",
    "``time.time()``-family calls make re-runs depend on when they "
    "happen, so archived outputs can never be reproduced bit-for-bit.",
    "``started = time.time()`` inside ``analyze()``",
)

RULE_RANDOM = register_rule(
    "DAS002", "unseeded-random", Severity.ERROR, "rivet",
    "Analysis code draws from an unseeded or process-global RNG.",
    "Module-global RNG state (``random.*``, legacy ``numpy.random.*``) "
    "or ``default_rng()`` without a seed gives every re-run a different "
    "event sample; preserved code must derive randomness from an "
    "explicit recorded seed.",
    "``smear = random.gauss(0, 1)`` or ``np.random.default_rng()``",
)

RULE_NETWORK = register_rule(
    "DAS003", "network-access", Severity.ERROR, "rivet",
    "Analysis code imports or uses a network module.",
    "A preserved analysis must be self-contained: a fetch from a URL "
    "that has since moved is the classic way archived code dies.",
    "``import urllib.request`` in an analysis module",
)

RULE_FILESYSTEM = register_rule(
    "DAS004", "filesystem-access", Severity.WARNING, "rivet",
    "Analysis code touches the filesystem outside the archive API.",
    "Paths valid at preservation time rarely survive migration; all "
    "content should flow through the archive/dataset interfaces that "
    "verify fixity.",
    "``open('/data/cal.txt')`` inside ``init()``",
)

RULE_ENV = register_rule(
    "DAS005", "env-var-read", Severity.WARNING, "rivet",
    "Analysis code reads environment variables.",
    "Environment state is invisible to the preservation record; a "
    "re-run on a clean host silently sees different configuration.",
    "``threshold = float(os.environ['CUT'])``",
)

RULE_MUTABLE_GLOBAL = register_rule(
    "DAS006", "mutable-module-state", Severity.WARNING, "rivet",
    "A module-level name is bound to a mutable container.",
    "Module-level lists/dicts/sets accumulate state across events and "
    "across analyses sharing the interpreter, making results depend on "
    "execution order.",
    "``_cache = {}`` at module scope",
)

RULE_SWALLOW = register_rule(
    "DAS007", "swallowed-exception", Severity.ERROR, "rivet",
    "A handler swallows broad or preservation-family exceptions.",
    "``except:`` (or catching ``Exception``/``PreservationError`` "
    "without re-raising) turns fixity and validation failures into "
    "silently wrong physics.",
    "``except PreservationError: pass``",
)

RULE_METADATA = register_rule(
    "DAS008", "analysis-missing-metadata", Severity.WARNING, "rivet",
    "An Analysis subclass defines no AnalysisMetadata.",
    "The metadata block is the only link between archived code and the "
    "publication it implements; without it the plugin cannot even be "
    "registered.",
    "``class MyAnalysis(Analysis):`` with no ``metadata =`` assignment",
)

RULE_INSPIRE = register_rule(
    "DAS009", "analysis-no-inspire-id", Severity.INFO, "rivet",
    "Analysis metadata carries no literature key (inspire_id).",
    "Preserved measurements should point back at their publication the "
    "way RIVET/HepData entries do; purely generated analyses may waive "
    "this with a reason.",
    "``AnalysisMetadata(name=..., description=...)`` without "
    "``inspire_id=``",
)

_WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_NETWORK_MODULES = ("socket", "urllib", "http", "requests", "ftplib",
                    "smtplib", "xmlrpc")

#: numpy.random attributes that are fine to *name* (seeded construction).
_NUMPY_RANDOM_SAFE = {"Generator", "SeedSequence", "PCG64", "Philox",
                      "BitGenerator", "RandomState"}

_OS_FILE_CALLS = {
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.makedirs", "os.mkdir", "os.removedirs", "os.symlink",
}

_PATH_METHODS = {
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "touch", "rename", "replace", "open",
}

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_PRESERVATION_EXCEPTIONS = {
    "ReproError", "PreservationError", "ArchiveError", "FixityError",
    "ValidationError", "MetadataError", "MigrationError",
}

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "Counter",
                  "OrderedDict", "deque"}

_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


def _ignored_codes_by_line(code: str) -> dict[int, set[str] | None]:
    """Line -> waived codes (``None`` means every code) from markers.

    A marker at the end of a code line waives that line; a marker on a
    standalone comment line waives the next code line (so the waiver
    reason can be written out in full above the statement).
    """
    ignores: dict[int, set[str] | None] = {}
    pending: set[str] | None = None
    pending_active = False
    for number, line in enumerate(code.splitlines(), start=1):
        is_comment_line = line.strip().startswith("#")
        match = _IGNORE_RE.search(line)
        waived: set[str] | None = None
        has_marker = match is not None
        if match is not None:
            codes = match.group("codes")
            if codes is not None:
                waived = {c.strip() for c in codes.split(",")
                          if c.strip()}
        if is_comment_line:
            if has_marker:
                pending, pending_active = waived, True
            continue
        if has_marker:
            ignores[number] = waived
        elif pending_active:
            ignores[number] = pending
        if line.strip():
            pending, pending_active = None, False
    return ignores


class _ImportMap:
    """Resolves local names to the dotted module paths they alias.

    ``package`` is the dotted package containing the module being
    checked; when given, relative imports (``from . import x``,
    ``from ..sub import y``) resolve to absolute module paths instead
    of being dropped. Every module path named by an import statement —
    including ``import a.b`` submodule forms, whose *binding* is only
    the root ``a`` — is remembered in :meth:`imported_modules` so the
    interprocedural layer can build a faithful import graph.
    """

    def __init__(self, package: str = "") -> None:
        self._aliases: dict[str, str] = {}
        self._modules: dict[str, int] = {}
        self.package = package

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules.setdefault(alias.name,
                                     getattr(node, "lineno", 0))
            if alias.asname:
                # ``import a.b as c`` binds the full dotted submodule
                # to the alias — resolving through it must yield
                # ``a.b.<attr>``, never the bare root ``a``.
                self._aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self._aliases[root] = root

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        base = self._absolute_base(node.module, node.level)
        if base is None:
            return
        self._modules.setdefault(base, getattr(node, "lineno", 0))
        for alias in node.names:
            if alias.name == "*":
                continue
            self._aliases[alias.asname or alias.name] = (
                f"{base}.{alias.name}"
            )

    def _absolute_base(self, module: str | None, level: int) -> str | None:
        """Absolute dotted base of a (possibly relative) from-import."""
        if not level:
            return module
        if not self.package:
            return None  # relative import, package unknown: unresolvable
        parts = self.package.split(".")
        if level - 1 > len(parts):
            return None  # climbs above the tree root
        base_parts = parts[:len(parts) - (level - 1)]
        if module:
            base_parts.append(module)
        return ".".join(base_parts) if base_parts else None

    def imported_modules(self) -> list[tuple[str, int]]:
        """Every absolute module path imported, with its first line."""
        return sorted(self._modules.items())

    def alias_target(self, name: str) -> str | None:
        """The dotted path a bare local name aliases, if any."""
        return self._aliases.get(name)

    def resolve(self, dotted: str) -> str:
        """Expand the leading segment through the alias table."""
        head, _, rest = dotted.partition(".")
        base = self._aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_value(value: ast.expr) -> bool:
    """True for expressions that build a mutable container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        dotted = _dotted_name(value.func)
        return (dotted or "").split(".")[-1] in _MUTABLE_CALLS
    return False


class _SourceChecker(ast.NodeVisitor):
    """One pass over a module AST, emitting findings as it goes."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: list[Finding] = []
        self.imports = _ImportMap()

    def _emit(self, rule, message: str, node: ast.AST,
              artifact: str = "") -> None:
        self.findings.append(rule.finding(
            message, artifact=artifact, file=self.filename,
            line=getattr(node, "lineno", 0),
        ))

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        for alias in node.names:
            self._check_network_module(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        if node.module is not None:
            self._check_network_module(node.module, node)
        self.generic_visit(node)

    def _check_network_module(self, module: str, node: ast.AST) -> None:
        root = module.split(".")[0]
        if root in _NETWORK_MODULES:
            self._emit(RULE_NETWORK,
                       f"import of network module {module!r}", node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        resolved = self.imports.resolve(dotted) if dotted else None
        if resolved:
            self._check_call(node, resolved)
        else:
            self._check_path_chain(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALLCLOCK_CALLS:
            self._emit(RULE_WALLCLOCK,
                       f"wall-clock call {resolved}()", node)
            return
        if self._check_random(node, resolved):
            return
        root = resolved.split(".")[0]
        if root in _NETWORK_MODULES:
            self._emit(RULE_NETWORK,
                       f"network call {resolved}()", node)
            return
        self._check_filesystem(node, resolved)

    def _check_random(self, node: ast.Call, resolved: str) -> bool:
        if resolved == "random.Random" and not node.args:
            self._emit(RULE_RANDOM,
                       "random.Random() constructed without a seed", node)
            return True
        if (resolved.startswith("random.")
                and resolved != "random.Random"):
            self._emit(RULE_RANDOM,
                       f"call to module-global RNG {resolved}()", node)
            return True
        if resolved == "numpy.random.default_rng" and not node.args:
            self._emit(RULE_RANDOM,
                       "numpy.random.default_rng() without a seed", node)
            return True
        if resolved.startswith("numpy.random."):
            attr = resolved.split(".", 2)[2]
            if attr not in _NUMPY_RANDOM_SAFE and attr != "default_rng":
                self._emit(
                    RULE_RANDOM,
                    f"call to legacy global RNG {resolved}()", node,
                )
                return True
        return False

    def _check_filesystem(self, node: ast.Call, resolved: str) -> None:
        if resolved == "open":
            self._emit(RULE_FILESYSTEM,
                       "direct open() outside the archive API", node)
            return
        if resolved in _OS_FILE_CALLS or resolved.startswith("shutil."):
            self._emit(RULE_FILESYSTEM,
                       f"filesystem call {resolved}()", node)

    def _check_path_chain(self, node: ast.Call) -> None:
        """Path("...").write_text(...) style chained calls."""
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_METHODS
                and isinstance(node.func.value, ast.Call)):
            receiver = _dotted_name(node.func.value.func)
            if receiver and self.imports.resolve(receiver) in (
                "pathlib.Path", "Path",
            ):
                self._emit(
                    RULE_FILESYSTEM,
                    f"Path(...).{node.func.attr}() outside the "
                    f"archive API", node,
                )

    # -- environment ---------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted and self.imports.resolve(dotted) in (
            "os.environ", "os.environb", "os.getenv",
        ):
            self._emit(RULE_ENV,
                       f"environment read via {dotted}", node)
        self.generic_visit(node)

    # -- exception handling --------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        caught = self._caught_names(node.type)
        swallows = not self._body_raises(node)
        if node.type is None:
            if swallows:
                self._emit(RULE_SWALLOW,
                           "bare except: swallows every exception "
                           "(including PreservationError)", node)
        else:
            broad = caught & _BROAD_EXCEPTIONS
            preservation = caught & _PRESERVATION_EXCEPTIONS
            if swallows and (broad or preservation):
                name = sorted(broad | preservation)[0]
                self._emit(
                    RULE_SWALLOW,
                    f"except {name} swallows the preservation-error "
                    f"family without re-raising", node,
                )
        self.generic_visit(node)

    @staticmethod
    def _caught_names(type_node: ast.expr | None) -> set[str]:
        if type_node is None:
            return set()
        nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        names = set()
        for sub in nodes:
            dotted = _dotted_name(sub)
            if dotted:
                names.add(dotted.split(".")[-1])
        return names

    @staticmethod
    def _body_raises(node: ast.ExceptHandler) -> bool:
        return any(isinstance(sub, ast.Raise)
                   for stmt in node.body for sub in ast.walk(stmt))

    # -- module-level mutable state ------------------------------------

    def check_module_body(self, module: ast.Module) -> None:
        """Flag mutable containers bound at module scope."""
        for stmt in module.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_mutable(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and not target.id.startswith("__"):
                    self._emit(
                        RULE_MUTABLE_GLOBAL,
                        f"module-level mutable state {target.id!r}",
                        stmt,
                    )

    _is_mutable = staticmethod(_is_mutable_value)

    # -- Analysis subclass metadata ------------------------------------

    def check_classes(self, module: ast.Module) -> None:
        """DAS008/DAS009 over every Analysis subclass in the module."""
        for stmt in module.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            bases = {(_dotted_name(base) or "").split(".")[-1]
                     for base in stmt.bases}
            if "Analysis" not in bases:
                continue
            metadata_call = self._find_metadata_call(stmt)
            if metadata_call is None:
                self._emit(
                    RULE_METADATA,
                    f"Analysis subclass {stmt.name!r} defines no "
                    f"AnalysisMetadata", stmt, artifact=stmt.name,
                )
                continue
            if not self._has_inspire_id(metadata_call):
                self._emit(
                    RULE_INSPIRE,
                    f"analysis {stmt.name!r} metadata has no "
                    f"inspire_id (no literature linkage)",
                    metadata_call, artifact=stmt.name,
                )

    @staticmethod
    def _find_metadata_call(klass: ast.ClassDef) -> ast.Call | None:
        """The AnalysisMetadata(...) call backing ``metadata``, if any."""
        for stmt in klass.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "metadata"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Call)):
                return stmt.value
        for stmt in klass.body:
            if (isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"):
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Assign)
                            and isinstance(sub.value, ast.Call)
                            and any(
                                isinstance(t, ast.Attribute)
                                and t.attr == "metadata"
                                for t in sub.targets
                            )):
                        return sub.value
        return None

    @staticmethod
    def _has_inspire_id(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "inspire_id":
                if isinstance(keyword.value, ast.Constant):
                    return bool(keyword.value.value)
                return True
        return False


def lint_source(code: str, filename: str = "<source>") -> list[Finding]:
    """Run every source rule over one Python module's text."""
    try:
        module = ast.parse(code, filename=filename)
    except SyntaxError as exc:
        return [RULE_SYNTAX.finding(
            f"source does not parse: {exc.msg}",
            file=filename, line=exc.lineno or 0,
        )]
    checker = _SourceChecker(filename)
    checker.visit(module)
    checker.check_module_body(module)
    checker.check_classes(module)
    ignores = _ignored_codes_by_line(code)
    findings = []
    for finding in checker.findings:
        waived = ignores.get(finding.line)
        if waived is None and finding.line in ignores:
            continue  # bare ignore: every code waived
        if waived is not None and finding.code in waived:
            continue
        findings.append(finding)
    return findings


def lint_source_file(path: str | Path) -> list[Finding]:
    """Lint one ``.py`` file from disk.

    Unreadable or undecodable files yield a deterministic ``DAS010``
    error finding instead of raising — a ``--bundled`` or directory
    sweep must report every file it could not check and keep going,
    never abort mid-report.
    """
    path = Path(path)
    try:
        code = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [RULE_SYNTAX.finding(
            f"source unreadable: {exc}", file=str(path),
        )]
    return lint_source(code, str(path))
