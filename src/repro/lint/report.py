"""Text and JSON reporters for lint reports."""

from __future__ import annotations

from repro.core.canonical import canonical_text
from repro.lint.engine import LintReport, all_rules


def render_text(report: LintReport) -> str:
    """flake8-style ``location: CODE severity: message`` lines."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.code} "
            f"{finding.severity.value}: {finding.message}"
        )
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    return canonical_text(report.to_dict(), indent=2)


def render_rule_catalog() -> str:
    """The rule table docs/linting.md embeds, generated from the registry."""
    lines = [
        "| Code | Name | Severity | Subsystem | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for rule in all_rules():
        lines.append(
            f"| {rule.code} | {rule.name} | {rule.severity.value} "
            f"| {rule.subsystem} | {rule.description} |"
        )
    return "\n".join(lines)
