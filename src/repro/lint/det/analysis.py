"""Replay-root escape analysis (DAS401–DAS412).

The scan layer attaches direct instabilities to functions; this layer
asks the one question the replay contract cares about: *can a
declared serialization root reach that instability?* Roots come from
two places — the library registry (:mod:`repro.lint.det.roots`,
matched by dotted name against the call graph) and ``@replay_root``
decorators found statically in the analysed tree. Instabilities are
then propagated backwards along the call graph's resolved edges,
exactly like the DAS2xx/DAS3xx passes. Edges into ``module:<module>``
pseudo-nodes are deliberately *not* followed: import-time work runs
once per process, before any serialisation, and is policed by
DAS006/DAS206.

Findings carry the full shortest witness chain, like DAS2xx/DAS3xx.
Waivers work the usual way: ``# lint: ignore[DAS4nn]`` at the
instability line kills every chain through it, a waiver at the root's
definition line kills the finding itself.
"""

from __future__ import annotations

from collections import deque

from repro.lint.det.roots import replay_roots
from repro.lint.det.rules import (
    RULE_DET_DICT_FROM_UNORDERED,
    RULE_DET_DICT_ITERATION,
    RULE_DET_ENV_READ,
    RULE_DET_FLOAT_FORMAT,
    RULE_DET_HASH_IDENTITY,
    RULE_DET_INVALID_ROOT,
    RULE_DET_LOCALE_STRING,
    RULE_DET_NONCANONICAL_JSON,
    RULE_DET_SET_ITERATION,
    RULE_DET_UNDERIVED_RNG,
    RULE_DET_UNSORTED_FS,
    RULE_DET_WALL_CLOCK,
)
from repro.lint.det.scan import (
    DetFact,
    DetFactKind,
    ModuleDetScan,
    RootDecl,
    scan_det_module,
)
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, _GraphBuilder
from repro.lint.flow.modgraph import build_module_graph
from repro.lint.pycheck import _ignored_codes_by_line

#: Instabilities that travel along call edges to a replay root.
_PROPAGATED = {
    DetFactKind.NONCANONICAL_JSON: RULE_DET_NONCANONICAL_JSON,
    DetFactKind.SET_ITERATION: RULE_DET_SET_ITERATION,
    DetFactKind.DICT_VIEW_ITERATION: RULE_DET_DICT_ITERATION,
    DetFactKind.UNSORTED_FS: RULE_DET_UNSORTED_FS,
    DetFactKind.WALL_CLOCK: RULE_DET_WALL_CLOCK,
    DetFactKind.HASH_IDENTITY: RULE_DET_HASH_IDENTITY,
    DetFactKind.ENV_READ: RULE_DET_ENV_READ,
    DetFactKind.FLOAT_FORMAT: RULE_DET_FLOAT_FORMAT,
    DetFactKind.UNDERIVED_RNG: RULE_DET_UNDERIVED_RNG,
    DetFactKind.LOCALE_STRING: RULE_DET_LOCALE_STRING,
    DetFactKind.DICT_FROM_UNORDERED: RULE_DET_DICT_FROM_UNORDERED,
}

#: Every code a fact kind surfaces as — a waiver at the fact line
#: naming it (or a bare marker) kills all chains through it.
_KIND_CODES = {
    kind: {rule.code} for kind, rule in _PROPAGATED.items()
}


def _readable(qualname: str) -> str:
    return qualname.replace(":<module>", " (import)").replace(":", ".")


def _render_chain(chain: tuple[str, ...]) -> str:
    return " -> ".join(_readable(part) for part in chain)


class _DetAnalysis:
    """One det pass over one built call graph."""

    def __init__(self, graph: CallGraph,
                 builder: _GraphBuilder) -> None:
        self.graph = graph
        self.builder = builder
        self.waivers = {
            name: _ignored_codes_by_line(node.source)
            for name, node in graph.modules.modules.items()
            if not node.parse_error}
        self.det_scans: dict[str, ModuleDetScan] = {
            name: scan_det_module(name, scan)
            for name, scan in sorted(builder.scans.items())}
        self.facts: dict[str, tuple[DetFact, ...]] = {}
        for name, det_scan in self.det_scans.items():
            for qualname, found in det_scan.facts.items():
                kept = tuple(
                    fact for fact in found
                    if not self._waived(name, fact.line,
                                        _KIND_CODES[fact.kind]))
                if kept:
                    self.facts[qualname] = kept
        self.findings: list[Finding] = []

    def _waived(self, module: str, line: int,
                codes: set[str]) -> bool:
        table = self.waivers.get(module, {})
        if line not in table:
            return False
        waived = table[line]
        return waived is None or bool(waived & codes)

    def _module_file(self, module: str) -> str:
        node = self.graph.modules.modules.get(module)
        return node.path if node is not None else module

    # -- roots ---------------------------------------------------------

    def _registry_roots(self) -> dict[str, str]:
        """Registered roots present in the graph: qualname -> label."""
        wanted = replay_roots()
        found: dict[str, str] = {}
        for qualname in self.graph.functions:
            label = wanted.get(qualname.replace(":", "."))
            if label is not None:
                found[qualname] = label
        return found

    def _declared_roots(self) -> dict[str, RootDecl]:
        """Decorator-declared roots in the target modules."""
        declared: dict[str, RootDecl] = {}
        for module in sorted(set(self.graph.modules.targets)):
            det_scan = self.det_scans.get(module)
            if det_scan is None:
                continue
            declared.update(det_scan.roots)
        return declared

    def _declaration_findings(self) -> dict[str, RootDecl]:
        """DAS412 for bad declarations; the valid roots survive."""
        declared = self._declared_roots()
        for module in sorted(set(self.graph.modules.targets)):
            det_scan = self.det_scans.get(module)
            if det_scan is None:
                continue
            file = self._module_file(module)
            for qualname, line, problem in det_scan.root_errors:
                if self._waived(module, line,
                                {RULE_DET_INVALID_ROOT.code}):
                    continue
                self.findings.append(RULE_DET_INVALID_ROOT.finding(
                    f"replay-root declaration on "
                    f"{_readable(qualname)!r}: {problem}",
                    artifact=_readable(qualname), file=file,
                    line=line,
                ))
        by_label: dict[str, list[str]] = {}
        for qualname, decl in declared.items():
            if decl.label:
                by_label.setdefault(decl.label, []).append(qualname)
        for label, holders in sorted(by_label.items()):
            if len(holders) < 2:
                continue
            holders.sort()
            for qualname in holders[1:]:
                decl = declared[qualname]
                module = qualname.partition(":")[0]
                if self._waived(module, decl.line,
                                {RULE_DET_INVALID_ROOT.code}):
                    continue
                self.findings.append(RULE_DET_INVALID_ROOT.finding(
                    f"replay-root declaration on "
                    f"{_readable(qualname)!r}: label {label!r} is "
                    f"already declared by "
                    f"{_readable(holders[0])!r}; every root needs a "
                    f"unique name",
                    artifact=_readable(qualname),
                    file=self._module_file(module), line=decl.line,
                ))
        return declared

    # -- propagation ---------------------------------------------------

    def _trace(self, root: str) -> dict[DetFactKind,
                                        tuple[DetFact, str]]:
        """Shortest (fact, holder chain) per kind from a root.

        Deterministic breadth-first search over resolved call edges;
        ``module:<module>`` pseudo-nodes are not descended into (see
        module docstring).
        """
        traces: dict[DetFactKind, tuple[DetFact, tuple[str, ...]]] = {}
        seen = {root}
        queue: deque[tuple[str, tuple[str, ...]]] = deque(
            [(root, (root,))])
        while queue:
            current, chain = queue.popleft()
            for fact in self.facts.get(current, ()):
                if fact.kind not in traces:
                    traces[fact.kind] = (fact, chain)
            info = self.graph.functions.get(current)
            if info is None:
                continue
            for callee, _ in sorted(info.calls):
                if callee.endswith(":<module>") or callee in seen:
                    continue
                seen.add(callee)
                queue.append((callee, chain + (callee,)))
        return traces

    def _root_findings(self, roots: dict[str, str]) -> None:
        for root, label in sorted(roots.items()):
            info = self.graph.functions.get(root)
            if info is None:
                continue
            suffix = f" ({label})" if label else ""
            traces = self._trace(root)
            for kind in sorted(traces, key=lambda k: k.value):
                rule = _PROPAGATED[kind]
                fact, chain = traces[kind]
                if self._waived(info.module, info.lineno,
                                {rule.code}):
                    continue
                holder = self.graph.functions[chain[-1]]
                fact_file = self._module_file(holder.module)
                self.findings.append(rule.finding(
                    f"replay root {_readable(root)!r}{suffix} "
                    f"reaches {fact.description} via "
                    f"{_render_chain(chain)} "
                    f"({fact_file}:{fact.line}); re-serialisation "
                    f"is not byte-stable",
                    artifact=_readable(root),
                    file=self._module_file(info.module),
                    line=info.lineno,
                ))

    def run(self) -> list[Finding]:
        declared = self._declaration_findings()
        roots = self._registry_roots()
        for qualname, decl in declared.items():
            roots.setdefault(qualname, decl.label)
        self._root_findings(roots)
        return sorted(self.findings, key=Finding.sort_key)


def det_findings(graph: CallGraph) -> list[Finding]:
    """All DAS401–DAS412 findings for one analysed tree."""
    builder = _GraphBuilder(graph.modules)
    rebuilt = builder.build()
    return _DetAnalysis(rebuilt, builder).run()


def lint_tree_det(root) -> list[Finding]:
    """Run the determinism/replay pass over one file or directory."""
    builder = _GraphBuilder(build_module_graph(root))
    graph = builder.build()
    return _DetAnalysis(graph, builder).run()
