"""Per-module extraction of determinism facts and root declarations.

The flow layer's call graph answers *who calls whom*; this scan
answers *what each function does that replayed serialization must
care about*: non-canonical JSON encoding, iteration over unordered
collections, filesystem enumeration, ambient-state reads (clocks,
identities, environment), drifting float formats, undisciplined
randomness, and locale-dependent rendering. Nothing is imported or
executed; facts are attached to the same ``module:func`` /
``module:Class.method`` qualnames the call graph uses so the analysis
layer can carry them along call edges.

``@replay_root`` declarations are collected here too — recognised by
dotted-name suffix, so a tree only ever *parsed* by the linter still
declares its roots.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field

from repro.lint.flow.callgraph import _ModuleScan
from repro.lint.par.scan import (
    _RNG_CONSTRUCTORS,
    _root_name,
    _seed_is_derived,
)
from repro.lint.pycheck import (
    _NUMPY_RANDOM_SAFE,
    _WALLCLOCK_CALLS,
    _dotted_name,
)

#: Builtins that consume an unordered source and emit an order-free
#: (or deterministically ordered) result: iterating through them is
#: fine, and a filesystem listing passed straight in is fine too.
_SANITIZERS = {"sorted", "len", "min", "max", "sum", "any", "all",
               "frozenset", "set"}

#: Module-level filesystem enumerations (resolved dotted names).
_FS_ENUM_CALLS = {"os.listdir", "os.scandir", "glob.glob",
                  "glob.iglob"}

#: Path-object methods enumerating a directory.
_FS_ENUM_METHODS = {"iterdir", "glob", "rglob", "scandir"}

#: Dict-view accessors whose iteration order is insertion order.
_DICT_VIEW_METHODS = {"keys", "values", "items"}

#: A format spec that pins float rendering to libc-style rounding.
_FLOAT_SPEC_RE = re.compile(r"[eEfFgG%]$")

#: A %-format template containing a float conversion.
_FLOAT_PERCENT_RE = re.compile(r"%[-+ #0]*[\d.]*[eEfFgG]")


class DetFactKind(enum.Enum):
    """The instability families the det pass knows about."""

    NONCANONICAL_JSON = "noncanonical-json"
    SET_ITERATION = "set-iteration"
    DICT_VIEW_ITERATION = "dict-view-iteration"
    UNSORTED_FS = "unsorted-fs"
    WALL_CLOCK = "wall-clock"
    HASH_IDENTITY = "hash-identity"
    ENV_READ = "env-read"
    FLOAT_FORMAT = "float-format"
    UNDERIVED_RNG = "underived-rng"
    LOCALE_STRING = "locale-string"
    DICT_FROM_UNORDERED = "dict-from-unordered"


@dataclass(frozen=True)
class DetFact:
    """One direct instability inside one function."""

    kind: DetFactKind
    description: str
    line: int


@dataclass(frozen=True)
class RootDecl:
    """One valid ``@replay_root(...)`` declaration."""

    qualname: str
    label: str
    line: int


@dataclass
class ModuleDetScan:
    """Everything the det pass extracted from one module."""

    module: str
    facts: dict[str, tuple[DetFact, ...]] = field(default_factory=dict)
    roots: dict[str, RootDecl] = field(default_factory=dict)
    #: Invalid declarations: (qualname, line, problem).
    root_errors: tuple[tuple[str, int, str], ...] = ()


def _is_setish(expr: ast.expr, bindings: dict,
               seen: frozenset = frozenset()) -> bool:
    """Is this expression (statically) a set?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in {"set", "frozenset"}:
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra: either operand being a set makes the result one.
        return (_is_setish(expr.left, bindings, seen)
                or _is_setish(expr.right, bindings, seen))
    if isinstance(expr, ast.Name) and expr.id not in seen:
        bound = bindings.get(expr.id)
        if bound is not None and not isinstance(bound, ast.Name):
            return _is_setish(bound, bindings, seen | {expr.id})
    return False


def _is_dict_view(expr: ast.expr) -> bool:
    """Is this expression a ``.keys()/.values()/.items()`` view?"""
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _DICT_VIEW_METHODS
            and not expr.args and not expr.keywords)


def _is_sorted_call(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"sorted", "reversed"})


class _DetFunctionFacts:
    """Direct-instability extraction over one function definition."""

    def __init__(self, scan: _ModuleScan, funcdef) -> None:
        self.scan = scan
        self.funcdef = funcdef
        params = set()
        args = funcdef.args
        for p in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            params.add(p.arg)
        params.discard("self")
        params.discard("cls")
        self.params = params
        # Last simple ``name = expr`` binding per local name, so
        # ``tags = {...}; for t in tags:`` is still seen as a set.
        self.bindings: dict[str, ast.expr] = {}
        # Expressions consumed by a sanitizer: ``sorted(p.iterdir())``
        # is a deterministic enumeration, not a hazard.
        self.sanitized: set[int] = set()
        for node in ast.walk(funcdef):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                self.bindings[node.targets[0].id] = node.value
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _SANITIZERS):
                for arg in node.args:
                    self.sanitized.add(id(arg))
        self.facts: list[DetFact] = []

    def _add(self, kind: DetFactKind, description: str,
             line: int) -> None:
        self.facts.append(DetFact(kind=kind, description=description,
                                  line=line))

    def run(self) -> tuple[DetFact, ...]:
        for node in ast.walk(self.funcdef):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._scan_iteration(node.iter, node.lineno,
                                     dict_target=False)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    self._scan_iteration(
                        generator.iter, node.lineno,
                        dict_target=isinstance(node, ast.DictComp))
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Attribute):
                self._scan_attribute(node)
            elif isinstance(node, ast.FormattedValue):
                self._scan_format_spec(node)
            elif isinstance(node, ast.BinOp):
                self._scan_percent_format(node)
        return tuple(sorted(
            set(self.facts),
            key=lambda f: (f.line, f.kind.value, f.description)))

    # -- iteration sites -----------------------------------------------

    def _scan_iteration(self, source: ast.expr, line: int,
                        dict_target: bool) -> None:
        if _is_sorted_call(source):
            return
        if _is_setish(source, self.bindings):
            if dict_target:
                self._add(DetFactKind.DICT_FROM_UNORDERED,
                          "a dict comprehension over a set (insertion "
                          "order bakes in set order)", line)
            else:
                self._add(DetFactKind.SET_ITERATION,
                          "iteration over a set (hash-seed-dependent "
                          "order)", line)
        elif _is_dict_view(source):
            method = source.func.attr
            self._add(DetFactKind.DICT_VIEW_ITERATION,
                      f"unsorted iteration over a .{method}() dict "
                      f"view", line)

    # -- calls ---------------------------------------------------------

    def _scan_call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        resolved = (self.scan.imports.resolve(dotted)
                    if dotted is not None else None)
        if resolved in {"json.dumps", "json.dump"}:
            self._scan_json(node, resolved)
        if resolved is not None:
            if resolved in _WALLCLOCK_CALLS:
                self._add(DetFactKind.WALL_CLOCK,
                          f"a wall-clock read ({resolved}())",
                          node.lineno)
            elif resolved in _FS_ENUM_CALLS:
                if id(node) not in self.sanitized:
                    self._add(DetFactKind.UNSORTED_FS,
                              f"an unsorted filesystem enumeration "
                              f"({resolved}())", node.lineno)
            elif resolved == "os.getenv":
                self._add(DetFactKind.ENV_READ,
                          "an environment read (os.getenv())",
                          node.lineno)
            elif resolved.startswith("locale."):
                self._add(DetFactKind.LOCALE_STRING,
                          f"a locale-dependent operation "
                          f"({resolved}())", node.lineno)
            else:
                self._scan_rng(node, resolved)
        if isinstance(node.func, ast.Attribute):
            self._scan_method_call(node)
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"id", "hash"}
                and self.scan.imports.alias_target(node.func.id)
                is None):
            self._add(DetFactKind.HASH_IDENTITY,
                      f"a per-process {node.func.id}() value",
                      node.lineno)
        for keyword in node.keywords:
            if (keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in {"id", "hash"}):
                self._add(DetFactKind.HASH_IDENTITY,
                          f"an ordering keyed on "
                          f"{keyword.value.id}()", node.lineno)

    def _scan_json(self, node: ast.Call, resolved: str) -> None:
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                if (isinstance(value, ast.Constant)
                        and value.value is True):
                    return
                self._add(DetFactKind.NONCANONICAL_JSON,
                          f"a {resolved}() whose sort_keys is not the "
                          f"constant True", node.lineno)
                return
        self._add(DetFactKind.NONCANONICAL_JSON,
                  f"a {resolved}() without sort_keys=True "
                  f"(insertion-ordered keys)", node.lineno)

    def _scan_method_call(self, node: ast.Call) -> None:
        method = node.func.attr
        dotted = _dotted_name(node.func)
        resolved = (self.scan.imports.resolve(dotted)
                    if dotted is not None else None)
        if (method in _FS_ENUM_METHODS
                and resolved not in _FS_ENUM_CALLS
                and id(node) not in self.sanitized):
            root = _root_name(node.func.value)
            receiver = f"{root}." if root is not None else ""
            self._add(DetFactKind.UNSORTED_FS,
                      f"an unsorted filesystem enumeration "
                      f"({receiver}{method}())", node.lineno)
        elif method == "strftime":
            self._add(DetFactKind.LOCALE_STRING,
                      "a strftime() rendering (locale-dependent "
                      "names)", node.lineno)

    def _scan_rng(self, node: ast.Call, resolved: str) -> None:
        base = resolved.rpartition(".")[2]
        if resolved == "random.Random" or (
                resolved.startswith("numpy.random.")
                and (base in _RNG_CONSTRUCTORS
                     or base in _NUMPY_RANDOM_SAFE)):
            if not node.args and not node.keywords:
                self._add(DetFactKind.UNDERIVED_RNG,
                          f"an RNG constructed without a seed "
                          f"({resolved}())", node.lineno)
            elif not _seed_is_derived(node, self.params):
                self._add(DetFactKind.UNDERIVED_RNG,
                          f"an RNG seeded from a constant "
                          f"({resolved}(...))", node.lineno)
            return
        if resolved.startswith("random."):
            self._add(DetFactKind.UNDERIVED_RNG,
                      f"a draw from the process-global stream "
                      f"({resolved}())", node.lineno)
        elif (resolved.startswith("numpy.random.")
              and base != "default_rng"):
            self._add(DetFactKind.UNDERIVED_RNG,
                      f"a draw from the legacy global stream "
                      f"({resolved}())", node.lineno)

    # -- ambient attribute reads ---------------------------------------

    def _scan_attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted is None:
            return
        if self.scan.imports.resolve(dotted) in {"os.environ",
                                                 "os.environb"}:
            self._add(DetFactKind.ENV_READ,
                      "an environment read (os.environ)", node.lineno)

    # -- formatting ----------------------------------------------------

    def _scan_format_spec(self, node: ast.FormattedValue) -> None:
        spec = node.format_spec
        if not isinstance(spec, ast.JoinedStr):
            return
        text = "".join(part.value for part in spec.values
                       if isinstance(part, ast.Constant))
        if _FLOAT_SPEC_RE.search(text):
            self._add(DetFactKind.FLOAT_FORMAT,
                      f"a fixed float format (:{text})", node.lineno)

    def _scan_percent_format(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, ast.Mod):
            return
        left = node.left
        if (isinstance(left, ast.Constant)
                and isinstance(left.value, str)
                and _FLOAT_PERCENT_RE.search(left.value)):
            self._add(DetFactKind.FLOAT_FORMAT,
                      "a %-style float format", node.lineno)


def _root_decl(funcdef) -> tuple[str | None, int | None, str | None]:
    """(label, decorator line, problem) of a root-decorated function.

    The bare decorator and a zero-argument call declare an unlabelled
    root; a constant-string argument (positional or ``name=``) labels
    it. Anything computed is a DAS412 problem.
    """
    for decorator in funcdef.decorator_list:
        target = (decorator.func if isinstance(decorator, ast.Call)
                  else decorator)
        dotted = _dotted_name(target)
        if dotted is None or (dotted.rpartition(".")[2]
                              != "replay_root"):
            continue
        if not isinstance(decorator, ast.Call):
            return "", decorator.lineno, None
        labels = list(decorator.args) + [
            kw.value for kw in decorator.keywords if kw.arg == "name"]
        if not labels:
            return "", decorator.lineno, None
        label = labels[0]
        if (isinstance(label, ast.Constant)
                and isinstance(label.value, str)):
            return label.value, decorator.lineno, None
        return None, decorator.lineno, (
            "root name is not a string constant; a computed root "
            "declares nothing checkable")
    return None, None, None


def scan_det_module(module: str, scan: _ModuleScan) -> ModuleDetScan:
    """Extract every det-relevant fact from one scanned module."""
    result = ModuleDetScan(module=module)
    root_errors: list[tuple[str, int, str]] = []

    def scan_function(qualname: str, funcdef) -> None:
        facts = _DetFunctionFacts(scan, funcdef).run()
        if facts:
            result.facts[qualname] = facts
        label, line, problem = _root_decl(funcdef)
        if problem is not None:
            root_errors.append((qualname, line, problem))
        elif label is not None:
            result.roots[qualname] = RootDecl(
                qualname=qualname, label=label, line=line)

    for name, funcdef in sorted(scan.function_defs.items()):
        scan_function(f"{module}:{name}", funcdef)
    for class_name, klass in sorted(scan.class_defs.items()):
        for stmt in klass.body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                scan_function(f"{module}:{class_name}.{stmt.name}",
                              stmt)
    result.root_errors = tuple(sorted(root_errors))
    return result
