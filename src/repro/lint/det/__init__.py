"""Determinism & replay-safety analysis (DAS4xx).

The fourth static-analysis layer: escape analysis from declared
serialization roots (the registry in :mod:`repro.lint.det.roots` plus
``@replay_root`` decorators) to every byte-instability a replayed
artifact could inherit — non-canonical JSON, unordered iteration,
filesystem order, clocks, identities, environment, formatting drift,
and undisciplined randomness. Built on the flow layer's module/call
graphs; run via ``repro lint --det`` (and as part of ``--deep``).
"""

from repro.lint.det.analysis import det_findings, lint_tree_det
from repro.lint.det.roots import (
    register_replay_root,
    replay_root,
    replay_roots,
)
from repro.lint.det.scan import (
    DetFact,
    DetFactKind,
    ModuleDetScan,
    RootDecl,
    scan_det_module,
)

__all__ = [
    "DetFact",
    "DetFactKind",
    "ModuleDetScan",
    "RootDecl",
    "det_findings",
    "lint_tree_det",
    "register_replay_root",
    "replay_root",
    "replay_roots",
    "scan_det_module",
]
