"""Rule registrations for the determinism/replay-safety layer.

``DAS4xx`` codes are the fourth static-analysis pass. ``DAS0xx`` rules
inspect one statement, ``DAS2xx`` rules carry impurity facts to
``Analysis`` entry points, ``DAS3xx`` rules police the parallel
execution contract; these rules reason about the *replay contract*:
every callable statically reachable from a declared serialization
root (:mod:`repro.lint.det.roots`) must produce the same bytes on
every run — re-serialising a preserved artifact years later has to
reproduce it bit for bit, or fixity checking becomes noise.

DAS401–DAS404 are the ordering rules (encoder settings, set/dict/
filesystem iteration), DAS405–DAS409 the ambient-state rules (clocks,
identities, environment, formatting, randomness), DAS410–DAS411 the
representation rules, DAS412 the root-declaration rule.
"""

from __future__ import annotations

from repro.lint.engine import register_rule
from repro.lint.findings import Severity

RULE_DET_NONCANONICAL_JSON = register_rule(
    "DAS401", "det-noncanonical-json", Severity.ERROR, "det",
    "A replay root reaches a JSON encoding without ``sort_keys=True`` "
    "through its call graph.",
    "``json.dumps`` without ``sort_keys`` emits keys in insertion "
    "order, and insertion order is an accident of construction: two "
    "runs assembling the same mapping differently produce different "
    "bytes, so digests and fixity checks over the artifact diverge. "
    "Route every serialization through "
    ":mod:`repro.core.canonical`.",
    "``handle.write(json.dumps(record))`` inside a dataset writer",
)

RULE_DET_SET_ITERATION = register_rule(
    "DAS402", "det-unordered-set-iteration", Severity.ERROR, "det",
    "A replay root reaches iteration over a set through its call "
    "graph.",
    "Set iteration order depends on insertion history and on the "
    "per-process hash seed; any bytes derived from it change between "
    "runs even when the set's contents do not. Wrap the iteration in "
    "``sorted(...)``.",
    "``for tag in {\"a\", \"b\"}:`` feeding a serialised list",
)

RULE_DET_DICT_ITERATION = register_rule(
    "DAS403", "det-unsorted-dict-iteration", Severity.WARNING, "det",
    "A replay root reaches unsorted iteration over a dict view "
    "through its call graph.",
    "Dict views iterate in insertion order, which is determined by "
    "code paths, not by content — a cache populated in a different "
    "order serialises differently. Iterate ``sorted(d.items())`` "
    "when the order can reach output bytes.",
    "``for key, value in cache.items():`` inside a report builder",
)

RULE_DET_UNSORTED_FS = register_rule(
    "DAS404", "det-unsorted-fs-enumeration", Severity.ERROR, "det",
    "A replay root reaches an unsorted filesystem enumeration "
    "through its call graph.",
    "``os.listdir`` and ``Path.iterdir`` return entries in "
    "filesystem order, which differs between hosts, filesystems, and "
    "even repeated runs; artifact bytes built from such a listing "
    "are irreproducible. Wrap the enumeration in ``sorted(...)``.",
    "``for path in directory.iterdir():`` feeding a manifest",
)

RULE_DET_WALL_CLOCK = register_rule(
    "DAS405", "det-wall-clock-in-output", Severity.ERROR, "det",
    "A replay root reaches a wall-clock read through its call graph.",
    "A timestamp taken at serialisation time is different on every "
    "run by construction; re-serialising the same preserved content "
    "can never be byte-stable. Logical time must flow in from "
    ":mod:`repro.runtime.clock` or the caller.",
    "``time.time()`` stamped into an archive catalogue",
)

RULE_DET_HASH_IDENTITY = register_rule(
    "DAS406", "det-hash-identity-in-output", Severity.ERROR, "det",
    "A replay root reaches an ``id()`` or builtin ``hash()`` value "
    "through its call graph.",
    "``id()`` is a memory address and ``hash()`` of strings is "
    "salted per process (PYTHONHASHSEED); both change on every run, "
    "so any serialised value or ordering derived from them is "
    "unreproducible. Use content digests "
    "(:func:`repro.core.archive.sha256_digest`) instead.",
    "``sorted(objs, key=id)`` feeding a serialised list",
)

RULE_DET_ENV_READ = register_rule(
    "DAS407", "det-env-read-in-output", Severity.WARNING, "det",
    "A replay root reaches an environment-variable read through its "
    "call graph.",
    "``os.environ`` is ambient host state: the same code serialises "
    "different bytes on a different machine or shell. Environment "
    "capture belongs in the observability layer's explicit, "
    "normalised snapshot — not inline in artifact encoders.",
    "``os.getenv(\"USER\")`` written into a report field",
)

RULE_DET_FLOAT_FORMAT = register_rule(
    "DAS408", "det-float-format-drift", Severity.WARNING, "det",
    "A replay root reaches fixed-format float rendering through its "
    "call graph.",
    "``%g``-family formatting rounds through the platform libc and "
    "drifts across interpreter builds, while ``repr``-based encoding "
    "(what the JSON encoder uses) is exact and stable. Serialise the "
    "float itself and leave display formatting to readers.",
    "``f\"{value:.3f}\"`` inside a serialised record",
)

RULE_DET_UNDERIVED_RNG = register_rule(
    "DAS409", "det-underived-rng-in-output", Severity.ERROR, "det",
    "A replay root reaches a random draw that is not derived from a "
    "managed seed through its call graph.",
    "Randomness in a serialisation path makes the bytes different on "
    "every run unless the stream is constructed from a "
    "``derive_seed(...)``-derived argument; global streams and "
    "constant seeds reproduce by luck, not by contract.",
    "``random.random()`` generating a serialised identifier",
)

RULE_DET_LOCALE_STRING = register_rule(
    "DAS410", "det-locale-string-op", Severity.WARNING, "det",
    "A replay root reaches a locale-dependent string operation "
    "through its call graph.",
    "``locale.*`` formatting and ``strftime`` month/day names follow "
    "the host locale: the same artifact serialises differently under "
    "``LC_ALL=C`` and a user desktop. Render with locale-independent "
    "formatting (ISO dates, explicit separators).",
    "``value.strftime(\"%B %Y\")`` inside a report encoder",
)

RULE_DET_DICT_FROM_UNORDERED = register_rule(
    "DAS411", "det-dict-from-unordered", Severity.ERROR, "det",
    "A replay root reaches a dict comprehension over an unordered "
    "source through its call graph.",
    "Dicts remember insertion order, so a comprehension over a set "
    "bakes nondeterministic ordering into the mapping itself; every "
    "downstream consumer that iterates it — including "
    "order-preserving encoders — inherits the instability. Build "
    "from ``sorted(...)``.",
    "``{name: 0 for name in tag_set}`` feeding a serialised block",
)

RULE_DET_INVALID_ROOT = register_rule(
    "DAS412", "det-invalid-root-declaration", Severity.ERROR, "det",
    "A replay-root declaration is not a constant, unique name.",
    "The root registry is the contract this whole family enforces; a "
    "root labelled by a computed expression declares nothing "
    "checkable, and two roots sharing a label make waivers and "
    "reports ambiguous.",
    "``@replay_root(LABEL_VAR)`` or two ``@replay_root('log')``",
)
