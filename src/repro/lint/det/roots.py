"""The determinism-root registry: who must serialise byte-stably.

The det pass does not guess which functions produce preserved bytes —
roots are *declared*, two ways:

- library code registers its serialization entry points here, by
  dotted name, with :func:`register_replay_root` (keeping analysis
  layers importable without dragging the lint package into every
  substrate);
- analysis code marks its own encoders with the :func:`replay_root`
  decorator, which the scanner recognises statically (the decorated
  module never has to import cleanly).

Everything statically reachable from a root is then held to the
replay contract (DAS401–DAS411); the declarations themselves are
policed by DAS412.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Dotted name -> artifact label of every library-declared root.
_REGISTRY: dict[str, str] = {}


def register_replay_root(dotted: str, artifact: str) -> None:
    """Declare one library serialization entry point.

    ``dotted`` is the fully qualified name the call graph will see
    (``package.module.func`` or ``package.module.Class.method``);
    ``artifact`` names the preserved bytes it produces, for reports.
    """
    if dotted in _REGISTRY:
        raise ConfigurationError(
            f"replay root {dotted!r} is already registered "
            f"(as {_REGISTRY[dotted]!r})"
        )
    _REGISTRY[dotted] = artifact


def replay_roots() -> dict[str, str]:
    """Every registered root, dotted name -> artifact label."""
    return dict(_REGISTRY)


def replay_root(target=None, *, name: str = ""):
    """Mark a function as a serialization root, for the det pass.

    Usable bare (``@replay_root``), with a positional label
    (``@replay_root("event log")``), or with a keyword label
    (``@replay_root(name="event log")``). The decorator is inert at
    runtime beyond tagging the function — detection is static, so it
    also works in trees the linter only parses.
    """
    def mark(func, label: str):
        func.__replay_root__ = label
        return func

    if callable(target):
        return mark(target, name)
    if target is not None and not isinstance(target, str):
        raise ConfigurationError(
            f"replay_root label must be a string, got "
            f"{type(target).__name__}"
        )
    label = target if isinstance(target, str) else name
    return lambda func: mark(func, label)


# ----------------------------------------------------------------------
# The library's own serialization entry points. Every artifact this
# package preserves, digests, or logs funnels through one of these.
# ----------------------------------------------------------------------

register_replay_root(
    "repro.core.canonical.canonical_json", "canonical encoding")
register_replay_root(
    "repro.core.archive.PreservationArchive.save", "archive catalogue")
register_replay_root(
    "repro.service.scheduler.RecastService.event_log_bytes",
    "request-event log")
register_replay_root(
    "repro.service.dedup.dedup_key", "dedup key")
register_replay_root(
    "repro.obs.report.RunReport.to_json_bytes", "run report")
register_replay_root(
    "repro.lint.flow.manifest.ClosureManifest.to_json_bytes",
    "closure manifest")
register_replay_root(
    "repro.lint.report.render_json", "lint JSON report")
register_replay_root(
    "repro.datamodel.io.DatasetWriter.close", "dataset file")
register_replay_root(
    "repro.obs.telemetry.TelemetryHub.to_json_bytes",
    "telemetry snapshot")
register_replay_root(
    "repro.obs.slo.HealthReport.to_json_bytes", "health report")
register_replay_root(
    "repro.obs.profile.SpanProfile.to_json_bytes", "span profile")
register_replay_root(
    "repro.obs.profile.SpanProfile.collapsed", "collapsed stacks")
register_replay_root(
    "repro.obs.promexport.render_prometheus",
    "prometheus exposition")
