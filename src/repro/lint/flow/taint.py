"""Taint propagation: impurity facts carried through the call graph.

The single-file pass (``pycheck``) flags an impure statement where it
stands. This pass asks the question preservation actually cares about:
*can an Analysis entry point reach that statement?* Direct facts are
classified from the call graph's external events using the same tables
the shallow pass uses, then propagated backwards along call and
import edges. Findings fire on the entry point, carrying the full
propagation chain in the message.

A fact whose source line is waived with ``# lint: ignore[...]`` — by
the matching shallow code (``DAS001``…), the matching deep code
(``DAS201``…), or a bare marker — does not propagate: a reasoned
waiver at the source silences every chain through it.

Chains of length one (the impure statement sits in the entry method
itself) are left to the shallow rules, which already report them; the
deep rules only report what at least one call or import edge hides.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, ClassInfo, analyze_tree
from repro.lint.flow.rules import (
    RULE_CLOSURE_UNRESOLVED,
    RULE_DEEP_ENV,
    RULE_DEEP_FILESYSTEM,
    RULE_DEEP_GLOBAL_WRITE,
    RULE_DEEP_NETWORK,
    RULE_DEEP_RANDOM,
    RULE_DEEP_WALLCLOCK,
)
from repro.lint.pycheck import (
    _NETWORK_MODULES,
    _NUMPY_RANDOM_SAFE,
    _OS_FILE_CALLS,
    _PATH_METHODS,
    _WALLCLOCK_CALLS,
    _ignored_codes_by_line,
)


class TaintKind(enum.Enum):
    """The impurity families the deep pass propagates."""

    WALL_CLOCK = "wall-clock"
    UNSEEDED_RNG = "unseeded-rng"
    NETWORK = "network"
    FILESYSTEM = "filesystem"
    ENV_READ = "env-read"
    GLOBAL_WRITE = "global-write"


#: Deep rule and the shallow code whose waiver also silences it.
_KIND_RULES = {
    TaintKind.WALL_CLOCK: (RULE_DEEP_WALLCLOCK, "DAS001"),
    TaintKind.UNSEEDED_RNG: (RULE_DEEP_RANDOM, "DAS002"),
    TaintKind.NETWORK: (RULE_DEEP_NETWORK, "DAS003"),
    TaintKind.FILESYSTEM: (RULE_DEEP_FILESYSTEM, "DAS004"),
    TaintKind.ENV_READ: (RULE_DEEP_ENV, "DAS005"),
    TaintKind.GLOBAL_WRITE: (RULE_DEEP_GLOBAL_WRITE, "DAS006"),
}


@dataclass(frozen=True)
class TaintFact:
    """One direct impurity inside one function."""

    kind: TaintKind
    description: str
    module: str
    line: int


def _classify_call(dotted: str, has_args: bool) -> tuple | None:
    """(kind, description) of one resolved external call, if impure."""
    if dotted in _WALLCLOCK_CALLS:
        return TaintKind.WALL_CLOCK, f"wall-clock call {dotted}()"
    if dotted == "random.Random" and not has_args:
        return (TaintKind.UNSEEDED_RNG,
                "random.Random() constructed without a seed")
    if dotted.startswith("random.") and dotted != "random.Random":
        return (TaintKind.UNSEEDED_RNG,
                f"call to module-global RNG {dotted}()")
    if dotted == "numpy.random.default_rng" and not has_args:
        return (TaintKind.UNSEEDED_RNG,
                "numpy.random.default_rng() without a seed")
    if dotted.startswith("numpy.random."):
        attr = dotted.split(".", 2)[2]
        if attr not in _NUMPY_RANDOM_SAFE and attr != "default_rng":
            return (TaintKind.UNSEEDED_RNG,
                    f"call to legacy global RNG {dotted}()")
    root = dotted.split(".")[0]
    if root in _NETWORK_MODULES:
        return TaintKind.NETWORK, f"network call {dotted}()"
    if dotted == "open":
        return (TaintKind.FILESYSTEM,
                "direct open() outside the archive API")
    if dotted in _OS_FILE_CALLS or dotted.startswith("shutil."):
        return TaintKind.FILESYSTEM, f"filesystem call {dotted}()"
    if dotted in ("os.getenv", "os.environ.get"):
        return TaintKind.ENV_READ, f"environment read via {dotted}()"
    return None


def _classify_event(event: tuple) -> tuple | None:
    """(kind, description) of one call-graph event, if impure."""
    tag = event[0]
    if tag == "call":
        return _classify_call(event[1], event[3])
    if tag == "import":
        root = event[1].split(".")[0]
        if root in _NETWORK_MODULES:
            return (TaintKind.NETWORK,
                    f"import of network module {event[1]!r}")
        return None
    if tag == "attr":
        return TaintKind.ENV_READ, f"environment read via {event[1]}"
    if tag == "pathchain":
        receiver, _, method = event[1].rpartition(".")
        if (receiver in ("pathlib.Path", "Path")
                and method in _PATH_METHODS):
            return (TaintKind.FILESYSTEM,
                    f"Path(...).{method}() outside the archive API")
        return None
    if tag == "global_write":
        return (TaintKind.GLOBAL_WRITE,
                f"write to module-level name {event[1]!r}")
    if tag == "global_mutate":
        return (TaintKind.GLOBAL_WRITE,
                f"mutation of module-level container {event[1]}")
    return None


def direct_facts(graph: CallGraph) -> dict[str, tuple[TaintFact, ...]]:
    """Per-function direct impurity facts, with waivers applied."""
    waivers: dict[str, dict] = {}
    for name, node in graph.modules.modules.items():
        waivers[name] = _ignored_codes_by_line(node.source)
    facts: dict[str, tuple[TaintFact, ...]] = {}
    for qualname, info in graph.functions.items():
        found: list[TaintFact] = []
        for event in info.events:
            classified = _classify_event(event)
            if classified is None:
                continue
            kind, description = classified
            line = event[2]
            waived = waivers.get(info.module, {})
            if line in waived:
                codes = waived[line]
                deep_rule, shallow_code = _KIND_RULES[kind]
                if codes is None or {shallow_code,
                                     deep_rule.code} & codes:
                    continue
            found.append(TaintFact(kind=kind, description=description,
                                   module=info.module, line=line))
        if found:
            facts[qualname] = tuple(sorted(
                found, key=lambda f: (f.line, f.kind.value,
                                      f.description)))
    return facts


@dataclass(frozen=True)
class TaintTrace:
    """One witness chain from an entry point to a direct fact."""

    entry: str  # entry method qualname
    fact: TaintFact
    chain: tuple[str, ...]  # qualnames, entry first, fact holder last

    def render_chain(self) -> str:
        """`a.f -> b.g -> c.h` with graph qualnames made readable."""
        return " -> ".join(part.replace(":<module>", " (import)")
                            .replace(":", ".")
                           for part in self.chain)


def trace_from(graph: CallGraph,
               facts: dict[str, tuple[TaintFact, ...]],
               entry: str) -> list[TaintTrace]:
    """Shortest witness chain per taint kind reachable from ``entry``.

    Deterministic breadth-first search: neighbours are visited in
    sorted order, so equal-length chains always resolve the same way.
    """
    if entry not in graph.functions:
        return []
    traces: dict[TaintKind, TaintTrace] = {}
    seen = {entry}
    queue: deque[tuple[str, tuple[str, ...]]] = deque(
        [(entry, (entry,))])
    while queue:
        current, chain = queue.popleft()
        for fact in facts.get(current, ()):
            if fact.kind not in traces and len(chain) > 1:
                traces[fact.kind] = TaintTrace(
                    entry=entry, fact=fact, chain=chain)
        info = graph.functions.get(current)
        if info is None:
            continue
        for callee, _ in sorted(info.calls):
            if callee not in seen:
                seen.add(callee)
                queue.append((callee, chain + (callee,)))
    return [traces[kind] for kind in sorted(traces,
                                            key=lambda k: k.value)]


def _entry_findings(graph: CallGraph,
                    facts: dict[str, tuple[TaintFact, ...]],
                    entry: ClassInfo,
                    waivers: dict[str, dict]) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, TaintKind]] = set()
    node = graph.modules.modules.get(entry.module)
    file = node.path if node is not None else ""
    for method_qualname in graph.entry_methods(entry):
        method = method_qualname.rpartition(".")[2]
        for trace in trace_from(graph, facts, method_qualname):
            if (entry.qualname, trace.fact.kind) in reported:
                continue
            reported.add((entry.qualname, trace.fact.kind))
            rule, _ = _KIND_RULES[trace.fact.kind]
            fact_node = graph.modules.modules.get(trace.fact.module)
            fact_file = (fact_node.path if fact_node is not None
                         else trace.fact.module)
            lineno = graph.functions[method_qualname].lineno
            line_waivers = waivers.get(entry.module, {})
            if lineno in line_waivers:
                codes = line_waivers[lineno]
                if codes is None or rule.code in codes:
                    continue
            findings.append(rule.finding(
                f"analysis {entry.name!r}: {method}() reaches "
                f"{trace.fact.description} via {trace.render_chain()} "
                f"({fact_file}:{trace.fact.line})",
                artifact=entry.name, file=file, line=lineno,
            ))
    return findings


def deep_findings(graph: CallGraph) -> list[Finding]:
    """All DAS201–DAS207 findings for one analysed tree."""
    facts = direct_facts(graph)
    waivers = {name: _ignored_codes_by_line(node.source)
               for name, node in graph.modules.modules.items()}
    findings: list[Finding] = []
    for entry in graph.analysis_entries():
        findings.extend(_entry_findings(graph, facts, entry, waivers))
    wanted = set(graph.modules.targets)
    for name in sorted(wanted):
        node = graph.modules.modules[name]
        for rendered, line in node.unresolved_imports:
            findings.append(RULE_CLOSURE_UNRESOLVED.finding(
                f"relative import {rendered!r} cannot be resolved "
                f"inside the tree; the dependency closure is "
                f"incomplete",
                file=node.path, line=line,
            ))
    return findings


def lint_tree_deep(root) -> list[Finding]:
    """Run the interprocedural pass over one file or directory."""
    return deep_findings(analyze_tree(root))
