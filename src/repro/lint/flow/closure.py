"""Static dependency-closure extraction for Analysis plugins.

The closure of an analysis is everything a re-run will touch: the
functions its entry points can call, the modules those functions live
in (plus everything *they* import at import time), the conditions
global tags the code asks for, and the histogram keys it books against
reference data. All of it is computed statically from the call and
import graphs — the analysis is never executed — and serialised as a
deterministic :class:`~repro.lint.flow.manifest.ClosureManifest`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.lint.flow.callgraph import CallGraph, ClassInfo, analyze_tree
from repro.lint.flow.manifest import ClosureManifest


def _reachable_functions(graph: CallGraph,
                         entry_methods: list[str]) -> set[str]:
    seen: set[str] = set()
    frontier = [m for m in entry_methods if m in graph.functions]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        info = graph.functions.get(current)
        if info is None:
            continue
        for callee, _ in info.calls:
            if callee not in seen and callee in graph.functions:
                frontier.append(callee)
    return seen


def extract_closure(root, entry: str | None = None) -> ClosureManifest:
    """Extract the dependency closure of the Analysis classes in a tree.

    ``entry`` restricts extraction to one Analysis subclass (by class
    name or by its metadata name); by default every Analysis subclass
    in the target modules contributes.
    """
    graph = analyze_tree(root)
    return extract_closure_from_graph(graph, entry=entry)


def extract_closure_from_graph(graph: CallGraph,
                               entry: str | None = None
                               ) -> ClosureManifest:
    """Closure extraction over an already-built call graph."""
    entries = graph.analysis_entries()
    if entry is not None:
        entries = [info for info in entries
                   if entry in (info.name, info.metadata_name)]
        if not entries:
            raise ConfigurationError(
                f"no Analysis subclass {entry!r} in the target tree"
            )
    analyses: list[dict] = []
    reachable: set[str] = set()
    tags: set[str] = set()
    for info in entries:
        methods = graph.entry_methods(info)
        functions = _reachable_functions(graph, methods)
        reachable |= functions
        booked: set[str] = set()
        for qualname in functions:
            for event in graph.functions[qualname].events:
                if event[0] == "book":
                    booked.add(event[1])
                elif event[0] == "tag":
                    tags.add(event[1])
        analyses.append({
            "class": info.name,
            "qualname": info.qualname,
            "module": info.module,
            "name": info.metadata_name,
            "inspire_id": info.inspire_id,
            "entry_methods": sorted(
                m.rpartition(".")[2] for m in methods),
            "booked_keys": sorted(booked),
        })

    function_modules = sorted({
        graph.functions[qualname].module for qualname in reachable
    } | {info.module for info in entries})
    module_names = graph.modules.internal_closure(function_modules)
    externals: set[str] = set()
    unresolved: set[str] = set()
    for name in module_names:
        node = graph.modules.modules[name]
        externals.update(node.external_imports)
        unresolved.update(rendered
                          for rendered, _ in node.unresolved_imports)
    modules = [{
        "module": name,
        "path": graph.modules.modules[name].path,
        "sha256": graph.modules.modules[name].source_digest,
    } for name in module_names]

    return ClosureManifest(
        root=graph.modules.anchor.name,
        analyses=sorted(analyses, key=lambda a: a["qualname"]),
        functions=tuple(sorted(
            q for q in reachable if not q.endswith(":<module>"))),
        modules=tuple(modules),
        external_modules=tuple(sorted(externals)),
        conditions_tags=tuple(sorted(tags)),
        unresolved_imports=tuple(sorted(unresolved)),
    )
