"""The per-function call graph over a module graph.

Functions are identified as ``module:func`` / ``module:Class.method``;
each module additionally gets a pseudo-node ``module:<module>`` holding
its import-time statements, with edges to the pseudo-nodes of the
internal modules it imports — so import-time effects propagate exactly
like call-time ones.

Call targets are resolved purely statically: through the module's
import aliases, through package ``__init__`` re-exports (bounded alias
chasing), through ``self.``-method lookup including internal base
classes, and through constructor calls (``Class()`` edges to
``Class.__init__``). Anything unresolvable inside the tree is recorded
as an *external event* for the taint tables; over-approximation is
preferred to silence throughout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.modgraph import ModuleGraph, ModuleNode, build_module_graph
from repro.lint.pycheck import _ImportMap, _dotted_name, _is_mutable_value

#: Method names whose call on a module-level container mutates it.
_MUTATOR_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem",
    "extend", "insert", "remove", "discard", "clear", "appendleft",
}

#: Entry-point methods of an Analysis plugin, in lifecycle order.
ANALYSIS_ENTRY_METHODS = ("__init__", "init", "analyze", "finalize")

_ALIAS_CHASE_LIMIT = 8


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or module pseudo-node) and what it does."""

    qualname: str
    module: str
    lineno: int
    #: Resolved internal call/import edges: (callee qualname, line).
    calls: tuple[tuple[str, int], ...]
    #: External events: ("call", dotted, line, has_args),
    #: ("import", dotted, line), ("attr", dotted, line),
    #: ("pathchain", method, line), ("global_write", name, line),
    #: ("global_mutate", name.method, line), ("book", key, line),
    #: ("tag", value, line).
    events: tuple[tuple, ...]


@dataclass(frozen=True)
class ClassInfo:
    """One class definition plus statically extracted metadata."""

    qualname: str
    module: str
    name: str
    lineno: int
    bases: tuple[str, ...]  # resolved dotted base paths
    methods: tuple[str, ...]
    metadata_name: str = ""
    inspire_id: str = ""


@dataclass
class CallGraph:
    """Functions, classes, and resolved edges for one source tree."""

    modules: ModuleGraph
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def is_analysis_class(self, qualname: str,
                          _seen: frozenset = frozenset()) -> bool:
        """True when the class (transitively) subclasses ``Analysis``."""
        info = self.classes.get(qualname)
        if info is None or qualname in _seen:
            return False
        for base in info.bases:
            if base.split(".")[-1] == "Analysis":
                return True
            member = self.modules.resolve_module(base)
            if member is not None:
                attr = base[len(member) + 1:]
                if self.is_analysis_class(f"{member}:{attr}",
                                          _seen | {qualname}):
                    return True
        return False

    def analysis_entries(self,
                         target_modules: tuple[str, ...] | None = None
                         ) -> list[ClassInfo]:
        """Analysis subclasses, restricted to the target modules."""
        targets = (self.modules.targets if target_modules is None
                   else target_modules)
        wanted = set(targets)
        return [info for qualname, info in sorted(self.classes.items())
                if info.module in wanted
                and self.is_analysis_class(qualname)]

    def entry_methods(self, entry: ClassInfo) -> list[str]:
        """Entry-point method qualnames the class actually defines."""
        return [f"{entry.qualname}.{method}"
                for method in ANALYSIS_ENTRY_METHODS
                if f"{entry.qualname}.{method}" in self.functions]


def _metadata_fields(call: ast.Call) -> tuple[str, str]:
    """(name, inspire_id) constants of an AnalysisMetadata(...) call."""
    name = inspire = ""
    for keyword in call.keywords:
        if (keyword.arg in ("name", "inspire_id")
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)):
            if keyword.arg == "name":
                name = keyword.value.value
            else:
                inspire = keyword.value.value
    return name, inspire


def _find_metadata_call(klass: ast.ClassDef) -> ast.Call | None:
    """Class-level or ``__init__``-assigned metadata call, if any."""
    for stmt in klass.body:
        if (isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "metadata"
                        for t in stmt.targets)
                and isinstance(stmt.value, ast.Call)):
            return stmt.value
    for stmt in klass.body:
        if (isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"):
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Assign)
                        and isinstance(sub.value, ast.Call)
                        and any(isinstance(t, ast.Attribute)
                                and t.attr == "metadata"
                                for t in sub.targets)):
                    return sub.value
    return None


class _ModuleScan:
    """Defs, import map, and module-level mutable names of one module."""

    def __init__(self, node: ModuleNode, tree: ast.Module) -> None:
        self.node = node
        self.tree = tree
        self.imports = _ImportMap(package=node.package)
        self.function_defs: dict[str, ast.FunctionDef] = {}
        self.class_defs: dict[str, ast.ClassDef] = {}
        self.mutable_names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                self.imports.visit_import(stmt)
            elif isinstance(stmt, ast.ImportFrom):
                self.imports.visit_import_from(stmt)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                self.function_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.class_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                if _is_mutable_value(stmt.value):
                    self.mutable_names.update(
                        t.id for t in stmt.targets
                        if isinstance(t, ast.Name))


class _GraphBuilder:
    """Two-pass construction: collect defs, then resolve bodies."""

    def __init__(self, modules: ModuleGraph) -> None:
        self.modules = modules
        self.scans: dict[str, _ModuleScan] = {}
        self.graph = CallGraph(modules=modules)

    def build(self) -> CallGraph:
        for name, node in sorted(self.modules.modules.items()):
            if node.parse_error:
                continue
            tree = ast.parse(node.source, filename=node.path)
            self.scans[name] = _ModuleScan(node, tree)
        for name, scan in sorted(self.scans.items()):
            self._register_defs(name, scan)
        for name, scan in sorted(self.scans.items()):
            self._resolve_module(name, scan)
        return self.graph

    # -- pass 1: definitions -------------------------------------------

    def _register_defs(self, module: str, scan: _ModuleScan) -> None:
        for klass in scan.class_defs.values():
            def resolve_base(dotted: str) -> str:
                # A bare name defined in this very module is a local
                # class, not an import — qualify it so transitive
                # Analysis detection can follow it.
                if ("." not in dotted and dotted in scan.class_defs
                        and scan.imports.alias_target(dotted) is None):
                    return f"{module}.{dotted}"
                return scan.imports.resolve(dotted)

            bases = tuple(sorted(
                resolve_base(dotted)
                for dotted in (_dotted_name(base)
                               for base in klass.bases)
                if dotted
            ))
            methods = tuple(sorted(
                stmt.name for stmt in klass.body
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))
            ))
            metadata_call = _find_metadata_call(klass)
            name = inspire = ""
            if metadata_call is not None:
                name, inspire = _metadata_fields(metadata_call)
            self.graph.classes[f"{module}:{klass.name}"] = ClassInfo(
                qualname=f"{module}:{klass.name}",
                module=module,
                name=klass.name,
                lineno=klass.lineno,
                bases=bases,
                methods=methods,
                metadata_name=name,
                inspire_id=inspire,
            )

    # -- lookup helpers ------------------------------------------------

    def _has_function(self, module: str, attr: str) -> bool:
        scan = self.scans.get(module)
        if scan is None:
            return False
        head, _, rest = attr.partition(".")
        if not rest:
            return head in scan.function_defs
        klass = scan.class_defs.get(head)
        if klass is None:
            return False
        return any(isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))
                   and stmt.name == rest for stmt in klass.body)

    def _method_on_class(self, class_qualname: str, method: str,
                         depth: int = 0) -> str | None:
        """Resolve a method through the class and its internal bases."""
        info = self.graph.classes.get(class_qualname)
        if info is None or depth > _ALIAS_CHASE_LIMIT:
            return None
        if method in info.methods:
            return f"{class_qualname}.{method}"
        for base in info.bases:
            member = self.modules.resolve_module(base)
            if member is None:
                continue
            attr = base[len(member) + 1:]
            found = self._method_on_class(f"{member}:{attr}", method,
                                          depth + 1)
            if found is not None:
                return found
        return None

    def _lookup_attr(self, module: str, attr: str,
                     depth: int = 0) -> str | None:
        """An attribute path inside a tree module -> def qualname."""
        if not attr or depth > _ALIAS_CHASE_LIMIT:
            return None
        scan = self.scans.get(module)
        if scan is None:
            return None
        head, _, rest = attr.partition(".")
        if head in scan.function_defs and not rest:
            return f"{module}:{head}"
        if head in scan.class_defs:
            class_qualname = f"{module}:{head}"
            if rest:
                return self._method_on_class(class_qualname, rest)
            init = self._method_on_class(class_qualname, "__init__")
            # An edge to the class itself keeps it in the closure even
            # when no tree-level __init__ exists.
            return init or class_qualname
        # Chase one re-export hop (package __init__ aliases).
        target = scan.imports.alias_target(head)
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        member = self.modules.resolve_module(dotted)
        if member is None or member == module:
            return None
        return self._lookup_attr(member, dotted[len(member) + 1:],
                                 depth + 1)

    def _resolve_call(self, module: str, scan: _ModuleScan,
                      dotted: str,
                      class_name: str | None) -> str | None:
        if class_name is not None and dotted.startswith("self."):
            return self._method_on_class(f"{module}:{class_name}",
                                         dotted[5:])
        head = dotted.split(".")[0]
        if scan.imports.alias_target(head) is None:
            # Not an imported name: try the module's own namespace.
            local = self._lookup_attr(module, dotted)
            if local is not None:
                return local
            return None if "." not in dotted else None
        resolved = scan.imports.resolve(dotted)
        member = self.modules.resolve_module(resolved)
        if member is None:
            return None
        attr = resolved[len(member) + 1:]
        if not attr:
            return None
        return self._lookup_attr(member, attr)

    # -- pass 2: bodies ------------------------------------------------

    def _resolve_module(self, module: str, scan: _ModuleScan) -> None:
        pseudo = f"{module}:<module>"
        calls: list[tuple[str, int]] = []
        events: list[tuple] = []
        for imported in scan.node.internal_imports:
            calls.append((f"{imported}:<module>", 0))
        for dotted, line in scan.node.imports:
            events.append(("import", dotted, line))
        for stmt in self._import_time_statements(scan.tree):
            self._scan_statement(module, scan, stmt, None, calls, events)
        self.graph.functions[pseudo] = FunctionInfo(
            qualname=pseudo, module=module, lineno=1,
            calls=tuple(sorted(set(calls))),
            events=tuple(sorted(set(events))),
        )
        for name, funcdef in sorted(scan.function_defs.items()):
            self._resolve_function(module, scan, f"{module}:{name}",
                                   funcdef, None)
        for class_name, klass in sorted(scan.class_defs.items()):
            for stmt in klass.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self._resolve_function(
                        module, scan,
                        f"{module}:{class_name}.{stmt.name}",
                        stmt, class_name,
                    )

    @staticmethod
    def _import_time_statements(tree: ast.Module) -> list[ast.stmt]:
        """Statements that execute at import: module body plus class
        bodies, minus function definitions."""
        statements: list[ast.stmt] = []
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Import, ast.ImportFrom)):
                continue
            if isinstance(stmt, ast.ClassDef):
                statements.extend(
                    sub for sub in stmt.body
                    if not isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)))
                continue
            statements.append(stmt)
        return statements

    def _resolve_function(self, module: str, scan: _ModuleScan,
                          qualname: str, funcdef: ast.FunctionDef,
                          class_name: str | None) -> None:
        calls: list[tuple[str, int]] = []
        events: list[tuple] = []
        # Import-time effects of the defining module are visible to
        # every caller of the function: edge to the module pseudo-node.
        calls.append((f"{module}:<module>", funcdef.lineno))
        global_names: set[str] = set()
        for node in ast.walk(funcdef):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        for stmt in funcdef.body:
            self._scan_statement(module, scan, stmt, class_name,
                                 calls, events, global_names)
        self.graph.functions[qualname] = FunctionInfo(
            qualname=qualname, module=module, lineno=funcdef.lineno,
            calls=tuple(sorted(set(calls))),
            events=tuple(sorted(set(events))),
        )

    def _scan_statement(self, module: str, scan: _ModuleScan,
                        stmt: ast.stmt, class_name: str | None,
                        calls: list, events: list,
                        global_names: set[str] | None = None) -> None:
        globals_ = global_names or set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    events.append(("import", alias.name, node.lineno))
                    member = self.modules.resolve_module(alias.name)
                    if member is not None and member != module:
                        calls.append((f"{member}:<module>",
                                      node.lineno))
            elif isinstance(node, ast.ImportFrom):
                base = scan.imports._absolute_base(node.module,
                                                   node.level)
                if base is not None:
                    events.append(("import", base, node.lineno))
                    member = self.modules.resolve_module(base)
                    if member is not None and member != module:
                        calls.append((f"{member}:<module>",
                                      node.lineno))
            elif isinstance(node, ast.Call):
                self._scan_call(module, scan, node, class_name,
                                calls, events)
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted and scan.imports.resolve(dotted) in (
                    "os.environ", "os.environb", "os.getenv",
                ):
                    events.append(("attr", scan.imports.resolve(dotted),
                                   node.lineno))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id in globals_):
                        events.append(("global_write", target.id,
                                       node.lineno))
                    elif (isinstance(target, ast.Subscript)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in scan.mutable_names):
                        events.append((
                            "global_mutate",
                            f"{target.value.id}[...]", node.lineno))
            elif (isinstance(node, ast.Constant)
                  and isinstance(node.value, str)
                  and node.value.startswith("GT-")):
                events.append(("tag", node.value, node.lineno))

    def _scan_call(self, module: str, scan: _ModuleScan,
                   node: ast.Call, class_name: str | None,
                   calls: list, events: list) -> None:
        dotted = _dotted_name(node.func)
        has_args = bool(node.args)
        for keyword in node.keywords:
            if (keyword.arg == "global_tag"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)):
                events.append(("tag", keyword.value.value,
                               node.lineno))
        if dotted is None:
            # Path("...").write_text(...)-style chains.
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)):
                receiver = _dotted_name(node.func.value.func)
                if receiver is not None:
                    events.append((
                        "pathchain",
                        f"{scan.imports.resolve(receiver)}"
                        f".{node.func.attr}", node.lineno))
            return
        if (dotted == "self.book" and class_name is not None
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            events.append(("book", node.args[0].value, node.lineno))
        # Mutation of a module-level container.
        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in scan.mutable_names
                and node.func.attr in _MUTATOR_METHODS):
            events.append(("global_mutate",
                           f"{node.func.value.id}.{node.func.attr}",
                           node.lineno))
        # ``functools.partial(f, ...)`` freezes arguments but the call
        # still lands in ``f``: edge through the wrapper so taint and
        # worker-escape chains don't stop at the partial boundary.
        if (scan.imports.resolve(dotted) == "functools.partial"
                and node.args):
            wrapped = _dotted_name(node.args[0])
            if wrapped is not None:
                inner = self._resolve_call(module, scan, wrapped,
                                           class_name)
                if inner is not None:
                    calls.append((inner, node.lineno))
        target = self._resolve_call(module, scan, dotted, class_name)
        if target is not None:
            calls.append((target, node.lineno))
            return
        events.append(("call", scan.imports.resolve(dotted),
                       node.lineno, has_args))


def build_call_graph(modules: ModuleGraph) -> CallGraph:
    """Build the call graph for an already-scanned module graph."""
    return _GraphBuilder(modules).build()


def analyze_tree(root) -> CallGraph:
    """Module graph + call graph for one file or directory target."""
    return build_call_graph(build_module_graph(root))
