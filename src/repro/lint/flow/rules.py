"""Rule registrations for the interprocedural (deep) analysis layer.

``DAS2xx`` codes are the second static-analysis pass: where ``DAS0xx``
rules inspect one file one statement at a time, these rules reason over
the *whole source tree* — impurity facts carried through call and
import edges to an ``Analysis`` entry point (DAS201–DAS206), and the
statically extracted dependency closure cross-checked against what was
actually archived and catalogued (DAS207–DAS212).
"""

from __future__ import annotations

from repro.lint.engine import register_rule
from repro.lint.findings import Severity

RULE_DEEP_WALLCLOCK = register_rule(
    "DAS201", "deep-wall-clock", Severity.ERROR, "flow",
    "An Analysis entry point reaches a wall-clock read through its "
    "call graph.",
    "A helper two hops from analyze() that reads the clock defeats "
    "reproducibility exactly as thoroughly as a direct call; the "
    "single-file pass cannot see across the call or import edge, this "
    "pass can.",
    "``analyze()`` calling ``helpers.smear()`` calling ``time.time()``",
)

RULE_DEEP_RANDOM = register_rule(
    "DAS202", "deep-unseeded-random", Severity.ERROR, "flow",
    "An Analysis entry point reaches an unseeded/global RNG through "
    "its call graph.",
    "Event-sample randomness smuggled in through a utility module "
    "changes every re-run; the propagation chain names the hop that "
    "must be given an explicit recorded seed.",
    "``init()`` -> ``util.jitter()`` -> ``random.gauss()``",
)

RULE_DEEP_NETWORK = register_rule(
    "DAS203", "deep-network-access", Severity.ERROR, "flow",
    "An Analysis entry point reaches network access through its call "
    "graph or import chain.",
    "A transitively imported module that fetches from a URL dies with "
    "that URL; the archive must carry the content, not the address.",
    "``analyze()`` -> ``calib.fetch()`` -> ``urllib.request.urlopen()``",
)

RULE_DEEP_FILESYSTEM = register_rule(
    "DAS204", "deep-filesystem-access", Severity.WARNING, "flow",
    "An Analysis entry point reaches filesystem access outside the "
    "archive API through its call graph.",
    "Paths valid at preservation time rarely survive migration; a "
    "helper that opens files ties the whole analysis to a directory "
    "layout the archive does not record.",
    "``finalize()`` -> ``io_utils.dump()`` -> ``open('out.txt', 'w')``",
)

RULE_DEEP_ENV = register_rule(
    "DAS205", "deep-env-var-read", Severity.WARNING, "flow",
    "An Analysis entry point reaches an environment-variable read "
    "through its call graph.",
    "Configuration pulled from the environment by a shared helper is "
    "invisible to the preservation record yet steers every re-run.",
    "``init()`` -> ``config.threshold()`` -> ``os.environ['CUT']``",
)

RULE_DEEP_GLOBAL_WRITE = register_rule(
    "DAS206", "deep-mutable-global-write", Severity.WARNING, "flow",
    "An Analysis entry point reaches a write to module-level mutable "
    "state through its call graph.",
    "Cross-event state hidden in a helper makes results depend on "
    "event order and on other analyses sharing the interpreter; the "
    "shallow pass only sees the container binding, not who mutates it.",
    "``analyze()`` -> ``cache.remember()`` appending to a module list",
)

RULE_CLOSURE_UNRESOLVED = register_rule(
    "DAS207", "closure-unresolved-import", Severity.WARNING, "flow",
    "A relative import inside the source tree cannot be resolved, so "
    "the dependency closure is incomplete.",
    "An import the extractor cannot follow is a dependency nobody "
    "archived; the closure manifest under-reports and every check "
    "against it is weaker than it looks.",
    "``from ...outside import helper`` climbing above the tree root",
)

RULE_CLOSURE_UNARCHIVED_MODULE = register_rule(
    "DAS208", "closure-unarchived-module", Severity.ERROR, "flow",
    "A module in the analysis dependency closure is missing from the "
    "archive (or its archived source differs).",
    "The closure is the set of modules a re-run will import; one "
    "missing or drifted member makes the preserved analysis "
    "unrunnable no matter how carefully the entry point was stored.",
    "``helpers.py`` reachable from ``analyze()`` but absent from the "
    "archive catalogue",
)

RULE_CLOSURE_UNARCHIVED_TAG = register_rule(
    "DAS209", "closure-unarchived-conditions-tag", Severity.ERROR,
    "flow",
    "A conditions global tag used by the closure has no archived "
    "snapshot.",
    "Code that asks for a global tag needs the tag's payloads at "
    "re-run time; preserving the code without the conditions snapshot "
    "preserves a question without its answer.",
    "``global_tag='GT-FINAL'`` with no snapshot for GT-FINAL stored",
)

RULE_CLOSURE_UNREGISTERED = register_rule(
    "DAS210", "closure-unregistered-analysis", Severity.WARNING,
    "flow",
    "An Analysis in the extracted closure is not registered in the "
    "analysis repository.",
    "An analysis that exists only as archived source is invisible to "
    "the catalogue every re-analysis request goes through; it is "
    "preserved but undiscoverable.",
    "a plugin class whose metadata name is absent from the repository",
)

RULE_CLOSURE_NO_REFERENCE = register_rule(
    "DAS211", "closure-missing-reference-data", Severity.INFO, "flow",
    "A closure analysis books histograms but the repository holds no "
    "reference data for it.",
    "Preserved measurements are validated by comparison; without "
    "reference data the booked histograms can be regenerated but "
    "never checked against the publication.",
    "``book('mass', ...)`` with ``repository.reference(name) is None``",
)

RULE_RECAST_OUTSIDE_CLOSURE = register_rule(
    "DAS212", "recast-outside-closure", Severity.WARNING, "flow",
    "A RECAST signal-region mapping targets an analysis outside the "
    "extracted closure.",
    "The catalogue promises a re-interpretation through an analysis "
    "whose code is not part of the preserved closure; the request "
    "will fail at exactly the moment someone cares.",
    "a mapping to ``TOY_2013_I0042`` when the closure preserves only "
    "``TOY_2013_I0007``",
)
