"""The module/import graph over a preserved source tree.

Modules are discovered from the filesystem, named by their dotted path,
and linked by the imports their ASTs declare — including imports inside
function bodies, since those execute (and therefore matter for the
dependency closure) just the same. Nothing is imported or executed.

The *anchor* of a tree is the directory module names are computed
from. For a package (directories carrying ``__init__.py``) the anchor
is the parent of the topmost package directory, so absolute imports
inside the package (``from repro.kinematics import ...``) resolve to
tree members. For a plain directory of scripts the anchor is the
directory itself.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.pycheck import _ImportMap


@dataclass(frozen=True)
class ModuleNode:
    """One Python module in the tree."""

    name: str
    path: str  # POSIX path relative to the anchor
    source: str
    source_digest: str  # SHA-256 of the source bytes
    imports: tuple[tuple[str, int], ...]  # (absolute dotted, line)
    internal_imports: tuple[str, ...] = ()
    external_imports: tuple[str, ...] = ()
    unresolved_imports: tuple[tuple[str, int], ...] = ()
    parse_error: str = ""

    @property
    def package(self) -> str:
        """The dotted package relative imports resolve against."""
        if self.path.endswith("__init__.py"):
            return self.name
        return self.name.rpartition(".")[0]


@dataclass
class ModuleGraph:
    """All modules under one anchor plus their import edges."""

    anchor: Path
    modules: dict[str, ModuleNode] = field(default_factory=dict)
    #: Modules the caller actually asked about (a single-file target
    #: scans its whole package for resolution but targets one module).
    targets: tuple[str, ...] = ()

    def internal_closure(self, start: list[str]) -> list[str]:
        """Modules transitively reachable from ``start`` via imports."""
        seen: set[str] = set()
        frontier = [name for name in start if name in self.modules]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for imported in self.modules[name].internal_imports:
                if imported not in seen:
                    frontier.append(imported)
        return sorted(seen)

    def resolve_module(self, dotted: str) -> str | None:
        """Longest prefix of ``dotted`` that names a tree module."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None


def _find_anchor(root: Path) -> Path:
    """The directory module names are computed from (see module doc)."""
    directory = root if root.is_dir() else root.parent
    if not (directory / "__init__.py").is_file():
        return directory
    while ((directory.parent / "__init__.py").is_file()
           and directory.parent != directory):
        directory = directory.parent
    return directory.parent


def _module_name(relative: Path) -> str:
    """Dotted module name of one source file under the anchor."""
    parts = list(relative.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]  # strip .py
    return ".".join(parts)


def _collect_imports(module: ast.Module, package: str
                     ) -> list[tuple[str, int, bool, bool]]:
    """Every import: (absolute dotted, line, resolved, candidate).

    ``resolved`` is False for relative imports the package context
    cannot absolutise — those become DAS207 material downstream.
    ``candidate`` marks from-import names that may be submodules and
    only count when a tree module of that exact name exists.
    """
    imports: list[tuple[str, int, bool, bool]] = []
    scratch = _ImportMap(package=package)
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append((alias.name, node.lineno, True, False))
        elif isinstance(node, ast.ImportFrom):
            base = scratch._absolute_base(node.module, node.level)
            if base is None:
                rendered = "." * node.level + (node.module or "")
                imports.append((rendered, node.lineno, False, False))
            else:
                imports.append((base, node.lineno, True, False))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # ``from pkg import mod`` may name a *submodule* —
                    # a candidate only counted when a tree module of
                    # exactly that name exists.
                    imports.append((f"{base}.{alias.name}",
                                    node.lineno, True, True))
    return imports


def build_module_graph(root: str | Path) -> ModuleGraph:
    """Scan a file or directory target into a :class:`ModuleGraph`."""
    root = Path(root).resolve()
    anchor = _find_anchor(root)
    graph = ModuleGraph(anchor=anchor)
    records: list[tuple[str, Path, str, str, list, str]] = []
    for path in sorted(anchor.rglob("*.py")):
        relative = path.relative_to(anchor)
        name = _module_name(relative)
        if not name:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            records.append((name, relative, "", "", [],
                            f"source unreadable: {exc}"))
            continue
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        package = (name if relative.name == "__init__.py"
                   else name.rpartition(".")[0])
        try:
            module = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            records.append((name, relative, source, digest, [],
                            f"source does not parse: {exc.msg}"))
            continue
        records.append((name, relative, source, digest,
                        _collect_imports(module, package), ""))

    known = {name for name, *_ in records}

    def longest_prefix(dotted: str) -> str | None:
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in known:
                return candidate
        return None

    for name, relative, source, digest, imports, error in records:
        internal: list[str] = []
        external: list[str] = []
        unresolved: list[tuple[str, int]] = []
        raw: list[tuple[str, int]] = []
        for dotted, line, resolved, candidate in imports:
            if candidate:
                # Submodule candidates only count on an exact match;
                # the base import already covers the other cases.
                if dotted in known and dotted != name:
                    raw.append((dotted, line))
                    internal.append(dotted)
                continue
            raw.append((dotted, line))
            if not resolved:
                unresolved.append((dotted, line))
                continue
            member = longest_prefix(dotted)
            if member is not None and member != name:
                internal.append(member)
            elif member is None:
                external.append(dotted)
        graph.modules[name] = ModuleNode(
            name=name,
            path=relative.as_posix(),
            source=source,
            source_digest=digest,
            imports=tuple(sorted(set(raw))),
            internal_imports=tuple(sorted(set(internal))),
            external_imports=tuple(sorted(set(external))),
            unresolved_imports=tuple(sorted(set(unresolved))),
            parse_error=error,
        )

    if root.is_file():
        target = _module_name(root.relative_to(anchor))
        graph.targets = (target,) if target in graph.modules else ()
    else:
        prefix = root.relative_to(anchor).as_posix()
        graph.targets = tuple(sorted(
            name for name, node in graph.modules.items()
            if prefix in ("", ".") or node.path.startswith(prefix + "/")
            or node.path == prefix
        ))
    return graph
