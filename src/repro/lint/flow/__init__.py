"""``repro.lint.flow`` — the interprocedural (deep) analysis layer.

Where ``repro.lint.pycheck`` inspects one file one statement at a
time, this package reasons over a whole source tree: a module/import
graph (:mod:`modgraph`), a per-function call graph (:mod:`callgraph`),
taint propagation that carries impurity facts to ``Analysis`` entry
points (:mod:`taint`, rules ``DAS201``–``DAS207``), and a static
dependency-closure extractor whose deterministic manifest is checked
against the archive and the catalogues (:mod:`closure`,
:mod:`manifest`, rules ``DAS208``–``DAS212``).
"""

from repro.lint.flow.callgraph import (
    ANALYSIS_ENTRY_METHODS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    analyze_tree,
    build_call_graph,
)
from repro.lint.flow.closure import (
    extract_closure,
    extract_closure_from_graph,
)
from repro.lint.flow.manifest import (
    ClosureManifest,
    archive_closure_sources,
    check_manifest_against_archive,
    check_manifest_against_recast,
    check_manifest_against_repository,
    source_module_payload,
)
from repro.lint.flow.modgraph import (
    ModuleGraph,
    ModuleNode,
    build_module_graph,
)
from repro.lint.flow.taint import (
    TaintFact,
    TaintKind,
    TaintTrace,
    deep_findings,
    direct_facts,
    lint_tree_deep,
    trace_from,
)

__all__ = [
    "ANALYSIS_ENTRY_METHODS",
    "CallGraph",
    "ClassInfo",
    "ClosureManifest",
    "FunctionInfo",
    "ModuleGraph",
    "ModuleNode",
    "TaintFact",
    "TaintKind",
    "TaintTrace",
    "analyze_tree",
    "archive_closure_sources",
    "build_call_graph",
    "build_module_graph",
    "check_manifest_against_archive",
    "check_manifest_against_recast",
    "check_manifest_against_repository",
    "deep_findings",
    "direct_facts",
    "extract_closure",
    "extract_closure_from_graph",
    "lint_tree_deep",
    "source_module_payload",
    "trace_from",
]
