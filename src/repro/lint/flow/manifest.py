"""The closure manifest: serialisation and archive/catalog checks.

A :class:`ClosureManifest` is the lint-enforced artifact DASPOS-style
preservation needs: the *declared* dependency closure of an analysis,
written as deterministic JSON (two extractions of the same tree are
byte-identical), checked against what the archive *actually* holds.

Checks read archive directories the way the rest of the linter does —
straight from ``catalogue.json`` and the blob files, tolerating every
kind of damage and reporting findings instead of raising.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.canonical import canonical_document
from repro.errors import PreservationError
from repro.lint.findings import Finding
from repro.lint.flow.rules import (
    RULE_CLOSURE_NO_REFERENCE,
    RULE_CLOSURE_UNARCHIVED_MODULE,
    RULE_CLOSURE_UNARCHIVED_TAG,
    RULE_CLOSURE_UNREGISTERED,
    RULE_CLOSURE_UNRESOLVED,
    RULE_RECAST_OUTSIDE_CLOSURE,
)

MANIFEST_FORMAT = "repro-closure-manifest"
SOURCE_MODULE_FORMAT = "repro-source-module"
_SNAPSHOT_FORMAT = "repro-conditions-snapshot"


@dataclass(frozen=True)
class ClosureManifest:
    """The statically extracted dependency closure of a source tree."""

    root: str
    analyses: list = field(default_factory=list)
    functions: tuple[str, ...] = ()
    modules: tuple[dict, ...] = ()
    external_modules: tuple[str, ...] = ()
    conditions_tags: tuple[str, ...] = ()
    unresolved_imports: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Serialise; every collection is sorted on the way in."""
        return {
            "format": MANIFEST_FORMAT,
            "version": 1,
            "root": self.root,
            "analyses": list(self.analyses),
            "functions": list(self.functions),
            "modules": [dict(m) for m in self.modules],
            "external_modules": list(self.external_modules),
            "conditions_tags": list(self.conditions_tags),
            "unresolved_imports": list(self.unresolved_imports),
        }

    def to_json_bytes(self) -> bytes:
        """Deterministic bytes: sorted keys, fixed indent, one LF."""
        return canonical_document(self.to_dict())

    @classmethod
    def from_dict(cls, record: dict) -> "ClosureManifest":
        """Inverse of :meth:`to_dict`, with format validation."""
        if record.get("format") != MANIFEST_FORMAT:
            raise PreservationError(
                f"not a closure manifest: "
                f"format={record.get('format')!r}"
            )
        return cls(
            root=str(record.get("root", "")),
            analyses=list(record.get("analyses", [])),
            functions=tuple(record.get("functions", ())),
            modules=tuple(dict(m) for m in record.get("modules", ())),
            external_modules=tuple(record.get("external_modules", ())),
            conditions_tags=tuple(record.get("conditions_tags", ())),
            unresolved_imports=tuple(
                record.get("unresolved_imports", ())),
        )

    def analysis_names(self) -> list[str]:
        """Metadata names of the closure's analyses (falls back to
        class names for analyses without extractable metadata)."""
        return sorted({(a.get("name") or a.get("class", ""))
                       for a in self.analyses} - {""})


def source_module_payload(module: str, source: str) -> dict:
    """The archive payload preserving one closure module's source."""
    return {
        "format": SOURCE_MODULE_FORMAT,
        "module": module,
        "source": source,
        "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
    }


def archive_closure_sources(archive, graph) -> list:
    """Store every internal module of a call graph into an archive.

    Returns the catalogue entries, one per module. A convenience for
    building fixtures and real preservation flows alike: the stored
    payloads are exactly what :func:`check_manifest_against_archive`
    looks for.
    """
    from repro.core.metadata import PreservationMetadata

    entries = []
    for name, node in sorted(graph.modules.modules.items()):
        metadata = PreservationMetadata.build(
            title=f"source module {name}",
            creator="repro.lint.flow",
            experiment="TOY",
            created="2013-01-01",
            artifact_format="python-source",
            size_bytes=len(node.source.encode("utf-8")),
            checksum=node.source_digest,
            producer="closure-extractor",
            access_policy="public",
        )
        entries.append(archive.store(
            source_module_payload(name, node.source),
            kind="source-module", metadata=metadata,
        ))
    return entries


def _read_archive_holdings(directory: Path) -> tuple[dict, set, str]:
    """(module -> source sha256, snapshot tags, error) of a directory.

    Reads the catalogue and blob files directly — a damaged archive
    yields partial holdings, never an exception, so every missing
    member is reported as the finding it is.
    """
    catalogue_path = directory / "catalogue.json"
    try:
        catalogue = json.loads(
            catalogue_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return {}, set(), f"archive catalogue unreadable: {exc}"
    modules: dict[str, str] = {}
    tags: set[str] = set()
    blobs = directory / "blobs"
    for entry in catalogue.get("entries", []):
        digest = str(entry.get("digest", ""))
        try:
            payload = json.loads(
                (blobs / digest).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue  # missing/corrupt blob: simply not a holding
        if not isinstance(payload, dict):
            continue
        if payload.get("format") == SOURCE_MODULE_FORMAT:
            source = str(payload.get("source", ""))
            modules[str(payload.get("module", ""))] = (
                hashlib.sha256(source.encode("utf-8")).hexdigest())
        elif (payload.get("schema", {}).get("format")
                == _SNAPSHOT_FORMAT):
            tags.add(str(payload.get("global_tag", "")))
    return modules, tags, ""


def check_manifest_against_archive(manifest: ClosureManifest,
                                   directory: str | Path
                                   ) -> list[Finding]:
    """DAS207/DAS208/DAS209 for one manifest against one archive."""
    directory = Path(directory)
    archived, tags, error = _read_archive_holdings(directory)
    if error:
        return [RULE_CLOSURE_UNARCHIVED_MODULE.finding(
            error, artifact=manifest.root,
            file=str(directory / "catalogue.json"),
        )]
    findings: list[Finding] = []
    for module in manifest.modules:
        name = module["module"]
        held = archived.get(name)
        if held is None:
            findings.append(RULE_CLOSURE_UNARCHIVED_MODULE.finding(
                f"closure module {name!r} ({module['path']}) is not "
                f"archived",
                artifact=manifest.root, file=module["path"],
            ))
        elif held != module["sha256"]:
            findings.append(RULE_CLOSURE_UNARCHIVED_MODULE.finding(
                f"closure module {name!r} is archived but its source "
                f"differs from the tree "
                f"({held[:12]}... != {module['sha256'][:12]}...)",
                artifact=manifest.root, file=module["path"],
            ))
    for tag in manifest.conditions_tags:
        if tag not in tags:
            findings.append(RULE_CLOSURE_UNARCHIVED_TAG.finding(
                f"conditions tag {tag!r} used by the closure has no "
                f"archived snapshot",
                artifact=manifest.root,
            ))
    for rendered in manifest.unresolved_imports:
        findings.append(RULE_CLOSURE_UNRESOLVED.finding(
            f"closure contains unresolved import {rendered!r}; the "
            f"manifest under-reports the true dependency set",
            artifact=manifest.root,
        ))
    return findings


def check_manifest_against_repository(manifest: ClosureManifest,
                                      repository) -> list[Finding]:
    """DAS210/DAS211 for one manifest against an analysis repository."""
    from repro.lint.findings import Severity

    findings: list[Finding] = []
    for analysis in manifest.analyses:
        name = analysis.get("name", "")
        label = analysis.get("class", name)
        if not name:
            # The metadata name is built dynamically; registration
            # cannot be verified statically — note it, don't warn.
            findings.append(RULE_CLOSURE_UNREGISTERED.finding(
                f"closure analysis {label!r} has a dynamic metadata "
                f"name; registration in {repository.name!r} cannot "
                f"be verified statically",
                artifact=label, severity=Severity.INFO,
            ))
            continue
        if name not in repository:
            findings.append(RULE_CLOSURE_UNREGISTERED.finding(
                f"closure analysis {label!r} "
                f"(metadata name {name!r}) is not registered in "
                f"repository {repository.name!r}",
                artifact=label,
            ))
            continue
        if analysis.get("booked_keys") and \
                repository.reference(name) is None:
            findings.append(RULE_CLOSURE_NO_REFERENCE.finding(
                f"closure analysis {name!r} books "
                f"{len(analysis['booked_keys'])} histogram(s) but the "
                f"repository holds no reference data for it",
                artifact=name,
            ))
    return findings


def check_manifest_against_recast(manifest: ClosureManifest,
                                  signal_regions: dict
                                  ) -> list[Finding]:
    """DAS212: every bridge mapping must stay inside the closure."""
    names = set(manifest.analysis_names())
    findings: list[Finding] = []
    for analysis_id in sorted(signal_regions):
        region = signal_regions[analysis_id]
        if region.analysis_name not in names:
            findings.append(RULE_RECAST_OUTSIDE_CLOSURE.finding(
                f"search {analysis_id!r} maps to RIVET analysis "
                f"{region.analysis_name!r} which is outside the "
                f"preserved closure",
                artifact=analysis_id,
            ))
    return findings
