"""Per-module extraction of parallel/columnar safety facts.

The flow layer's call graph answers *who calls whom*; this scan
answers *what each function does that a pool must care about*: writes
to shared state, undisciplined randomness, in-place mutation of
caller-owned arrays, order-sensitive float accumulation, equivalence
tier declarations, and the dispatch sites that hand workers to a pool
(:mod:`repro.runtime.workers`). Nothing is imported or executed;
facts are attached to the same ``module:func`` /
``module:Class.method`` qualnames the call graph uses so the analysis
layer can carry them along call edges.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field

from repro.columnar.tiers import EQUIVALENCE_TIERS
from repro.lint.flow.callgraph import _MUTATOR_METHODS, _ModuleScan
from repro.lint.pycheck import _NUMPY_RANDOM_SAFE, _dotted_name
from repro.runtime.workers import WorkerDispatch, dispatch_for

#: Constructors that start a random stream (seed analysis applies).
_RNG_CONSTRUCTORS = {"default_rng", "Random", "RandomState", "Generator",
                     "PCG64", "Philox", "SeedSequence"}

#: Callables whose presence in a seed expression marks it as derived.
_SEED_DERIVERS = {"derive_seed", "batch_stream", "spawn"}

#: Method names that draw from (i.e. advance) a random stream.
_RNG_DRAW_METHODS = {
    "normal", "standard_normal", "uniform", "random", "integers",
    "choice", "shuffle", "permutation", "poisson", "exponential",
    "binomial", "gauss", "randint", "rand", "randn", "random_sample",
}

#: Array methods returning views into the receiver's buffer.
_VIEW_METHODS = {"reshape", "ravel", "view", "transpose", "swapaxes",
                 "squeeze", "diagonal"}

#: numpy-level functions returning views (or no-copy passthroughs).
_VIEW_FUNCTIONS = {"asarray", "ravel", "transpose", "atleast_1d",
                   "squeeze", "broadcast_to"}

#: Methods where writes to ``self`` are construction, not mutation.
_CONSTRUCTOR_METHODS = {"__init__", "__post_init__", "__new__",
                        "__setstate__", "__init_subclass__"}


class ParFactKind(enum.Enum):
    """The hazard families the par pass knows about."""

    GLOBAL_WRITE = "global-write"
    STATE_MUTATION = "state-mutation"
    SELF_WRITE = "self-write"
    SHARED_RNG = "shared-rng"
    UNDERIVED_SEED = "underived-seed"
    INPLACE_PARAM = "inplace-param"
    RETURNS_VIEW = "returns-view"
    ARG_ATTR_WRITE = "arg-attr-write"
    RNG_DRAW = "rng-draw"
    ORDER_SENSITIVE = "order-sensitive"


@dataclass(frozen=True)
class ParFact:
    """One direct hazard inside one function."""

    kind: ParFactKind
    description: str
    line: int


@dataclass(frozen=True)
class TierDecl:
    """One valid ``@equivalence_tier(...)`` declaration."""

    qualname: str
    tier: str
    line: int


@dataclass(frozen=True)
class DispatchSite:
    """One call handing a worker callable to a registered pool."""

    module: str
    dispatcher: str
    line: int
    caller: str  # qualname of the enclosing function (or pseudo-node)
    worker: ast.expr
    class_name: str | None
    nested_names: frozenset[str]
    #: Simple local bindings of the enclosing scope (``name = expr``),
    #: so ``worker = partial(f, ...); parallel_map(worker, ...)``
    #: resolves through the intermediate name.
    bindings: dict = field(default_factory=dict)


@dataclass
class ModuleParScan:
    """Everything the par pass extracted from one module."""

    module: str
    facts: dict[str, tuple[ParFact, ...]] = field(default_factory=dict)
    tiers: dict[str, TierDecl] = field(default_factory=dict)
    #: Invalid declarations: (qualname, line, problem).
    tier_errors: tuple[tuple[str, int, str], ...] = ()
    sites: tuple[DispatchSite, ...] = ()


def _root_name(expr: ast.expr) -> str | None:
    """The base ``Name`` an attribute/subscript chain hangs off."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _own_params(funcdef) -> list[str]:
    args = funcdef.args
    names = [p.arg for p in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _walk_with_loops(node: ast.AST, in_loop: bool = False):
    """``ast.walk`` that remembers whether a node repeats in a loop."""
    yield node, in_loop
    inside = in_loop or isinstance(node, (ast.For, ast.AsyncFor,
                                          ast.While))
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_loops(child, inside)


def _has_slice(subscript: ast.Subscript) -> bool:
    index = subscript.slice
    if isinstance(index, ast.Slice):
        return True
    return (isinstance(index, ast.Tuple)
            and any(isinstance(e, ast.Slice) for e in index.elts))


def _seed_is_derived(call: ast.Call, params: set[str]) -> bool:
    """Does any seed argument trace back to a derived stream?

    A seed expression counts as derived when it contains a call to a
    ``derive_seed``-family helper, a reference to one of the
    function's own parameters (the seed flows in from the dispatcher),
    or an attribute read (configuration/state the caller owns).
    """
    exprs = list(call.args) + [kw.value for kw in call.keywords]
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                dotted = _dotted_name(sub.func)
                if (dotted is not None and
                        dotted.rpartition(".")[2] in _SEED_DERIVERS):
                    return True
            elif isinstance(sub, ast.Name) and sub.id in params:
                return True
            elif isinstance(sub, ast.Attribute):
                return True
    return False


class _FunctionFacts:
    """Direct-hazard extraction over one function definition."""

    def __init__(self, scan: _ModuleScan, funcdef,
                 class_name: str | None) -> None:
        self.scan = scan
        self.funcdef = funcdef
        self.class_name = class_name
        self.constructing = (class_name is not None
                            and funcdef.name in _CONSTRUCTOR_METHODS)
        # Parameters of the function *and* of its nested defs/lambdas:
        # a nested helper mutating its own parameter almost always
        # received the enclosing function's array.
        params = set(_own_params(funcdef))
        for sub in ast.walk(funcdef):
            if sub is not funcdef and isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda)):
                params.update(_own_params(sub))
        params.discard("self")
        params.discard("cls")
        self.params = params
        self.globals_: set[str] = {
            name for node in ast.walk(funcdef)
            if isinstance(node, ast.Global) for name in node.names}
        self.facts: list[ParFact] = []

    def _add(self, kind: ParFactKind, description: str,
             line: int) -> None:
        self.facts.append(ParFact(kind=kind, description=description,
                                  line=line))

    def run(self) -> tuple[ParFact, ...]:
        for node, in_loop in _walk_with_loops(self.funcdef):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                self._scan_store(node, in_loop)
            elif isinstance(node, ast.Call):
                self._scan_call(node, in_loop)
            elif isinstance(node, ast.Return):
                self._scan_return(node)
        return tuple(sorted(
            set(self.facts),
            key=lambda f: (f.line, f.kind.value, f.description)))

    # -- stores --------------------------------------------------------

    def _scan_store(self, node, in_loop: bool) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        augmented = isinstance(node, ast.AugAssign)
        if (augmented and isinstance(node.op, (ast.Add, ast.Sub))
                and in_loop):
            self._add(ParFactKind.ORDER_SENSITIVE,
                      "a loop-carried float accumulation "
                      "(chunking-dependent reduction order)",
                      node.lineno)
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.globals_:
                    self._add(ParFactKind.GLOBAL_WRITE,
                              f"a write to module-level name "
                              f"{target.id!r}", node.lineno)
                elif augmented and target.id in self.params:
                    self._add(ParFactKind.INPLACE_PARAM,
                              f"an augmented assignment to parameter "
                              f"{target.id!r}", node.lineno)
            elif isinstance(target, ast.Subscript):
                root = _root_name(target.value)
                if root == "self" and not self.constructing:
                    if self.class_name is not None:
                        self._add(ParFactKind.SELF_WRITE,
                                  "an item write into instance state "
                                  f"of {self.class_name!r}",
                                  node.lineno)
                elif root in self.params:
                    self._add(ParFactKind.INPLACE_PARAM,
                              f"an item/slice assignment into "
                              f"parameter {root!r}", node.lineno)
                elif root in self.scan.mutable_names:
                    self._add(ParFactKind.STATE_MUTATION,
                              f"an item write into module-level "
                              f"container {root!r}", node.lineno)
            elif isinstance(target, ast.Attribute):
                root = _root_name(target.value)
                if root == "self" and not self.constructing:
                    if self.class_name is not None:
                        self._add(ParFactKind.SELF_WRITE,
                                  f"a write to instance attribute "
                                  f"self.{target.attr}", node.lineno)
                elif root in self.params:
                    self._add(ParFactKind.ARG_ATTR_WRITE,
                              f"a write to attribute "
                              f"{root}.{target.attr} of a parameter",
                              node.lineno)

    # -- calls ---------------------------------------------------------

    def _scan_call(self, node: ast.Call, in_loop: bool) -> None:
        dotted = _dotted_name(node.func)
        resolved = (self.scan.imports.resolve(dotted)
                    if dotted is not None else None)
        if isinstance(node.func, ast.Attribute):
            self._scan_method_call(node)
        if resolved is not None:
            self._scan_rng(node, resolved)
        if (isinstance(node.func, ast.Name) and node.func.id == "sum"
                and self.scan.imports.alias_target("sum") is None):
            self._add(ParFactKind.ORDER_SENSITIVE,
                      "a builtin sum() reduction (use math.fsum or a "
                      "whole-array reduction for a fixed order)",
                      node.lineno)
        for keyword in node.keywords:
            if keyword.arg == "out":
                root = _root_name(keyword.value)
                if root in self.params:
                    self._add(ParFactKind.INPLACE_PARAM,
                              f"an out={root} aimed at a parameter",
                              node.lineno)

    def _scan_method_call(self, node: ast.Call) -> None:
        method = node.func.attr
        root = _root_name(node.func.value)
        if method in _MUTATOR_METHODS:
            if root == "self" and not self.constructing:
                if self.class_name is not None:
                    self._add(ParFactKind.SELF_WRITE,
                              f"a mutating .{method}() call on "
                              f"instance state", node.lineno)
            elif root in self.params:
                self._add(ParFactKind.INPLACE_PARAM,
                          f"a mutating .{method}() call on parameter "
                          f"{root!r}", node.lineno)
            elif (isinstance(node.func.value, ast.Name)
                  and root in self.scan.mutable_names):
                self._add(ParFactKind.STATE_MUTATION,
                          f"a mutating {root}.{method}() call on a "
                          f"module-level container", node.lineno)
        if method in _RNG_DRAW_METHODS and root is not None:
            self._add(ParFactKind.RNG_DRAW,
                      f"a random draw via .{method}()", node.lineno)

    def _scan_rng(self, node: ast.Call, resolved: str) -> None:
        base = resolved.rpartition(".")[2]
        if resolved == "random.Random" or (
                resolved.startswith("numpy.random.")
                and (base in _RNG_CONSTRUCTORS
                     or base in _NUMPY_RANDOM_SAFE)):
            if not node.args and not node.keywords:
                self._add(ParFactKind.UNDERIVED_SEED,
                          f"an RNG constructed without a seed "
                          f"({resolved}())", node.lineno)
            elif not _seed_is_derived(node, self.params):
                self._add(ParFactKind.UNDERIVED_SEED,
                          f"an RNG seeded from a constant, not a "
                          f"derive_seed(...)-derived argument "
                          f"({resolved}(...))", node.lineno)
            return
        if resolved.startswith("random."):
            self._add(ParFactKind.SHARED_RNG,
                      f"a draw from the process-global stream "
                      f"{resolved}()", node.lineno)
        elif (resolved.startswith("numpy.random.")
              and base != "default_rng"):
            self._add(ParFactKind.SHARED_RNG,
                      f"a draw from the legacy global stream "
                      f"{resolved}()", node.lineno)

    # -- returns -------------------------------------------------------

    def _scan_return(self, node: ast.Return) -> None:
        value = node.value
        if value is None:
            return
        if (isinstance(value, ast.Attribute) and value.attr == "T"
                and _root_name(value.value) in self.params):
            self._add(ParFactKind.RETURNS_VIEW,
                      "a .T transpose view of a parameter returned",
                      node.lineno)
        elif (isinstance(value, ast.Subscript) and _has_slice(value)
              and _root_name(value.value) in self.params):
            self._add(ParFactKind.RETURNS_VIEW,
                      f"a slice view of parameter "
                      f"{_root_name(value.value)!r} returned",
                      node.lineno)
        elif isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if (isinstance(value.func, ast.Attribute)
                    and value.func.attr in _VIEW_METHODS
                    and _root_name(value.func.value) in self.params):
                self._add(ParFactKind.RETURNS_VIEW,
                          f"a .{value.func.attr}() view of a "
                          f"parameter returned", node.lineno)
            elif (dotted is not None
                  and dotted.rpartition(".")[2] in _VIEW_FUNCTIONS
                  and len(value.args) >= 1
                  and isinstance(value.args[0], ast.Name)
                  and value.args[0].id in self.params):
                self._add(ParFactKind.RETURNS_VIEW,
                          f"a no-copy {dotted}() passthrough of a "
                          f"parameter returned", node.lineno)


def _tier_of(funcdef) -> tuple[str | None, int | None, str | None]:
    """(tier, decorator line, problem) of a tier-decorated function."""
    for decorator in funcdef.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        dotted = _dotted_name(decorator.func)
        if dotted is None or (dotted.rpartition(".")[2]
                              != "equivalence_tier"):
            continue
        if (decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)):
            tier = decorator.args[0].value
            if tier in EQUIVALENCE_TIERS:
                return tier, decorator.lineno, None
            return None, decorator.lineno, (
                f"unknown tier {tier!r} (expected one of "
                f"{', '.join(EQUIVALENCE_TIERS)})")
        return None, decorator.lineno, (
            "tier is not a string constant; a computed tier declares "
            "nothing checkable")
    return None, None, None


class _SiteCollector:
    """Dispatch-site extraction inside one function (or module) body."""

    def __init__(self, module: str, caller: str,
                 class_name: str | None, body) -> None:
        self.module = module
        self.caller = caller
        self.class_name = class_name
        self.body = body
        self.nested = frozenset(
            sub.name for stmt in body for sub in ast.walk(stmt)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)))
        # Last simple ``name = expr`` binding per local name: worker
        # callables are routinely built a line above the dispatch call.
        self.bindings: dict[str, ast.expr] = {}
        for stmt in body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Name)):
                    self.bindings[sub.targets[0].id] = sub.value

    def collect(self) -> list[DispatchSite]:
        sites: list[DispatchSite] = []
        for stmt in self.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                dispatch = dispatch_for(dotted)
                if dispatch is None:
                    continue
                worker = _worker_argument(node, dispatch)
                if worker is None:
                    continue
                sites.append(DispatchSite(
                    module=self.module, dispatcher=dispatch.name,
                    line=node.lineno, caller=self.caller,
                    worker=worker, class_name=self.class_name,
                    nested_names=self.nested,
                    bindings=self.bindings))
        return sites


def _worker_argument(call: ast.Call,
                     dispatch: WorkerDispatch) -> ast.expr | None:
    """The expression travelling in the dispatcher's worker slot."""
    if len(call.args) > dispatch.arg_position:
        return call.args[dispatch.arg_position]
    for keyword in call.keywords:
        if keyword.arg == dispatch.keyword:
            return keyword.value
    return None


def scan_par_module(module: str, scan: _ModuleScan) -> ModuleParScan:
    """Extract every par-relevant fact from one scanned module."""
    result = ModuleParScan(module=module)
    tier_errors: list[tuple[str, int, str]] = []
    sites: list[DispatchSite] = []

    def scan_function(qualname: str, funcdef,
                      class_name: str | None) -> None:
        facts = _FunctionFacts(scan, funcdef, class_name).run()
        if facts:
            result.facts[qualname] = facts
        tier, line, problem = _tier_of(funcdef)
        if problem is not None:
            tier_errors.append((qualname, line, problem))
        elif tier is not None:
            result.tiers[qualname] = TierDecl(
                qualname=qualname, tier=tier, line=funcdef.lineno)
        sites.extend(_SiteCollector(module, qualname, class_name,
                                    funcdef.body).collect())

    for name, funcdef in sorted(scan.function_defs.items()):
        scan_function(f"{module}:{name}", funcdef, None)
    for class_name, klass in sorted(scan.class_defs.items()):
        for stmt in klass.body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                scan_function(f"{module}:{class_name}.{stmt.name}",
                              stmt, class_name)
    module_body = [stmt for stmt in scan.tree.body
                   if not isinstance(stmt, (ast.FunctionDef,
                                            ast.AsyncFunctionDef,
                                            ast.ClassDef))]
    sites.extend(_SiteCollector(module, f"{module}:<module>", None,
                                module_body).collect())
    result.tier_errors = tuple(sorted(tier_errors))
    result.sites = tuple(sorted(
        sites, key=lambda s: (s.line, s.dispatcher, s.caller)))
    return result
