"""Concurrency & vectorisation safety analysis (DAS3xx).

The third static-analysis layer: closure/shared-state escape analysis
for pool workers, RNG-stream discipline, numpy aliasing/in-place
checks over columnar kernels, and order-sensitivity against declared
equivalence tiers. Built on the flow layer's module/call graphs; run
via ``repro lint --par`` (and as part of ``--deep``).
"""

from repro.lint.par.analysis import lint_tree_par, par_findings
from repro.lint.par.scan import (
    DispatchSite,
    ModuleParScan,
    ParFact,
    ParFactKind,
    TierDecl,
    scan_par_module,
)

__all__ = [
    "DispatchSite",
    "ModuleParScan",
    "ParFact",
    "ParFactKind",
    "TierDecl",
    "lint_tree_par",
    "par_findings",
    "scan_par_module",
]
