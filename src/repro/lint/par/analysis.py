"""Worker reachability and kernel-contract checks (DAS301–DAS312).

The scan layer attaches direct hazards to functions; this layer asks
the two questions the parallel contract cares about:

*Can a pool worker reach that hazard?* Worker roots are resolved from
every dispatch site (:mod:`repro.runtime.workers`) in the target
modules — through ``functools.partial`` wrappers and lambda bodies —
then hazards are propagated backwards along the call graph's resolved
edges. Edges into ``module:<module>`` pseudo-nodes are deliberately
*not* followed: import-time initialisation is serialised by the import
lock and already policed by DAS006/DAS206, so a module-level registry
build is not a parallel hazard.

*Does a kernel honour its declared tier?* Functions carrying an
``@equivalence_tier(...)`` declaration are checked directly: no
in-place mutation or aliasing of caller buffers at any tier, no random
draws or order-sensitive reductions at the ``exact`` tier.

Findings carry the full shortest witness chain, like DAS2xx. Waivers
work the usual way: ``# lint: ignore[DAS3nn]`` at the hazard line
kills every chain through it, a waiver at the worker (or kernel)
definition line kills the finding itself. Unlike the deep pass,
chains of length one are reported — there is no shallow DAS3xx
equivalent to defer to.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, _GraphBuilder
from repro.lint.flow.modgraph import build_module_graph
from repro.lint.par.rules import (
    RULE_PAR_ARG_ATTR_WRITE,
    RULE_PAR_EXACT_RNG,
    RULE_PAR_GLOBAL_WRITE,
    RULE_PAR_INPLACE_PARAM,
    RULE_PAR_INVALID_TIER,
    RULE_PAR_ORDER_SENSITIVE,
    RULE_PAR_RETURNS_VIEW,
    RULE_PAR_SELF_WRITE,
    RULE_PAR_SHARED_RNG,
    RULE_PAR_STATE_MUTATION,
    RULE_PAR_UNDERIVED_SEED,
    RULE_PAR_UNPICKLABLE,
)
from repro.lint.par.scan import (
    DispatchSite,
    ModuleParScan,
    ParFact,
    ParFactKind,
    scan_par_module,
)
from repro.lint.pycheck import _dotted_name, _ignored_codes_by_line

#: Hazards that travel along call edges to a worker root.
_PROPAGATED = {
    ParFactKind.GLOBAL_WRITE: RULE_PAR_GLOBAL_WRITE,
    ParFactKind.STATE_MUTATION: RULE_PAR_STATE_MUTATION,
    ParFactKind.SELF_WRITE: RULE_PAR_SELF_WRITE,
    ParFactKind.SHARED_RNG: RULE_PAR_SHARED_RNG,
    ParFactKind.UNDERIVED_SEED: RULE_PAR_UNDERIVED_SEED,
    ParFactKind.INPLACE_PARAM: RULE_PAR_INPLACE_PARAM,
    ParFactKind.ARG_ATTR_WRITE: RULE_PAR_ARG_ATTR_WRITE,
}

#: Hazards checked directly on tier-declared kernels, at any tier.
_KERNEL_ANY_TIER = {
    ParFactKind.INPLACE_PARAM: RULE_PAR_INPLACE_PARAM,
    ParFactKind.ARG_ATTR_WRITE: RULE_PAR_ARG_ATTR_WRITE,
    ParFactKind.RETURNS_VIEW: RULE_PAR_RETURNS_VIEW,
}

#: Hazards that additionally break the ``exact`` tier's bit-identity.
_KERNEL_EXACT_TIER = {
    ParFactKind.RNG_DRAW: RULE_PAR_EXACT_RNG,
    ParFactKind.SHARED_RNG: RULE_PAR_EXACT_RNG,
    ParFactKind.ORDER_SENSITIVE: RULE_PAR_ORDER_SENSITIVE,
}

#: Every code a fact kind can surface as — a waiver at the fact line
#: naming any of them (or a bare marker) kills all chains through it.
_KIND_CODES = {
    ParFactKind.GLOBAL_WRITE: {"DAS301"},
    ParFactKind.STATE_MUTATION: {"DAS302"},
    ParFactKind.SELF_WRITE: {"DAS303"},
    ParFactKind.SHARED_RNG: {"DAS305", "DAS310"},
    ParFactKind.UNDERIVED_SEED: {"DAS306"},
    ParFactKind.INPLACE_PARAM: {"DAS307"},
    ParFactKind.RETURNS_VIEW: {"DAS308"},
    ParFactKind.ARG_ATTR_WRITE: {"DAS309"},
    ParFactKind.RNG_DRAW: {"DAS310"},
    ParFactKind.ORDER_SENSITIVE: {"DAS311"},
}


def _readable(qualname: str) -> str:
    return qualname.replace(":<module>", " (import)").replace(":", ".")


def _render_chain(chain: tuple[str, ...]) -> str:
    return " -> ".join(_readable(part) for part in chain)


class _ParAnalysis:
    """One par pass over one built call graph."""

    def __init__(self, graph: CallGraph,
                 builder: _GraphBuilder) -> None:
        self.graph = graph
        self.builder = builder
        self.waivers = {
            name: _ignored_codes_by_line(node.source)
            for name, node in graph.modules.modules.items()
            if not node.parse_error}
        self.par_scans: dict[str, ModuleParScan] = {
            name: scan_par_module(name, scan)
            for name, scan in sorted(builder.scans.items())}
        self.facts: dict[str, tuple[ParFact, ...]] = {}
        for name, par_scan in self.par_scans.items():
            for qualname, found in par_scan.facts.items():
                kept = tuple(
                    fact for fact in found
                    if not self._waived(name, fact.line,
                                        _KIND_CODES[fact.kind]))
                if kept:
                    self.facts[qualname] = kept
        self.findings: list[Finding] = []

    def _waived(self, module: str, line: int,
                codes: set[str]) -> bool:
        table = self.waivers.get(module, {})
        if line not in table:
            return False
        waived = table[line]
        return waived is None or bool(waived & codes)

    def _module_file(self, module: str) -> str:
        node = self.graph.modules.modules.get(module)
        return node.path if node is not None else module

    # -- worker roots --------------------------------------------------

    def _resolve_worker(self, site: DispatchSite
                        ) -> tuple[list[str], list[str]]:
        """(root qualnames, unpicklable worker descriptions)."""
        scan = self.builder.scans.get(site.module)
        roots: list[str] = []
        unpicklable: list[str] = []
        chased: set[str] = set()

        def resolve(expr: ast.expr) -> None:
            if isinstance(expr, ast.Lambda):
                unpicklable.append("a lambda")
                for sub in ast.walk(expr.body):
                    if isinstance(sub, ast.Call):
                        dotted = _dotted_name(sub.func)
                        if dotted is not None and scan is not None:
                            target = self.builder._resolve_call(
                                site.module, scan, dotted,
                                site.class_name)
                            if target is not None:
                                roots.append(target)
                return
            if isinstance(expr, ast.Call):
                dotted = _dotted_name(expr.func)
                if (dotted is not None
                        and dotted.rpartition(".")[2] == "partial"
                        and expr.args):
                    resolve(expr.args[0])
                return
            dotted = _dotted_name(expr)
            if dotted is None or scan is None:
                return
            if "." not in dotted and dotted in site.nested_names:
                unpicklable.append(
                    f"locally defined function {dotted!r}")
                return
            if ("." not in dotted and dotted in site.bindings
                    and dotted not in chased):
                chased.add(dotted)
                resolve(site.bindings[dotted])
                return
            target = self.builder._resolve_call(
                site.module, scan, dotted, site.class_name)
            if target is not None:
                roots.append(target)

        resolve(site.worker)
        return roots, unpicklable

    def _worker_roots(self) -> dict[str, list[DispatchSite]]:
        """Every resolved worker root in the target modules."""
        roots: dict[str, list[DispatchSite]] = {}
        for module in sorted(set(self.graph.modules.targets)):
            par_scan = self.par_scans.get(module)
            if par_scan is None:
                continue
            for site in par_scan.sites:
                resolved, unpicklable = self._resolve_worker(site)
                for description in unpicklable:
                    self._unpicklable_finding(site, description)
                for root in resolved:
                    roots.setdefault(root, []).append(site)
        for sites in roots.values():
            sites.sort(key=lambda s: (s.module, s.line, s.dispatcher))
        return roots

    def _unpicklable_finding(self, site: DispatchSite,
                             description: str) -> None:
        if self._waived(site.module, site.line,
                        {RULE_PAR_UNPICKLABLE.code}):
            return
        self.findings.append(RULE_PAR_UNPICKLABLE.finding(
            f"{site.dispatcher}() dispatches {description} as a "
            f"parallel worker; process pools cannot pickle it, so "
            f"the call dies under mode='process' only",
            artifact=_readable(site.caller),
            file=self._module_file(site.module), line=site.line,
        ))

    # -- propagation ---------------------------------------------------

    def _trace(self, root: str) -> dict[ParFactKind,
                                        tuple[ParFact, str]]:
        """Shortest (fact, holder chain) per hazard kind from a root.

        Deterministic breadth-first search over resolved call edges;
        ``module:<module>`` pseudo-nodes are not descended into (see
        module docstring).
        """
        traces: dict[ParFactKind, tuple[ParFact, tuple[str, ...]]] = {}
        seen = {root}
        queue: deque[tuple[str, tuple[str, ...]]] = deque(
            [(root, (root,))])
        while queue:
            current, chain = queue.popleft()
            for fact in self.facts.get(current, ()):
                if fact.kind not in traces:
                    traces[fact.kind] = (fact, chain)
            info = self.graph.functions.get(current)
            if info is None:
                continue
            for callee, _ in sorted(info.calls):
                if callee.endswith(":<module>") or callee in seen:
                    continue
                seen.add(callee)
                queue.append((callee, chain + (callee,)))
        return traces

    def _worker_findings(self) -> None:
        for root, sites in sorted(self._worker_roots().items()):
            info = self.graph.functions.get(root)
            if info is None:
                continue
            site = sites[0]
            traces = self._trace(root)
            for kind in sorted(traces, key=lambda k: k.value):
                rule = _PROPAGATED.get(kind)
                if rule is None:
                    continue
                fact, chain = traces[kind]
                if self._waived(info.module, info.lineno,
                                {rule.code}):
                    continue
                holder = self.graph.functions[chain[-1]]
                fact_file = self._module_file(holder.module)
                self.findings.append(rule.finding(
                    f"parallel worker {_readable(root)!r} "
                    f"(dispatched by {site.dispatcher}() at "
                    f"{self._module_file(site.module)}:{site.line}) "
                    f"reaches {fact.description} via "
                    f"{_render_chain(chain)} "
                    f"({fact_file}:{fact.line})",
                    artifact=_readable(root),
                    file=self._module_file(info.module),
                    line=info.lineno,
                ))

    # -- kernels -------------------------------------------------------

    def _kernel_findings(self) -> None:
        for module in sorted(set(self.graph.modules.targets)):
            par_scan = self.par_scans.get(module)
            if par_scan is None:
                continue
            file = self._module_file(module)
            for qualname, line, problem in par_scan.tier_errors:
                if self._waived(module, line,
                                {RULE_PAR_INVALID_TIER.code}):
                    continue
                self.findings.append(RULE_PAR_INVALID_TIER.finding(
                    f"equivalence-tier declaration on "
                    f"{_readable(qualname)!r}: {problem}",
                    artifact=_readable(qualname), file=file,
                    line=line,
                ))
            for qualname, decl in sorted(par_scan.tiers.items()):
                reported: set[str] = set()
                for fact in self.facts.get(qualname, ()):
                    rule = _KERNEL_ANY_TIER.get(fact.kind)
                    if rule is None and decl.tier == "exact":
                        rule = _KERNEL_EXACT_TIER.get(fact.kind)
                    if rule is None or rule.code in reported:
                        continue
                    reported.add(rule.code)
                    self.findings.append(rule.finding(
                        f"{decl.tier}-tier kernel "
                        f"{_readable(qualname)!r} has "
                        f"{fact.description} ({file}:{fact.line})",
                        artifact=_readable(qualname), file=file,
                        line=fact.line,
                    ))

    def run(self) -> list[Finding]:
        self._worker_findings()
        self._kernel_findings()
        return sorted(self.findings, key=Finding.sort_key)


def par_findings(graph: CallGraph) -> list[Finding]:
    """All DAS301–DAS312 findings for one analysed tree."""
    builder = _GraphBuilder(graph.modules)
    rebuilt = builder.build()
    return _ParAnalysis(rebuilt, builder).run()


def lint_tree_par(root) -> list[Finding]:
    """Run the parallel-safety pass over one file or directory."""
    builder = _GraphBuilder(build_module_graph(root))
    graph = builder.build()
    return _ParAnalysis(graph, builder).run()
