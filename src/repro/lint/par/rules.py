"""Rule registrations for the concurrency/vectorisation safety layer.

``DAS3xx`` codes are the third static-analysis pass. ``DAS0xx`` rules
inspect one statement, ``DAS2xx`` rules carry impurity facts to
``Analysis`` entry points; these rules reason about the *parallel
execution contract*: every callable statically reachable as a worker
of a registered dispatch point (:mod:`repro.runtime.workers`) must be
a pure function of its declared inputs, every columnar kernel must
honour the equivalence tier it declares
(:mod:`repro.columnar.tiers`), and no numpy kernel may mutate or
alias caller-owned buffers.

DAS301–DAS304 are the closure/shared-state escape rules, DAS305–306
the RNG-stream discipline, DAS307–309 the numpy aliasing/in-place
rules, DAS310–312 the order-sensitivity-versus-tier rules.
"""

from __future__ import annotations

from repro.lint.engine import register_rule
from repro.lint.findings import Severity

RULE_PAR_GLOBAL_WRITE = register_rule(
    "DAS301", "par-mutable-global-write", Severity.ERROR, "par",
    "A parallel worker reaches a write to a module-level name through "
    "its call graph.",
    "Workers run concurrently (thread mode) or in forked interpreters "
    "(process mode); a global written from a worker either races or "
    "silently diverges between the pool's copies and the driver's — "
    "the result depends on the ExecutionPolicy, which the scheduler "
    "contract forbids.",
    "a ``parallel_map`` worker doing ``global counter; counter += 1``",
)

RULE_PAR_STATE_MUTATION = register_rule(
    "DAS302", "par-module-state-mutation", Severity.ERROR, "par",
    "A parallel worker reaches a mutation of a module-level container "
    "through its call graph.",
    "An append/update on a module-scope dict or list is shared state "
    "in thread mode and worker-local (lost) state in process mode; "
    "either way the merged result depends on scheduling, not on the "
    "declared inputs.",
    "a worker helper appending results to a module-level ``_cache``",
)

RULE_PAR_SELF_WRITE = register_rule(
    "DAS303", "par-self-attribute-write", Severity.WARNING, "par",
    "A parallel worker reaches a method that writes an instance "
    "attribute through its call graph.",
    "Instance state written on a worker survives only on that "
    "worker's copy of the object; unless the dispatch layer clones "
    "per task and merges deterministically, results differ between "
    "serial and pooled runs.",
    "a worker method doing ``self.events_seen += 1``",
)

RULE_PAR_UNPICKLABLE = register_rule(
    "DAS304", "par-unpicklable-worker", Severity.WARNING, "par",
    "A lambda or locally defined function is dispatched as a parallel "
    "worker.",
    "Process pools pickle the worker to ship it; lambdas and nested "
    "functions cannot be pickled, so the same call works under "
    "serial/thread policies and dies under ``mode='process'`` — a "
    "policy-dependent failure the scheduler contract forbids.",
    "``parallel_map(lambda x: f(x, 2), items, policy)``",
)

RULE_PAR_SHARED_RNG = register_rule(
    "DAS305", "par-shared-module-rng", Severity.ERROR, "par",
    "A parallel worker reaches module-global RNG state through its "
    "call graph.",
    "``random.*`` and legacy ``numpy.random.*`` draw from one "
    "process-wide stream: the draw each work unit sees depends on "
    "which worker ran what before it, so no two policies (or runs) "
    "agree.",
    "a worker helper calling ``random.gauss(0, 1)``",
)

RULE_PAR_UNDERIVED_SEED = register_rule(
    "DAS306", "par-underived-seed", Severity.WARNING, "par",
    "A parallel worker constructs an RNG whose seed is not derived "
    "per work unit.",
    "Workers must own their randomness: a generator built from a "
    "constant (or from nothing) gives every work unit the same — or "
    "an unreproducible — stream; the seed must flow in through "
    "``derive_seed(...)``-derived arguments.",
    "``np.random.default_rng(42)`` inside a scan-point worker",
)

RULE_PAR_INPLACE_PARAM = register_rule(
    "DAS307", "par-inplace-param-mutation", Severity.ERROR, "par",
    "A kernel or worker mutates an array parameter in place.",
    "An augmented assignment, slice write, or ``out=`` aimed at a "
    "parameter mutates the caller's buffer; when that buffer is an "
    "``EventBatch`` field shared across chunks, the kernel's output "
    "depends on evaluation order and re-runs corrupt their inputs.",
    "``energies *= gain`` or ``np.add(a, b, out=a)`` on a parameter",
)

RULE_PAR_RETURNS_VIEW = register_rule(
    "DAS308", "par-kernel-returns-view", Severity.WARNING, "par",
    "A tier-declared kernel returns a view into a caller-owned "
    "array.",
    "Basic slices, transposes, and reshapes alias the input buffer: "
    "the caller mutates one and silently changes the other, and the "
    "declared equivalence tier is unenforceable because the "
    "'result' has no independent existence.",
    "``return samples[::2]`` from an ``exact``-tier kernel",
)

RULE_PAR_ARG_ATTR_WRITE = register_rule(
    "DAS309", "par-argument-attribute-write", Severity.WARNING, "par",
    "A kernel or worker writes an attribute of one of its "
    "parameters.",
    "State tucked onto an argument (a counter, a cursor, a cache) "
    "makes the kernel a function of call history, not of inputs — "
    "re-running the same batch gives different output and parallel "
    "workers each advance their own copy.",
    "``digi._bx = digi._bx + n`` inside a batch kernel",
)

RULE_PAR_EXACT_RNG = register_rule(
    "DAS310", "par-exact-tier-rng", Severity.ERROR, "par",
    "An ``exact``-tier function draws random numbers.",
    "Exact means bit-identical to the scalar path for every input; "
    "vectorised draws are re-phased relative to the scalar draw "
    "order, so a kernel that draws belongs in the ``statistical`` "
    "tier (or must inherit a caller-derived stream and say so).",
    "``stream.normal(size=n)`` inside ``@equivalence_tier('exact')``",
)

RULE_PAR_ORDER_SENSITIVE = register_rule(
    "DAS311", "par-order-sensitive-reduction", Severity.WARNING, "par",
    "An ``exact``-tier function accumulates floats in a "
    "chunking-dependent order.",
    "Float addition does not associate: ``sum()`` over a worklist or "
    "a loop-carried ``+=`` gives different last-bit results when the "
    "chunk boundary moves, so the bit-identity the tier declares "
    "silently depends on the ExecutionPolicy. ``math.fsum`` and "
    "whole-array ``np.sum`` over a fixed operand are exempt.",
    "``total += x`` in a loop inside an ``exact``-tier kernel",
)

RULE_PAR_INVALID_TIER = register_rule(
    "DAS312", "par-invalid-tier-declaration", Severity.ERROR, "par",
    "An equivalence-tier declaration is not a constant known tier.",
    "The tier registry is the contract the equivalence suites and "
    "these rules enforce; a tier that is misspelled, or computed at "
    "runtime, declares nothing checkable and silently exempts the "
    "kernel from the whole family.",
    "``@equivalence_tier('bitwise')`` or "
    "``@equivalence_tier(TIER_VAR)``",
)
