"""The rule registry, lint configuration, and report assembly.

Every check registers itself as a :class:`Rule` with a stable ``DASnnn``
code, a fixed default severity, and catalogue prose (rationale plus an
example trigger) — the rule table in ``docs/linting.md`` is generated
from exactly this metadata, so code and documentation cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, Severity
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active


@dataclass(frozen=True)
class Rule:
    """Metadata of one registered lint rule."""

    code: str
    name: str
    severity: Severity
    subsystem: str
    description: str
    rationale: str
    example: str

    def finding(self, message: str, *, artifact: str = "",
                file: str = "", line: int = 0,
                severity: Severity | None = None) -> Finding:
        """Build a finding carrying this rule's code and severity."""
        return Finding(
            code=self.code,
            severity=self.severity if severity is None else severity,
            message=message,
            artifact=artifact,
            file=file,
            line=line,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(code: str, name: str, severity: Severity,
                  subsystem: str, description: str, rationale: str,
                  example: str) -> Rule:
    """Register a rule under a stable code; duplicate codes are bugs."""
    if code in _REGISTRY:
        raise ConfigurationError(f"lint rule {code!r} already registered")
    rule = Rule(code=code, name=name, severity=severity,
                subsystem=subsystem, description=description,
                rationale=rationale, example=example)
    _REGISTRY[code] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigurationError(f"unknown lint rule {code!r}") from None


def _ensure_rules_loaded() -> None:
    """Import the checker modules so their rules self-register."""
    from repro.lint import consistency, pycheck  # noqa: F401
    from repro.lint.det import rules as det_rules  # noqa: F401
    from repro.lint.flow import rules  # noqa: F401
    from repro.lint.par import rules as par_rules  # noqa: F401


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and which findings are suppressed.

    ``select``/``ignore`` hold code prefixes (``"DAS1"`` matches every
    ``DAS1xx`` rule); an empty ``select`` means all rules. The
    ``suppressions`` map drops every finding of a code globally and must
    give a reason — unexplained suppressions defeat the audit trail.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    suppressions: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for code, reason in self.suppressions.items():
            if not str(reason).strip():
                raise ConfigurationError(
                    f"suppression of {code} needs a non-empty reason"
                )

    def enabled(self, code: str) -> bool:
        """True when findings of ``code`` should be reported."""
        if self.select and not any(code.startswith(prefix)
                                   for prefix in self.select):
            return False
        if any(code.startswith(prefix) for prefix in self.ignore):
            return False
        return code not in self.suppressions

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Filter findings down to the enabled rules."""
        return [finding for finding in findings
                if self.enabled(finding.code)]


@dataclass(frozen=True)
class LintReport:
    """The aggregated outcome of one lint run."""

    findings: tuple[Finding, ...]

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "LintReport":
        """Build a report with deterministic finding order."""
        return cls(findings=tuple(sorted(findings,
                                         key=Finding.sort_key)))

    def count(self, severity: Severity) -> int:
        """Findings at exactly one severity."""
        return sum(1 for finding in self.findings
                   if finding.severity == severity)

    @property
    def exit_code(self) -> int:
        """0 clean (info only), 1 warnings, 2 errors."""
        if self.count(Severity.ERROR):
            return 2
        if self.count(Severity.WARNING):
            return 1
        return 0

    def worst(self) -> Severity | None:
        """The most severe finding present, or None when clean."""
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    def summary(self) -> str:
        """One-line totals for the text reporter footer."""
        return (
            f"{len(self.findings)} finding(s): "
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info"
        )

    def to_dict(self) -> dict:
        """Serialise for the JSON reporter."""
        return {
            "findings": [finding.to_dict()
                         for finding in self.findings],
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "info": self.count(Severity.INFO),
            },
            "exit_code": self.exit_code,
        }


class LintSession:
    """Accumulates findings across many artifacts into one report.

    An enabled ``tracer`` lets callers time each linted target (the CLI
    opens one ``lint.target`` span per file/archive); ``metrics``
    receives a ``lint.findings`` counter labelled by rule code for
    every finding that survives the session configuration.
    """

    def __init__(self, config: LintConfig | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or LintConfig()
        self.tracer = tracer
        self.metrics = metrics
        self._findings: list[Finding] = []

    @property
    def obs(self) -> Tracer:
        """The session tracer, or the no-op tracer when untraced."""
        return active(self.tracer)

    def extend(self, findings: list[Finding]) -> None:
        """Add findings, applying the session configuration."""
        kept = self.config.apply(findings)
        self._findings.extend(kept)
        if self.metrics is not None:
            for finding in kept:
                self.metrics.counter("lint.findings",
                                     code=finding.code).inc()

    def report(self) -> LintReport:
        """The deterministic, aggregated report."""
        return LintReport.from_findings(self._findings)
