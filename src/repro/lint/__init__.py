"""``repro.lint`` — static preservation linting.

The cheap first line of defence the DPHEP validation-framework work
argues for: before any re-execution, preserved artifacts are checked
*statically* — analysis sources for reproducibility hazards, and
cross-artifact documents (specs, snapshots, provenance exports, archive
directories, RECAST catalogues, interview records) for internal
consistency. Rules carry stable ``DASnnn`` codes; ``docs/linting.md``
holds the generated catalogue.
"""

from repro.lint.consistency import (
    lint_archive_directory,
    lint_bundle,
    lint_conditions_coverage,
    lint_conditions_snapshot,
    lint_maturity_vs_sharing,
    lint_provenance_document,
    lint_recast_bridge,
    lint_skim_spec,
    lint_slim_spec,
)
from repro.lint.det import (
    det_findings,
    lint_tree_det,
    register_replay_root,
    replay_root,
    replay_roots,
)
from repro.lint.engine import (
    LintConfig,
    LintReport,
    LintSession,
    Rule,
    all_rules,
    get_rule,
)
from repro.lint.findings import Finding, Severity
from repro.lint.flow import (
    ClosureManifest,
    analyze_tree,
    archive_closure_sources,
    check_manifest_against_archive,
    check_manifest_against_recast,
    check_manifest_against_repository,
    extract_closure,
    lint_tree_deep,
)
from repro.lint.par import lint_tree_par, par_findings
from repro.lint.pycheck import lint_source, lint_source_file
from repro.lint.report import (
    render_json,
    render_rule_catalog,
    render_text,
)
from repro.lint.targets import (
    classify_document,
    lint_bundled_artifacts,
    lint_document,
    lint_path,
)

__all__ = [
    "ClosureManifest",
    "Finding",
    "LintConfig",
    "LintReport",
    "LintSession",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_tree",
    "archive_closure_sources",
    "check_manifest_against_archive",
    "check_manifest_against_recast",
    "check_manifest_against_repository",
    "classify_document",
    "det_findings",
    "extract_closure",
    "get_rule",
    "lint_archive_directory",
    "lint_bundle",
    "lint_bundled_artifacts",
    "lint_conditions_coverage",
    "lint_conditions_snapshot",
    "lint_document",
    "lint_maturity_vs_sharing",
    "lint_path",
    "lint_provenance_document",
    "lint_recast_bridge",
    "lint_skim_spec",
    "lint_slim_spec",
    "lint_source",
    "lint_source_file",
    "lint_tree_deep",
    "lint_tree_det",
    "lint_tree_par",
    "par_findings",
    "register_replay_root",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "replay_root",
    "replay_roots",
]
