"""Cross-artifact consistency rules.

Each function here takes preserved *documents* (plain dicts, the
serialised forms the archive actually stores) or live registry objects,
and cross-checks them against the schemas and catalogues the rest of
the library defines — without executing any preserved processing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.conditions.iov import INFINITE_RUN
from repro.datamodel.schema import field_documentation
from repro.errors import InterviewError
from repro.datamodel.skimslim import available_derived_columns
from repro.datamodel.tiers import DataTier
from repro.interview.sharing import DataSharingGrid
from repro.lint.engine import register_rule
from repro.lint.findings import Finding, Severity

RULE_SKIM_COLLECTION = register_rule(
    "DAS101", "skim-unknown-collection", Severity.ERROR, "datamodel",
    "A skim spec cuts on a collection absent from the AOD tier schema.",
    "A preserved selection that names a field the tier does not carry "
    "can never be re-applied; the mismatch is invisible until re-run "
    "time without this check.",
    '``{"kind": "count", "collection": "taus", ...}``',
)

RULE_SLIM_COLUMN = register_rule(
    "DAS102", "slim-unknown-column", Severity.ERROR, "datamodel",
    "A slim spec requests a derived column outside the fixed vocabulary.",
    "Slims are descriptions, not code: a column name with no registered "
    "expression makes the description unexecutable.",
    '``{"name": "s", "columns": ["met", "sphericity"]}``',
)

RULE_IOV_GAP = register_rule(
    "DAS103", "iov-coverage-gap", Severity.ERROR, "conditions",
    "A conditions folder leaves declared runs without a valid payload.",
    "Reconstruction of a run in the gap fails (or silently picks "
    "nothing) at re-run time; campaigns must declare runs whose "
    "conditions are fully covered.",
    "a snapshot of runs [1, 40] whose alignment folder stops at run 29",
)

RULE_IOV_OVERLAP = register_rule(
    "DAS104", "iov-overlap", Severity.ERROR, "conditions",
    "A conditions document holds overlapping IOVs within one folder.",
    "Overlaps make the payload for a run ambiguous; the live store "
    "rejects them at insert, so an overlapping document was corrupted "
    "or hand-edited after export.",
    "two IOVs [1, 20] and [15, 30] under the same folder",
)

RULE_PROV_DANGLING = register_rule(
    "DAS105", "provenance-dangling-parent", Severity.ERROR, "provenance",
    "A provenance record references a parent that is not registered.",
    "Dangling parents are exactly the lost-parentage failure the audit "
    "quantifies: the derivation chain cannot be walked back.",
    'a record with ``"parents": ["gen-missing"]`` and no such artifact',
)

RULE_PROV_CYCLE = register_rule(
    "DAS106", "provenance-cycle", Severity.ERROR, "provenance",
    "A provenance document contains a derivation cycle.",
    "An artifact cannot be its own ancestor; a cyclic document cannot "
    "even be loaded into the lineage graph.",
    "A derived from B derived from A",
)

RULE_PROV_NO_PRODUCER = register_rule(
    "DAS107", "provenance-missing-producer", Severity.WARNING,
    "provenance",
    "A provenance record carries no computing description.",
    "Without the producer record the artifact can be verified but "
    "never regenerated — the audit will report it non-reproducible.",
    'a record with ``"producer": null``',
)

RULE_ARCHIVE_FIXITY = register_rule(
    "DAS108", "archive-fixity-mismatch", Severity.ERROR, "core",
    "An archive entry's digest disagrees with its stored blob.",
    "A catalogue row whose blob is missing or hashes differently is "
    "silent corruption; retrieval would raise only when someone "
    "finally asks for that artifact.",
    "a blob file edited after ``save()``",
)

RULE_ARCHIVE_ORPHAN = register_rule(
    "DAS109", "archive-orphan-blob", Severity.WARNING, "core",
    "An archive directory holds blobs absent from the catalogue.",
    "Orphan content is unreachable through the catalogue and will be "
    "lost by any migration that walks entries rather than files.",
    "a ``blobs/<digest>`` file with no catalogue row",
)

RULE_RECAST_UNREGISTERED = register_rule(
    "DAS110", "recast-unregistered-analysis", Severity.ERROR, "recast",
    "A RECAST signal-region mapping names an unregistered RIVET "
    "analysis.",
    "The bridge back end will fail every request for the search; the "
    "catalogue promises a re-interpretation it cannot deliver.",
    "a mapping to ``TOY_2013_I9999`` with no such plugin",
)

RULE_RECAST_UNMAPPED = register_rule(
    "DAS111", "recast-unmapped-search", Severity.WARNING, "recast",
    "A catalogued search has no signal-region mapping in the bridge.",
    "The search is advertised but cannot be processed by the RIVET "
    "bridge; requests against it die in the back end.",
    "a catalogue entry missing from the bridge's mapping table",
)

RULE_MATURITY_GRID = register_rule(
    "DAS112", "maturity-sharing-mismatch", Severity.WARNING,
    "interview",
    "A sharing/access maturity rating contradicts the sharing grid.",
    "A 9F rating of 4-5 claims systematic open sharing, which the "
    "grid's preservation row must reflect (and vice versa); "
    "disagreement means one of the two records is wrong.",
    "rating 5 with a preservation row shared with 'no one'",
)

RULE_DATASET_NO_RUN_REPORT = register_rule(
    "DAS113", "dataset-missing-run-report", Severity.WARNING, "obs",
    "An archived dataset's provenance references no run report.",
    "Without the run report (trace, metrics, environment) of the "
    "producing execution, the archived dataset cannot show how it was "
    "made — re-execution has no recorded baseline to diff against.",
    'a ``*_dataset`` entry whose provenance block has no '
    '``run_report`` digest',
)


# ----------------------------------------------------------------------
# Skim / slim specs vs the tier schema
# ----------------------------------------------------------------------

def _aod_collections() -> set[str]:
    """Collections a skim may cut on: AOD list fields plus 'leptons'."""
    fields = set(field_documentation(DataTier.AOD))
    collections = {name for name in ("electrons", "muons", "photons",
                                     "jets") if name in fields}
    collections.add("leptons")
    return collections


def _walk_cuts(cut: dict):
    """Yield every node of a serialised cut tree."""
    yield cut
    for child in cut.get("children", []):
        yield from _walk_cuts(child)
    if isinstance(cut.get("child"), dict):
        yield from _walk_cuts(cut["child"])


def lint_skim_spec(record: dict, *, artifact: str = "",
                   file: str = "") -> list[Finding]:
    """DAS101 over one serialised skim spec."""
    name = artifact or str(record.get("name", "<skim>"))
    known = _aod_collections()
    findings = []
    for node in _walk_cuts(record.get("cut", {})):
        collection = node.get("collection")
        if collection is not None and collection not in known:
            findings.append(RULE_SKIM_COLLECTION.finding(
                f"skim {name!r} cuts on collection {collection!r} "
                f"absent from the AOD schema (known: {sorted(known)})",
                artifact=name, file=file,
            ))
    return findings


def lint_slim_spec(record: dict, *, artifact: str = "",
                   file: str = "") -> list[Finding]:
    """DAS102 over one serialised slim spec."""
    name = artifact or str(record.get("name", "<slim>"))
    vocabulary = set(available_derived_columns())
    findings = []
    for column in record.get("columns", []):
        if column not in vocabulary:
            findings.append(RULE_SLIM_COLUMN.finding(
                f"slim {name!r} requests unknown derived column "
                f"{column!r} (available: {sorted(vocabulary)})",
                artifact=name, file=file,
            ))
    return findings


def lint_bundle(record: dict, *, file: str = "") -> list[Finding]:
    """Skim+slim checks over a preserved-analysis bundle document."""
    bundle_id = str(record.get("bundle_id", "<bundle>"))
    findings = []
    if isinstance(record.get("skim"), dict):
        findings.extend(lint_skim_spec(record["skim"],
                                       artifact=bundle_id, file=file))
    if isinstance(record.get("slim"), dict):
        findings.extend(lint_slim_spec(record["slim"],
                                       artifact=bundle_id, file=file))
    return findings


# ----------------------------------------------------------------------
# Conditions coverage
# ----------------------------------------------------------------------

def _coverage_findings(artifact: str, folder: str,
                       intervals: list[tuple[int, int]],
                       first_run: int, last_run: int,
                       file: str = "") -> list[Finding]:
    """Gap/overlap findings for one folder's sorted interval list."""
    findings = []
    ordered = sorted(intervals)
    for (_, left_last), (right_first, _) in zip(ordered, ordered[1:]):
        if right_first <= left_last:
            findings.append(RULE_IOV_OVERLAP.finding(
                f"{folder}: IOV starting at run {right_first} overlaps "
                f"the interval ending at run {left_last}",
                artifact=artifact, file=file,
            ))
    cursor = first_run
    for iov_first, iov_last in ordered:
        if iov_first > cursor:
            gap_end = min(iov_first - 1, last_run)
            if cursor <= gap_end:
                findings.append(RULE_IOV_GAP.finding(
                    f"{folder}: no payload covers runs "
                    f"[{cursor}, {gap_end}]",
                    artifact=artifact, file=file,
                ))
        cursor = max(cursor, iov_last + 1)
        if cursor > last_run:
            break
    if cursor <= last_run:
        findings.append(RULE_IOV_GAP.finding(
            f"{folder}: no payload covers runs [{cursor}, {last_run}]",
            artifact=artifact, file=file,
        ))
    return findings


def lint_conditions_snapshot(record: dict, *,
                             file: str = "") -> list[Finding]:
    """DAS103/DAS104 over a serialised conditions snapshot."""
    artifact = str(record.get("global_tag", "<snapshot>"))
    first_run = int(record.get("first_run", 0))
    last_run = int(record.get("last_run", INFINITE_RUN))
    findings = []
    for folder, pairs in sorted(record.get("folders", {}).items()):
        intervals = [(int(pair["iov"]["first_run"]),
                      int(pair["iov"]["last_run"])) for pair in pairs]
        findings.extend(_coverage_findings(
            artifact, folder, intervals, first_run, last_run, file,
        ))
    return findings


def lint_conditions_coverage(store, global_tag_name: str,
                             runs: list[int]) -> list[Finding]:
    """DAS103 for declared campaign runs against a live store."""
    if not runs:
        return []
    global_tag = store.global_tag(global_tag_name)
    findings = []
    for folder in global_tag.folders():
        tag = global_tag.tag_for(folder)
        iovs = store.iovs(folder, tag)
        for run in sorted(set(runs)):
            if not any(iov.contains(run) for iov in iovs):
                findings.append(RULE_IOV_GAP.finding(
                    f"{folder}/{tag}: no IOV covers declared run {run}",
                    artifact=global_tag_name,
                ))
    return findings


# ----------------------------------------------------------------------
# Provenance documents
# ----------------------------------------------------------------------

def lint_provenance_document(record: dict, *,
                             file: str = "") -> list[Finding]:
    """DAS105/DAS106/DAS107 over a serialised provenance graph."""
    artifacts = record.get("artifacts", [])
    parents: dict[str, tuple[str, ...]] = {}
    findings = []
    for entry in artifacts:
        artifact_id = str(entry.get("artifact_id", ""))
        parents[artifact_id] = tuple(entry.get("parents", ()))
        if not entry.get("producer"):
            findings.append(RULE_PROV_NO_PRODUCER.finding(
                f"artifact {artifact_id!r} has no producer record",
                artifact=artifact_id, file=file,
            ))
    for artifact_id, parent_ids in sorted(parents.items()):
        for parent in parent_ids:
            if parent not in parents:
                findings.append(RULE_PROV_DANGLING.finding(
                    f"artifact {artifact_id!r} references unregistered "
                    f"parent {parent!r}",
                    artifact=artifact_id, file=file,
                ))
    for cycle in _find_cycles(parents):
        findings.append(RULE_PROV_CYCLE.finding(
            "derivation cycle: " + " -> ".join(cycle),
            artifact=cycle[0], file=file,
        ))
    return findings


def _find_cycles(parents: dict[str, tuple[str, ...]]) -> list[list[str]]:
    """Deterministic cycle enumeration via iterative colouring."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in parents}
    cycles: list[list[str]] = []

    def visit(start: str) -> None:
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            if colour.get(node, BLACK) == BLACK:
                continue
            colour[node] = GREY
            for parent in parents.get(node, ()):
                if parent not in parents:
                    continue
                if parent in path:
                    loop = path[path.index(parent):] + [parent]
                    cycles.append(loop)
                elif colour.get(parent) == WHITE:
                    stack.append((parent, path + [parent]))
            colour[node] = BLACK

    for node in sorted(parents):
        if colour[node] == WHITE:
            visit(node)
    return cycles


# ----------------------------------------------------------------------
# Archive directories
# ----------------------------------------------------------------------

def _is_dataset_kind(kind: str) -> bool:
    """Kinds DAS113 audits: ``dataset`` and ``*_dataset`` entries."""
    return kind == "dataset" or kind.endswith("_dataset")


def lint_archive_directory(directory: str | Path) -> list[Finding]:
    """DAS108/DAS109/DAS113 over a saved archive directory."""
    directory = Path(directory)
    catalogue_path = directory / "catalogue.json"
    try:
        catalogue = json.loads(
            catalogue_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [RULE_ARCHIVE_FIXITY.finding(
            f"archive catalogue unreadable: {exc}",
            artifact=str(directory), file=str(catalogue_path),
        )]
    name = str(catalogue.get("name", directory.name))
    blobs_dir = directory / "blobs"
    findings = []
    catalogued = set()
    for entry in catalogue.get("entries", []):
        digest = str(entry.get("digest", ""))
        catalogued.add(digest)
        blob_path = blobs_dir / digest
        if not blob_path.is_file():
            findings.append(RULE_ARCHIVE_FIXITY.finding(
                f"entry {digest[:12]}... has no blob file",
                artifact=name, file=str(blob_path),
            ))
            continue
        actual = hashlib.sha256(blob_path.read_bytes()).hexdigest()
        if actual != digest:
            findings.append(RULE_ARCHIVE_FIXITY.finding(
                f"entry {digest[:12]}... blob hashes to "
                f"{actual[:12]}... (fixity broken)",
                artifact=name, file=str(blob_path),
            ))
        metadata = entry.get("metadata", {})
        recorded = metadata.get("technical", {}).get("checksum")
        if recorded is not None and recorded != digest:
            findings.append(RULE_ARCHIVE_FIXITY.finding(
                f"entry {digest[:12]}... metadata checksum "
                f"{str(recorded)[:12]}... disagrees with its digest",
                artifact=name, file=str(catalogue_path),
            ))
    if blobs_dir.is_dir():
        for blob_path in sorted(blobs_dir.iterdir()):
            if blob_path.name not in catalogued:
                findings.append(RULE_ARCHIVE_ORPHAN.finding(
                    f"blob {blob_path.name[:12]}... has no catalogue "
                    f"entry",
                    artifact=name, file=str(blob_path),
                ))
    # DAS113 needs the full digest set, so it runs after the sweep.
    for entry in catalogue.get("entries", []):
        if not _is_dataset_kind(str(entry.get("kind", ""))):
            continue
        digest = str(entry.get("digest", ""))
        provenance = entry.get("metadata", {}).get("provenance", {})
        run_report = provenance.get("run_report")
        if not run_report:
            findings.append(RULE_DATASET_NO_RUN_REPORT.finding(
                f"dataset entry {digest[:12]}... links no run report "
                f"in its provenance block",
                artifact=name, file=str(catalogue_path),
            ))
        elif str(run_report) not in catalogued:
            findings.append(RULE_DATASET_NO_RUN_REPORT.finding(
                f"dataset entry {digest[:12]}... links run report "
                f"{str(run_report)[:12]}... absent from the catalogue",
                artifact=name, file=str(catalogue_path),
            ))
    return findings


# ----------------------------------------------------------------------
# RECAST catalogue vs the RIVET repository
# ----------------------------------------------------------------------

def lint_recast_bridge(catalog, signal_regions: dict,
                       repository) -> list[Finding]:
    """DAS110/DAS111 for one catalogue against a bridge mapping."""
    findings = []
    for search in catalog.public_listing():
        analysis_id = search["analysis_id"]
        region = signal_regions.get(analysis_id)
        if region is None:
            findings.append(RULE_RECAST_UNMAPPED.finding(
                f"search {analysis_id!r} has no signal-region mapping",
                artifact=analysis_id,
            ))
            continue
        if region.analysis_name not in repository:
            findings.append(RULE_RECAST_UNREGISTERED.finding(
                f"search {analysis_id!r} maps to RIVET analysis "
                f"{region.analysis_name!r} which is not registered",
                artifact=analysis_id,
            ))
    return findings


# ----------------------------------------------------------------------
# Interview maturity vs the sharing grid
# ----------------------------------------------------------------------

def lint_maturity_vs_sharing(experiment: str, sharing_rating: int,
                             grid: DataSharingGrid) -> list[Finding]:
    """DAS112: the 9F rating against the grid's preservation row.

    High ratings (4-5) claim systematic sharing, so the preservation
    stage must be open at least to 'host institution'; low ratings
    (1-2) are contradicted by a 'whole world' preservation row.
    """
    try:
        entry = grid.entry_for("preservation")
    except InterviewError:
        return [RULE_MATURITY_GRID.finding(
            f"{experiment}: sharing grid has no preservation row to "
            f"support its 9F rating of {sharing_rating}",
            artifact=experiment,
        )]
    findings = []
    if sharing_rating >= 4 and entry.openness <= 1:
        findings.append(RULE_MATURITY_GRID.finding(
            f"{experiment}: 9F rating {sharing_rating} claims "
            f"systematic sharing but preserved data goes to "
            f"{entry.audience!r}",
            artifact=experiment,
        ))
    if sharing_rating <= 2 and entry.openness >= 4:
        findings.append(RULE_MATURITY_GRID.finding(
            f"{experiment}: 9F rating {sharing_rating} is contradicted "
            f"by a preservation row shared with {entry.audience!r}",
            artifact=experiment,
        ))
    return findings
