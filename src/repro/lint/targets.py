"""File-based lint targets: identify artifacts on disk and lint them.

The CLI hands this module paths; each is classified by *content*, not
by name — a JSON document is recognised as a bundle, snapshot, skim,
slim, or provenance export from its structure, a directory holding a
``catalogue.json`` is an archive, and ``.py`` files (or directories of
them) go through the AST checker.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.consistency import (
    lint_archive_directory,
    lint_bundle,
    lint_conditions_coverage,
    lint_conditions_snapshot,
    lint_maturity_vs_sharing,
    lint_provenance_document,
    lint_recast_bridge,
    lint_skim_spec,
    lint_slim_spec,
)
from repro.lint.engine import get_rule
from repro.lint.findings import Finding
from repro.lint.pycheck import lint_source_file


def classify_document(record: dict) -> str:
    """The artifact kind of one JSON document (``"unknown"`` if none)."""
    if record.get("format") == "repro-preserved-analysis":
        return "bundle"
    if (record.get("schema", {}).get("format")
            == "repro-conditions-snapshot"):
        return "snapshot"
    if "artifacts" in record:
        return "provenance"
    if "cut" in record and "name" in record:
        return "skim"
    if "columns" in record and "name" in record:
        return "slim"
    return "unknown"


def lint_document(record: dict, *, file: str = "") -> list[Finding]:
    """Dispatch one JSON document to the matching rule set."""
    kind = classify_document(record)
    if kind == "bundle":
        return lint_bundle(record, file=file)
    if kind == "snapshot":
        return lint_conditions_snapshot(record, file=file)
    if kind == "provenance":
        return lint_provenance_document(record, file=file)
    if kind == "skim":
        return lint_skim_spec(record, file=file)
    if kind == "slim":
        return lint_slim_spec(record, file=file)
    return []


def lint_path(path: str | Path) -> list[Finding]:
    """Lint one file or directory from disk.

    Unknown or unreadable documents produce an ``DAS010`` finding
    rather than an exception — a linter should never crash on the
    content it was built to distrust.
    """
    path = Path(path)
    if path.is_dir():
        if (path / "catalogue.json").is_file():
            return lint_archive_directory(path)
        findings: list[Finding] = []
        archives = sorted(catalogue.parent
                          for catalogue in path.rglob("catalogue.json")
                          if catalogue.is_file())
        for archive in archives:
            findings.extend(lint_archive_directory(archive))

        def in_archive(candidate: Path) -> bool:
            return any(archive in candidate.parents
                       for archive in archives)

        for source in sorted(path.rglob("*.py")):
            if in_archive(source):
                continue
            findings.extend(lint_source_file(source))
        for document in sorted(path.rglob("*.json")):
            if document.parent.name == "blobs" or in_archive(document):
                continue
            findings.extend(_lint_json_file(document))
        return findings
    if path.suffix == ".py":
        return lint_source_file(path)
    if path.suffix == ".json":
        return _lint_json_file(path)
    return [get_rule("DAS010").finding(
        f"cannot classify lint target {path.name!r}", file=str(path),
    )]


def _lint_json_file(path: Path) -> list[Finding]:
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [get_rule("DAS010").finding(
            f"document unreadable: {exc}", file=str(path),
        )]
    if not isinstance(record, dict):
        return []
    return lint_document(record, file=str(path))


def lint_bundled_artifacts() -> list[Finding]:
    """Lint the artifacts the library itself ships.

    Covers the standard RIVET analysis sources, conditions coverage of
    the default store over its calibration range, the demo RECAST
    bridge wiring, and every bundled experiment's maturity ratings
    against its sharing grid. This is what CI runs to keep the repo
    honest against its own linter.
    """
    import repro.rivet.standard_analyses as standard_analyses
    from repro.conditions import default_conditions
    from repro.experiments import all_experiments
    from repro.interview.maturity import (
        SHARING_ACCESS_SCALE,
        rate_from_evidence,
    )
    from repro.interview.responses import response_for_experiment
    from repro.rivet.standard_analyses import standard_repository

    findings = lint_source_file(standard_analyses.__file__)
    store = default_conditions()
    for tag in ("GT-PROMPT", "GT-FINAL"):
        findings.extend(lint_conditions_coverage(
            store, tag, list(range(1, 101))))
    repository = standard_repository()
    catalog, signal_regions = _demo_recast_setup()
    findings.extend(lint_recast_bridge(catalog, signal_regions,
                                       repository))
    for profile in all_experiments():
        rating = rate_from_evidence(SHARING_ACCESS_SCALE,
                                    profile.interview_evidence)
        response = response_for_experiment(profile)
        if response.sharing_grid is not None:
            findings.extend(lint_maturity_vs_sharing(
                profile.name, rating, response.sharing_grid))
    return findings


def _demo_recast_setup():
    """The high-mass dimuon search wired to its bridge mapping."""
    from repro.datamodel.skimslim import (
        CountCut,
        MassWindowCut,
        AndCut,
        SkimSpec,
    )
    from repro.recast.bridge import RivetSignalRegion
    from repro.recast.catalog import AnalysisCatalog, PreservedSearch

    catalog = AnalysisCatalog("TOY-GPD")
    catalog.register(PreservedSearch(
        analysis_id="TOY-GPD-EXO-001",
        title="High-mass dimuon resonance search",
        experiment="TOY-GPD",
        selection=SkimSpec("highmass-dimuon", AndCut((
            CountCut("muons", 2, min_pt=30.0),
            MassWindowCut("muons", 400.0, 3000.0,
                          opposite_charge=True),
        ))),
        n_observed=3,
        background=2.8,
        background_uncertainty=0.9,
        luminosity_ipb=20000.0,
    ))
    signal_regions = {
        "TOY-GPD-EXO-001": RivetSignalRegion(
            analysis_name="TOY_2013_I0007",
            histogram_key="mass",
            window_low=400.0,
            window_high=3000.0,
        ),
    }
    return catalog, signal_regions
