"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; orders INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering used for comparisons and exit codes."""
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank <= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1,
                  Severity.ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    ``artifact`` is the logical name of the thing being linted (an
    analysis name, a spec name, an archive name); ``file``/``line``
    locate the finding in a source or document when that is meaningful.
    """

    code: str
    severity: Severity
    message: str
    artifact: str = ""
    file: str = ""
    line: int = 0

    def sort_key(self) -> tuple:
        """Deterministic report ordering: location, then code."""
        return (self.file, self.artifact, self.line, self.code,
                self.message)

    def location(self) -> str:
        """``file:line`` / artifact rendering for the text reporter."""
        if self.file:
            return f"{self.file}:{self.line}" if self.line else self.file
        return self.artifact or "<artifact>"

    def to_dict(self) -> dict:
        """Serialise for the JSON reporter."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "artifact": self.artifact,
            "file": self.file,
            "line": self.line,
        }
