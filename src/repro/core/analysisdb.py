"""Les Houches Recommendation 1b: the common analysis database.

"The community should identify, develop and adopt a common platform to
store analysis databases, collecting object definitions, cuts, and all
other information, including well-encapsulated functions, necessary to
reproduce or use the results of the analyses."

:class:`AnalysisDatabase` is that platform: it stores
:class:`~repro.core.describe.AnalysisDescription` records, supports the
queries a phenomenologist needs, and can *execute* any stored description
against AOD events — reproducing the analysis from its description alone.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.describe import AnalysisDescription
from repro.datamodel.event import AODEvent
from repro.errors import PersistenceError, PreservationError

_FORMAT_TAG = "repro-analysis-database"


class AnalysisDatabase:
    """Queryable store of structured analysis descriptions."""

    def __init__(self, name: str = "analysis-db") -> None:
        self.name = name
        self._descriptions: dict[str, AnalysisDescription] = {}

    # ------------------------------------------------------------------

    def add(self, description: AnalysisDescription) -> None:
        """Store a description; ids must be unique."""
        if description.analysis_id in self._descriptions:
            raise PreservationError(
                f"analysis {description.analysis_id!r} already stored"
            )
        self._descriptions[description.analysis_id] = description

    def get(self, analysis_id: str) -> AnalysisDescription:
        """Look a description up by id."""
        try:
            return self._descriptions[analysis_id]
        except KeyError:
            raise PreservationError(
                f"no analysis {analysis_id!r} in database {self.name!r}"
            ) from None

    def __contains__(self, analysis_id: str) -> bool:
        return analysis_id in self._descriptions

    def __len__(self) -> int:
        return len(self._descriptions)

    def analysis_ids(self) -> list[str]:
        """All stored analysis ids, sorted."""
        return sorted(self._descriptions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def by_experiment(self, experiment: str) -> list[AnalysisDescription]:
        """All descriptions from one experiment."""
        return [d for _, d in sorted(self._descriptions.items())
                if d.experiment == experiment]

    def by_final_state(self, final_state: str) -> list[AnalysisDescription]:
        """All descriptions targeting a final state."""
        return [d for _, d in sorted(self._descriptions.items())
                if d.final_state == final_state]

    def using_object(self, object_type: str) -> list[AnalysisDescription]:
        """All descriptions whose object definitions include a type."""
        return [
            d for _, d in sorted(self._descriptions.items())
            if any(o.object_type == object_type for o in d.objects)
        ]

    # ------------------------------------------------------------------
    # Reproduction
    # ------------------------------------------------------------------

    def reproduce(self, analysis_id: str,
                  events: list[AODEvent]) -> dict:
        """Re-run a stored analysis on a new event sample.

        Executes the preserved event selection and returns the cut flow
        plus the final acceptance — no analyst code involved, which is
        exactly the reproduce-from-description capability Rec. 1b asks
        for.
        """
        description = self.get(analysis_id)
        cutflow = description.selection.cutflow(events)
        n_initial = cutflow[0][1]
        n_final = cutflow[-1][1]
        return {
            "analysis_id": analysis_id,
            "cutflow": cutflow,
            "n_initial": n_initial,
            "n_selected": n_final,
            "acceptance": (n_final / n_initial) if n_initial else 0.0,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist all descriptions to one JSON file."""
        path = Path(path)
        payload = {
            "format": _FORMAT_TAG,
            "name": self.name,
            "analyses": [d.to_dict()
                         for _, d in sorted(self._descriptions.items())],
        }
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
        except OSError as exc:
            raise PersistenceError(
                f"cannot write analysis database {path}: {exc}"
            )

    @classmethod
    def load(cls, path: str | Path) -> "AnalysisDatabase":
        """Read a database written by :meth:`save`."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise PersistenceError(
                f"cannot read analysis database {path}: {exc}"
            )
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"analysis database {path} is not valid JSON: {exc}"
            )
        if payload.get("format") != _FORMAT_TAG:
            raise PersistenceError(
                f"{path} is not an analysis database"
            )
        database = cls(name=str(payload.get("name", "analysis-db")))
        for record in payload.get("analyses", []):
            database.add(AnalysisDescription.from_dict(record))
        return database
