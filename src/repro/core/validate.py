"""Re-execution validation of preserved analyses.

"The analysis can be re-run at any time. The outputs could be used, for
example, for validation purposes." A :class:`PreservedAnalysisBundle`
freezes the three things a re-run needs — archived input events, the
declarative processing (skim + slim specs), and the archived expected
outputs. :func:`revalidate` re-executes the processing on the archived
inputs and compares against the archived outputs, row by row.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.datamodel.event import AODEvent, NtupleRow
from repro.datamodel.skimslim import SkimSpec, SlimSpec
from repro.errors import PreservationError


@dataclass
class PreservedAnalysisBundle:
    """Everything needed to re-run and check one preserved analysis."""

    bundle_id: str
    #: Archived AOD input events (as serialised dicts).
    input_events: list[dict]
    skim: SkimSpec
    slim: SlimSpec
    #: Archived expected ntuple rows (as serialised dicts).
    expected_rows: list[dict]

    def to_dict(self) -> dict:
        """Serialise for archive storage.

        Deep-copies the event and row records so callers can never
        mutate the bundle through the returned structure — archival
        content must stay immutable.
        """
        return {
            "format": "repro-preserved-analysis",
            "bundle_id": self.bundle_id,
            "input_events": copy.deepcopy(self.input_events),
            "skim": self.skim.to_dict(),
            "slim": self.slim.to_dict(),
            "expected_rows": copy.deepcopy(self.expected_rows),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "PreservedAnalysisBundle":
        """Inverse of :meth:`to_dict`."""
        if record.get("format") != "repro-preserved-analysis":
            raise PreservationError(
                f"not a preserved-analysis bundle: "
                f"format={record.get('format')!r}"
            )
        return cls(
            bundle_id=str(record["bundle_id"]),
            input_events=copy.deepcopy(record["input_events"]),
            skim=SkimSpec.from_dict(record["skim"]),
            slim=SlimSpec.from_dict(record["slim"]),
            expected_rows=copy.deepcopy(record["expected_rows"]),
        )

    @classmethod
    def create(cls, bundle_id: str, events: list[AODEvent],
               skim: SkimSpec, slim: SlimSpec) -> "PreservedAnalysisBundle":
        """Build a bundle by running the processing once and freezing it."""
        selected = skim.apply(events)
        rows = slim.apply(selected)
        return cls(
            bundle_id=bundle_id,
            input_events=[event.to_dict() for event in events],
            skim=skim,
            slim=slim,
            expected_rows=[row.to_dict() for row in rows],
        )


@dataclass
class ValidationOutcome:
    """The verdict of one re-validation."""

    bundle_id: str
    passed: bool
    n_expected: int
    n_reproduced: int
    mismatches: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "PASS" if self.passed else "FAIL"
        detail = (f"; first mismatch: {self.mismatches[0]}"
                  if self.mismatches else "")
        return (
            f"{self.bundle_id}: {status} "
            f"({self.n_reproduced}/{self.n_expected} rows reproduced"
            f"{detail})"
        )


def _rows_equal(expected: dict, actual: dict,
                tolerance: float) -> str | None:
    """None if rows match; otherwise a description of the difference."""
    if expected.get("run") != actual.get("run"):
        return (f"run {expected.get('run')} != {actual.get('run')}")
    if expected.get("event") != actual.get("event"):
        return (f"event {expected.get('event')} != "
                f"{actual.get('event')}")
    expected_cols = expected.get("cols", {})
    actual_cols = actual.get("cols", {})
    if set(expected_cols) != set(actual_cols):
        return (f"column sets differ: {sorted(expected_cols)} vs "
                f"{sorted(actual_cols)}")
    for name, expected_value in expected_cols.items():
        actual_value = actual_cols[name]
        if isinstance(expected_value, float):
            if abs(expected_value - float(actual_value)) > tolerance * max(
                1.0, abs(expected_value)
            ):
                return (f"column {name!r}: {expected_value} != "
                        f"{actual_value}")
        elif expected_value != actual_value:
            return (f"column {name!r}: {expected_value!r} != "
                    f"{actual_value!r}")
    return None


def revalidate(bundle: PreservedAnalysisBundle,
               tolerance: float = 1e-9) -> ValidationOutcome:
    """Re-execute a preserved analysis and compare against its outputs."""
    events = [AODEvent.from_dict(record)
              for record in bundle.input_events]
    selected = bundle.skim.apply(events)
    rows: list[NtupleRow] = bundle.slim.apply(selected)
    actual = [row.to_dict() for row in rows]
    expected = bundle.expected_rows

    mismatches = []
    if len(actual) != len(expected):
        mismatches.append(
            f"row count: expected {len(expected)}, got {len(actual)}"
        )
    for index, (expected_row, actual_row) in enumerate(
        zip(expected, actual)
    ):
        problem = _rows_equal(expected_row, actual_row, tolerance)
        if problem is not None:
            mismatches.append(f"row {index}: {problem}")
    return ValidationOutcome(
        bundle_id=bundle.bundle_id,
        passed=not mismatches,
        n_expected=len(expected),
        n_reproduced=len(actual),
        mismatches=mismatches,
    )
