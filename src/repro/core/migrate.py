"""Platform-migration simulation.

"The full experimental code base must be migrated to new computing
platforms when such transitions become necessary. The entire set of
processes must be kept functioning in order for the RECAST framework to
produce appropriate results." Migration risk is *the* operational cost
of full-stack preservation; this module lets benchmarks quantify it by
applying realistic lossy transformations to preserved bundles and
measuring how many still re-validate.
"""

from __future__ import annotations

import abc

from repro.core.validate import PreservedAnalysisBundle
from repro.errors import MigrationError


class Migration(abc.ABC):
    """A platform transition applied to a preserved-analysis bundle."""

    #: Human-readable migration name.
    name: str = "migration"

    @abc.abstractmethod
    def apply(self, bundle_record: dict) -> dict:
        """Transform a serialised bundle; must return a new dict."""

    def describe(self) -> str:
        """One-line description for migration logs."""
        return self.name


class LosslessMigration(Migration):
    """A faithful migration: byte-identical content on a new platform."""

    name = "lossless-replatform"

    def apply(self, bundle_record: dict) -> dict:
        import copy

        return copy.deepcopy(bundle_record)


class PrecisionLossMigration(Migration):
    """A migration that truncates floating-point precision.

    Models a format conversion (e.g. double -> float) during a platform
    move. Small analyses survive; anything sensitive beyond ``digits``
    significant digits fails re-validation.
    """

    name = "precision-loss"

    def __init__(self, digits: int = 4) -> None:
        if digits <= 0:
            raise MigrationError("digits must be positive")
        self.digits = digits

    def _truncate(self, value):
        if isinstance(value, float):
            return float(f"%.{self.digits}g" % value)
        if isinstance(value, list):
            return [self._truncate(item) for item in value]
        if isinstance(value, dict):
            return {key: self._truncate(item)
                    for key, item in value.items()}
        return value

    def apply(self, bundle_record: dict) -> dict:
        record = self._truncate(bundle_record)
        return record


class FieldRenameMigration(Migration):
    """A migration that renames a record field (schema drift).

    Models the classic failure where a new software stack writes the
    same information under a different key, silently breaking old
    readers.
    """

    name = "field-rename"

    def __init__(self, old_field: str = "met",
                 new_field: str = "missing_et") -> None:
        self.old_field = old_field
        self.new_field = new_field

    def _rename(self, value):
        if isinstance(value, dict):
            renamed = {}
            for key, item in value.items():
                new_key = self.new_field if key == self.old_field else key
                renamed[new_key] = self._rename(item)
            return renamed
        if isinstance(value, list):
            return [self._rename(item) for item in value]
        return value

    def apply(self, bundle_record: dict) -> dict:
        return self._rename(bundle_record)


class DropAuxiliaryMigration(Migration):
    """A migration that loses part of the payload (storage pruning).

    Drops a fraction of the archived input events — the "we only kept
    the important files" failure mode.
    """

    name = "drop-auxiliary"

    def __init__(self, keep_fraction: float = 0.9) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise MigrationError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        self.keep_fraction = keep_fraction

    def apply(self, bundle_record: dict) -> dict:
        import copy

        record = copy.deepcopy(bundle_record)
        events = record.get("input_events", [])
        keep = max(1, int(len(events) * self.keep_fraction))
        record["input_events"] = events[:keep]
        return record


def apply_migration(bundle: PreservedAnalysisBundle,
                    migration: Migration) -> PreservedAnalysisBundle:
    """Migrate a bundle; returns the post-migration bundle.

    A migration that structurally destroys the bundle raises
    :class:`MigrationError` (the migration visibly failed); one that
    merely corrupts content returns a bundle that will fail
    re-validation (the migration *silently* failed — the dangerous case).
    """
    record = migration.apply(bundle.to_dict())
    try:
        return PreservedAnalysisBundle.from_dict(record)
    except Exception as exc:
        raise MigrationError(
            f"migration {migration.name!r} destroyed bundle "
            f"{bundle.bundle_id!r}: {exc}"
        ) from exc
