"""Batch re-validation of everything an archive preserves.

Operationally, this is an archive's nightly job: walk the catalogue,
re-execute every preserved-analysis bundle and script capture, fixity-
check every blob, and produce one curator report. It turns the paper's
"the analysis can be re-run at any time … for validation purposes" from
a capability into a routine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.archive import PreservationArchive
from repro.core.capture import ScriptCapture
from repro.core.validate import PreservedAnalysisBundle, revalidate


@dataclass
class SuiteReport:
    """The outcome of one archive-wide validation sweep."""

    archive_name: str
    n_artifacts: int = 0
    n_fixity_checked: int = 0
    n_fixity_failed: int = 0
    n_bundles: int = 0
    n_bundles_passed: int = 0
    n_captures: int = 0
    n_captures_passed: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when everything checked out."""
        return not self.failures and self.n_fixity_failed == 0

    def render(self) -> str:
        """Plain-text curator report."""
        lines = [
            f"Validation sweep — {self.archive_name}",
            "",
            f"  artifacts:        {self.n_artifacts}",
            f"  fixity checked:   {self.n_fixity_checked} "
            f"({self.n_fixity_failed} failed)",
            f"  bundles re-run:   {self.n_bundles} "
            f"({self.n_bundles_passed} passed)",
            f"  captures re-run:  {self.n_captures} "
            f"({self.n_captures_passed} passed)",
            f"  verdict:          "
            f"{'HEALTHY' if self.healthy else 'ATTENTION NEEDED'}",
        ]
        for failure in self.failures:
            lines.append(f"    ! {failure}")
        return "\n".join(lines)


def run_validation_suite(archive: PreservationArchive) -> SuiteReport:
    """Fixity-check every blob and re-run every preserved analysis."""
    report = SuiteReport(archive_name=archive.name,
                         n_artifacts=len(archive))
    for digest in archive.digests():
        report.n_fixity_checked += 1
        if not archive.verify(digest):
            report.n_fixity_failed += 1
            report.failures.append(
                f"fixity failure on {digest[:12]}..."
            )
            continue
        payload = archive.retrieve(digest)
        if not isinstance(payload, dict):
            continue
        format_tag = payload.get("format")
        if format_tag == "repro-preserved-analysis":
            report.n_bundles += 1
            try:
                outcome = revalidate(
                    PreservedAnalysisBundle.from_dict(payload)
                )
            except Exception as exc:
                report.failures.append(
                    f"bundle {digest[:12]}... unreadable: {exc}"
                )
                continue
            if outcome.passed:
                report.n_bundles_passed += 1
            else:
                report.failures.append(
                    f"bundle {outcome.bundle_id} failed: "
                    f"{outcome.mismatches[0] if outcome.mismatches else ''}"
                )
        elif format_tag == "repro-script-capture":
            report.n_captures += 1
            try:
                outcome = ScriptCapture.from_dict(payload).reexecute()
            except Exception as exc:
                report.failures.append(
                    f"capture {digest[:12]}... unreadable: {exc}"
                )
                continue
            if outcome.passed:
                report.n_captures_passed += 1
            else:
                report.failures.append(
                    f"capture {outcome.capture_id} failed: "
                    f"{outcome.detail}"
                )
    return report
