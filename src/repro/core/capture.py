"""Direct code preservation of final analysis steps.

Section 3.2: "The final steps to produce publication-quality plots and
the final results are sufficiently varied that direct preservation
(i.e., capturing an executable, or the entire source/script code) is
likely the only way to insure that these final operations are
preserved."

A :class:`ScriptCapture` freezes an analyst's final-step function as
*source code* together with an environment specification and the digest
of its input data, and can re-execute it later in a controlled namespace
to check that the preserved code still reproduces the preserved result.
This is the code-preservation counterpart of the declarative
:class:`~repro.core.validate.PreservedAnalysisBundle` — the two
preservation modes the paper contrasts.
"""

from __future__ import annotations

import inspect
import math
import platform
import textwrap
from dataclasses import dataclass, field

from repro.core.archive import canonical_json, sha256_digest
from repro.errors import PreservationError, ValidationError

#: Names available to re-executed scripts. The namespace is small and
#: explicit: a preserved script may use basic Python plus ``math`` —
#: anything else must arrive through its inputs.
_SCRIPT_GLOBALS = {
    "__builtins__": {
        "abs": abs, "min": min, "max": max, "sum": sum, "len": len,
        "range": range, "enumerate": enumerate, "zip": zip,
        "sorted": sorted, "map": map, "filter": filter, "round": round,
        "float": float, "int": int, "str": str, "bool": bool,
        "list": list, "dict": dict, "tuple": tuple, "set": set,
        "any": any, "all": all, "reversed": reversed,
        "ValueError": ValueError, "ZeroDivisionError": ZeroDivisionError,
    },
    "math": math,
}


def environment_spec() -> dict:
    """The platform fingerprint stored alongside captured code."""
    return {
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine() or "unknown",
    }


@dataclass
class ScriptCapture:
    """A preserved final-analysis script with its inputs and outputs.

    ``source`` must define a function named ``final_analysis(events)``
    taking a list of JSON-like records and returning a JSON-serialisable
    result. ``input_digest``/``expected_digest`` pin the archived inputs
    and the result the original run produced.
    """

    capture_id: str
    source: str
    input_records: list[dict]
    expected_result: dict | list | float | int | str
    environment: dict = field(default_factory=environment_spec)

    ENTRY_POINT = "final_analysis"

    @classmethod
    def create(cls, capture_id: str, function,
               input_records: list[dict]) -> "ScriptCapture":
        """Capture a live function: extract source, run it, freeze both.

        The function must be named ``final_analysis`` (or is renamed in
        the stored source) and must only use the restricted namespace —
        :meth:`reexecute` on the fresh capture verifies this
        immediately, so an uncapturable script fails at capture time,
        not years later.
        """
        try:
            source = textwrap.dedent(inspect.getsource(function))
        except (OSError, TypeError) as exc:
            raise PreservationError(
                f"cannot extract source of {function!r}: {exc}"
            ) from exc
        if function.__name__ != cls.ENTRY_POINT:
            source = source.replace(f"def {function.__name__}(",
                                    f"def {cls.ENTRY_POINT}(", 1)
        # Run on a deep copy: the capture-time execution must not be
        # able to mutate the records being archived.
        import copy

        expected = function(copy.deepcopy(list(input_records)))
        capture = cls(
            capture_id=capture_id,
            source=source,
            input_records=copy.deepcopy(list(input_records)),
            expected_result=expected,
        )
        # Fail fast if the source does not survive the sandbox.
        outcome = capture.reexecute()
        if not outcome.passed:
            raise PreservationError(
                f"capture {capture_id!r} is not self-reproducing: "
                f"{outcome.detail}"
            )
        return capture

    @property
    def input_digest(self) -> str:
        """Content digest of the archived inputs."""
        return sha256_digest(canonical_json({"r": self.input_records}))

    @property
    def expected_digest(self) -> str:
        """Content digest of the archived result."""
        return sha256_digest(canonical_json({"r": self.expected_result}))

    def reexecute(self) -> "ReexecutionOutcome":
        """Run the preserved source on the preserved inputs and compare."""
        namespace = dict(_SCRIPT_GLOBALS)
        try:
            exec(compile(self.source, f"<capture {self.capture_id}>",
                         "exec"), namespace)
        except Exception as exc:
            return ReexecutionOutcome(
                capture_id=self.capture_id, passed=False,
                detail=f"source no longer compiles/executes: {exc}",
            )
        entry = namespace.get(self.ENTRY_POINT)
        if not callable(entry):
            return ReexecutionOutcome(
                capture_id=self.capture_id, passed=False,
                detail=f"no callable {self.ENTRY_POINT!r} in source",
            )
        try:
            # Deep-ish copy through JSON so the script cannot mutate
            # the archived inputs.
            import json

            inputs = json.loads(canonical_json(
                {"r": self.input_records}
            ).decode("utf-8"))["r"]
            result = entry(inputs)
        except Exception as exc:
            return ReexecutionOutcome(
                capture_id=self.capture_id, passed=False,
                detail=f"re-execution raised: {exc}",
            )
        actual_digest = sha256_digest(canonical_json({"r": result}))
        if actual_digest != self.expected_digest:
            return ReexecutionOutcome(
                capture_id=self.capture_id, passed=False,
                detail=(f"result drifted: {result!r} != "
                        f"{self.expected_result!r}"),
            )
        return ReexecutionOutcome(capture_id=self.capture_id,
                                  passed=True, detail="")

    def to_dict(self) -> dict:
        """Serialise for archive storage.

        Deep-copies the mutable members so the archived capture cannot
        be altered through the returned structure.
        """
        import copy

        return {
            "format": "repro-script-capture",
            "capture_id": self.capture_id,
            "source": self.source,
            "input_records": copy.deepcopy(self.input_records),
            "expected_result": copy.deepcopy(self.expected_result),
            "environment": dict(self.environment),
            "input_digest": self.input_digest,
            "expected_digest": self.expected_digest,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ScriptCapture":
        """Inverse of :meth:`to_dict`, verifying the stored digests."""
        if record.get("format") != "repro-script-capture":
            raise PreservationError(
                f"not a script capture: format={record.get('format')!r}"
            )
        capture = cls(
            capture_id=str(record["capture_id"]),
            source=str(record["source"]),
            input_records=list(record["input_records"]),
            expected_result=record["expected_result"],
            environment=dict(record.get("environment", {})),
        )
        stored_input = record.get("input_digest")
        if stored_input and stored_input != capture.input_digest:
            raise ValidationError(
                f"capture {capture.capture_id!r}: archived inputs fail "
                f"their digest"
            )
        stored_expected = record.get("expected_digest")
        if stored_expected and stored_expected != capture.expected_digest:
            raise ValidationError(
                f"capture {capture.capture_id!r}: archived result fails "
                f"its digest"
            )
        return capture


@dataclass(frozen=True)
class ReexecutionOutcome:
    """The verdict of re-running a preserved script."""

    capture_id: str
    passed: bool
    detail: str

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "PASS" if self.passed else "FAIL"
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.capture_id}: {status}{detail}"
