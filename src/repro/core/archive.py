"""The content-addressed preservation archive.

Artifacts are stored as canonical JSON blobs keyed by their SHA-256
digest; every retrieval re-verifies fixity. Metadata travels with the
content and is validated at ingest. An archive can be persisted to a
directory of plain files — no databases, no pickles — so the archive
itself satisfies the self-documentation standard it enforces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.canonical import canonical_document, canonical_json
from repro.core.metadata import PreservationMetadata
from repro.errors import ArchiveError, FixityError, PersistenceError

__all__ = ["ArchiveEntry", "PreservationArchive", "canonical_json",
           "sha256_digest"]


def sha256_digest(content: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(content).hexdigest()


@dataclass(frozen=True)
class ArchiveEntry:
    """Catalogue row for one stored artifact."""

    digest: str
    kind: str
    size_bytes: int
    metadata: PreservationMetadata

    def to_dict(self) -> dict:
        """Serialise for the archive catalogue file."""
        return {
            "digest": self.digest,
            "kind": self.kind,
            "size_bytes": self.size_bytes,
            "metadata": self.metadata.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ArchiveEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            digest=str(record["digest"]),
            kind=str(record["kind"]),
            size_bytes=int(record["size_bytes"]),
            metadata=PreservationMetadata.from_dict(record["metadata"]),
        )


class PreservationArchive:
    """In-memory content store with optional directory persistence."""

    def __init__(self, name: str = "archive") -> None:
        self.name = name
        self._blobs: dict[str, bytes] = {}
        self._entries: dict[str, ArchiveEntry] = {}

    # ------------------------------------------------------------------
    # Ingest / retrieve
    # ------------------------------------------------------------------

    def store(self, payload: dict, kind: str,
              metadata: PreservationMetadata) -> ArchiveEntry:
        """Store a JSON-serialisable payload; returns its catalogue entry.

        The metadata's technical checksum is *overwritten* with the true
        content digest, so a dishonest submission cannot poison fixity.
        Storing identical content twice is idempotent.
        """
        metadata.validate()
        content = canonical_json(payload)
        digest = sha256_digest(content)
        if digest in self._entries:
            return self._entries[digest]
        from repro.core.metadata import MetadataBlock

        metadata.blocks[MetadataBlock.TECHNICAL]["checksum"] = digest
        metadata.blocks[MetadataBlock.TECHNICAL]["size_bytes"] = len(content)
        entry = ArchiveEntry(
            digest=digest,
            kind=kind,
            size_bytes=len(content),
            metadata=metadata,
        )
        self._blobs[digest] = content
        self._entries[digest] = entry
        return entry

    def retrieve(self, digest: str) -> dict:
        """Fetch a payload, verifying fixity on the way out."""
        try:
            content = self._blobs[digest]
        except KeyError:
            raise ArchiveError(
                f"no artifact {digest[:12]}... in archive {self.name!r}"
            ) from None
        actual = sha256_digest(content)
        if actual != digest:
            raise FixityError(
                f"artifact {digest[:12]}... failed fixity: content "
                f"hashes to {actual[:12]}..."
            )
        return json.loads(content.decode("utf-8"))

    def entry(self, digest: str) -> ArchiveEntry:
        """The catalogue entry for a stored artifact."""
        try:
            return self._entries[digest]
        except KeyError:
            raise ArchiveError(
                f"no artifact {digest[:12]}... in archive {self.name!r}"
            ) from None

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def digests(self) -> list[str]:
        """All stored digests, sorted."""
        return sorted(self._entries)

    def entries_of_kind(self, kind: str) -> list[ArchiveEntry]:
        """Catalogue entries of one artifact kind."""
        return [entry for _, entry in sorted(self._entries.items())
                if entry.kind == kind]

    def total_size_bytes(self) -> int:
        """Summed stored content size."""
        return sum(entry.size_bytes for entry in self._entries.values())

    # ------------------------------------------------------------------
    # Fixity
    # ------------------------------------------------------------------

    def verify(self, digest: str) -> bool:
        """Fixity check of one artifact (False on corruption)."""
        try:
            self.retrieve(digest)
        except FixityError:
            return False
        return True

    def verify_all(self) -> dict[str, bool]:
        """Fixity check of the whole archive: digest -> ok."""
        return {digest: self.verify(digest) for digest in self.digests()}

    def _corrupt_for_testing(self, digest: str) -> None:
        """Deliberately damage one blob (failure-injection hook)."""
        if digest not in self._blobs:
            raise ArchiveError(f"no artifact {digest[:12]}... to corrupt")
        self._blobs[digest] = self._blobs[digest] + b" "

    # ------------------------------------------------------------------
    # Directory persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write the archive as a directory: catalogue + one file per blob."""
        directory = Path(directory)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            blobs_dir = directory / "blobs"
            blobs_dir.mkdir(exist_ok=True)
            catalogue = {
                "format": "repro-preservation-archive",
                "name": self.name,
                "entries": [entry.to_dict()
                            for _, entry in sorted(self._entries.items())],
            }
            (directory / "catalogue.json").write_bytes(
                canonical_document(catalogue))
            # lint: ignore[DAS403] -- each blob lands in its own
            # digest-named file; write order never reaches the bytes
            # of any stored artifact
            for digest, content in self._blobs.items():
                (blobs_dir / digest).write_bytes(content)
        except OSError as exc:
            raise PersistenceError(
                f"cannot save archive to {directory}: {exc}"
            )

    @classmethod
    def load(cls, directory: str | Path) -> "PreservationArchive":
        """Read an archive directory written by :meth:`save`."""
        directory = Path(directory)
        catalogue_path = directory / "catalogue.json"
        try:
            with catalogue_path.open("r", encoding="utf-8") as handle:
                catalogue = json.load(handle)
        except OSError as exc:
            raise PersistenceError(
                f"cannot read archive catalogue {catalogue_path}: {exc}"
            )
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"archive catalogue {catalogue_path} is not valid JSON: "
                f"{exc}"
            )
        if catalogue.get("format") != "repro-preservation-archive":
            raise PersistenceError(
                f"{directory} is not a preservation archive"
            )
        archive = cls(name=str(catalogue.get("name", "archive")))
        blobs_dir = directory / "blobs"
        for entry_record in catalogue.get("entries", []):
            entry = ArchiveEntry.from_dict(entry_record)
            blob_path = blobs_dir / entry.digest
            try:
                content = blob_path.read_bytes()
            except OSError as exc:
                raise PersistenceError(
                    f"archive blob {blob_path} unreadable: {exc}"
                )
            archive._blobs[entry.digest] = content
            archive._entries[entry.digest] = entry
        return archive
