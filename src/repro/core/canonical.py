"""The one canonical JSON encoder behind every byte-stable artifact.

Everything this library promises to replay byte-identically — archive
blobs and catalogues, dedup keys, request-event logs, run reports,
closure manifests, dataset files, lint reports — must go through a
*single* encoder, because two call sites that each spell out their own
``json.dumps(...)`` arguments will eventually disagree on one of them
and the byte-determinism contract dies silently. Three forms cover
every artifact:

- :func:`canonical_json` — the compact form (sorted keys, fixed
  separators, UTF-8 bytes) used for content digests, dedup keys, and
  JSON-lines event logs;
- :func:`canonical_text` — the human-readable form (sorted keys,
  fixed indent) used where an artifact is printed;
- :func:`canonical_document` — :func:`canonical_text` plus the single
  trailing newline every artifact *file* ends with.

The determinism linter (:mod:`repro.lint.det`, rule DAS401) enforces
the funnel statically: a ``json.dumps`` without ``sort_keys=True`` on
any path reachable from a registered replay root is a finding.
"""

from __future__ import annotations

import json

#: The compact separator pair every digestable encoding uses.
CANONICAL_SEPARATORS = (",", ":")


def canonical_json(payload) -> bytes:
    """Compact deterministic encoding used for digests and logs."""
    return json.dumps(payload, sort_keys=True,
                      separators=CANONICAL_SEPARATORS).encode("utf-8")


def canonical_text(payload, *, indent: int | None = 1) -> str:
    """Readable deterministic encoding: sorted keys, fixed indent."""
    return json.dumps(payload, indent=indent, sort_keys=True)


def canonical_document(payload, *, indent: int = 1) -> bytes:
    """Artifact-file bytes: :func:`canonical_text` plus one LF."""
    return (canonical_text(payload, indent=indent) + "\n").encode("utf-8")
