"""Les Houches Recommendation 1a: structured analysis descriptions.

"Provide a clear, explicit description of the analysis in publications.
In particular, the most crucial information such as basic object
definitions and event selection should be clearly displayed ...
preferably in tabular form, and kinematic variables utilized should be
unambiguously defined."

An :class:`AnalysisDescription` is that description as data: object
definitions, an ordered event selection, kinematic-variable definitions,
and encapsulated efficiency functions — all serialisable, all executable
against AOD events without any analyst code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datamodel.event import AODEvent
from repro.datamodel.skimslim import (
    AndCut,
    CountCut,
    SelectionCut,
    SkimSpec,
    cut_from_dict,
)
from repro.errors import PreservationError


@dataclass(frozen=True)
class ObjectDefinition:
    """A basic object definition: what counts as an electron/muon/jet."""

    object_type: str
    min_pt: float
    max_abs_eta: float
    max_isolation: float | None = None
    extra_requirements: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.object_type not in ("electron", "muon", "photon", "jet"):
            raise PreservationError(
                f"unknown object type {self.object_type!r}"
            )

    def selects(self, candidate) -> bool:
        """Apply the definition to a candidate physics object."""
        if candidate.p4.pt < self.min_pt:
            return False
        if abs(candidate.p4.eta) > self.max_abs_eta:
            return False
        if self.max_isolation is not None:
            isolation = getattr(candidate, "isolation", 0.0)
            if isolation > self.max_isolation:
                return False
        return True

    def to_dict(self) -> dict:
        """Serialise for the analysis database."""
        record = {
            "object_type": self.object_type,
            "min_pt": self.min_pt,
            "max_abs_eta": self.max_abs_eta,
            "extra_requirements": list(self.extra_requirements),
        }
        if self.max_isolation is not None:
            record["max_isolation"] = self.max_isolation
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ObjectDefinition":
        """Inverse of :meth:`to_dict`."""
        return cls(
            object_type=str(record["object_type"]),
            min_pt=float(record["min_pt"]),
            max_abs_eta=float(record["max_abs_eta"]),
            max_isolation=(float(record["max_isolation"])
                           if "max_isolation" in record else None),
            extra_requirements=tuple(
                str(r) for r in record.get("extra_requirements", [])
            ),
        )

    def render_row(self) -> str:
        """One row of the publication-style object table."""
        isolation = (f", iso < {self.max_isolation}"
                     if self.max_isolation is not None else "")
        return (f"{self.object_type}: pt > {self.min_pt} GeV, "
                f"|eta| < {self.max_abs_eta}{isolation}")


@dataclass(frozen=True)
class KinematicVariable:
    """An unambiguous kinematic-variable definition."""

    name: str
    definition: str
    units: str

    def to_dict(self) -> dict:
        """Serialise for the analysis database."""
        return {"name": self.name, "definition": self.definition,
                "units": self.units}

    @classmethod
    def from_dict(cls, record: dict) -> "KinematicVariable":
        """Inverse of :meth:`to_dict`."""
        return cls(str(record["name"]), str(record["definition"]),
                   str(record["units"]))


@dataclass(frozen=True)
class EventSelection:
    """An ordered, named cut flow."""

    #: (cut name, cut) pairs in application order.
    cuts: tuple[tuple[str, SelectionCut], ...]

    def passes(self, event: AODEvent) -> bool:
        """Apply every cut in order."""
        return all(cut.passes(event) for _, cut in self.cuts)

    def cutflow(self, events: list[AODEvent]) -> list[tuple[str, int]]:
        """Sequential surviving-event counts — the publication cut table."""
        survivors = list(events)
        flow = [("all", len(survivors))]
        for name, cut in self.cuts:
            survivors = [event for event in survivors if cut.passes(event)]
            flow.append((name, len(survivors)))
        return flow

    def to_skim_spec(self, name: str) -> SkimSpec:
        """The selection as a single preservable skim."""
        return SkimSpec(name=name,
                        cut=AndCut(tuple(cut for _, cut in self.cuts)))

    def to_dict(self) -> dict:
        """Serialise for the analysis database."""
        return {"cuts": [{"name": name, "cut": cut.to_dict()}
                         for name, cut in self.cuts]}

    @classmethod
    def from_dict(cls, record: dict) -> "EventSelection":
        """Inverse of :meth:`to_dict`."""
        return cls(cuts=tuple(
            (str(item["name"]), cut_from_dict(item["cut"]))
            for item in record.get("cuts", [])
        ))


@dataclass
class EfficiencyFunction:
    """A "well-encapsulated function": a binned 1-D efficiency lookup.

    Evaluation clamps to the first/last bin outside the range, which is
    the conventional reading of published efficiency tables.
    """

    name: str
    variable: str
    edges: list[float]
    values: list[float]

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.values) + 1:
            raise PreservationError(
                f"efficiency {self.name!r}: {len(self.edges)} edges need "
                f"{len(self.edges) - 1} values, got {len(self.values)}"
            )
        if any(not 0.0 <= v <= 1.0 for v in self.values):
            raise PreservationError(
                f"efficiency {self.name!r} has values outside [0, 1]"
            )

    def __call__(self, x: float) -> float:
        """Evaluate the efficiency at ``x``."""
        index = int(np.searchsorted(self.edges, x, side="right")) - 1
        index = min(max(index, 0), len(self.values) - 1)
        return self.values[index]

    def to_dict(self) -> dict:
        """Serialise for the analysis database."""
        return {
            "name": self.name,
            "variable": self.variable,
            "edges": list(self.edges),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "EfficiencyFunction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(record["name"]),
            variable=str(record["variable"]),
            edges=[float(e) for e in record["edges"]],
            values=[float(v) for v in record["values"]],
        )


@dataclass
class AnalysisDescription:
    """The complete Recommendation-1a description of one analysis."""

    analysis_id: str
    title: str
    experiment: str
    inspire_id: str = ""
    final_state: str = ""
    objects: list[ObjectDefinition] = field(default_factory=list)
    selection: EventSelection = field(
        default_factory=lambda: EventSelection(cuts=())
    )
    variables: list[KinematicVariable] = field(default_factory=list)
    efficiencies: list[EfficiencyFunction] = field(default_factory=list)

    def render_tables(self) -> str:
        """The publication-style tabular rendering (Rec. 1a's "preferably
        in tabular form")."""
        lines = [f"Analysis: {self.title} ({self.analysis_id})",
                 "", "Object definitions:"]
        for definition in self.objects:
            lines.append(f"  - {definition.render_row()}")
        lines.append("")
        lines.append("Event selection:")
        for name, cut in self.selection.cuts:
            lines.append(f"  {name}: {cut.describe()}")
        if self.variables:
            lines.append("")
            lines.append("Kinematic variables:")
            for variable in self.variables:
                lines.append(
                    f"  {variable.name} [{variable.units}] = "
                    f"{variable.definition}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Serialise for the analysis database and archives."""
        return {
            "format": "repro-analysis-description",
            "analysis_id": self.analysis_id,
            "title": self.title,
            "experiment": self.experiment,
            "inspire_id": self.inspire_id,
            "final_state": self.final_state,
            "objects": [o.to_dict() for o in self.objects],
            "selection": self.selection.to_dict(),
            "variables": [v.to_dict() for v in self.variables],
            "efficiencies": [e.to_dict() for e in self.efficiencies],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "AnalysisDescription":
        """Inverse of :meth:`to_dict`."""
        if record.get("format") != "repro-analysis-description":
            raise PreservationError(
                f"not an analysis description: "
                f"format={record.get('format')!r}"
            )
        return cls(
            analysis_id=str(record["analysis_id"]),
            title=str(record["title"]),
            experiment=str(record["experiment"]),
            inspire_id=str(record.get("inspire_id", "")),
            final_state=str(record.get("final_state", "")),
            objects=[ObjectDefinition.from_dict(o)
                     for o in record.get("objects", [])],
            selection=EventSelection.from_dict(
                record.get("selection", {"cuts": []})
            ),
            variables=[KinematicVariable.from_dict(v)
                       for v in record.get("variables", [])],
            efficiencies=[EfficiencyFunction.from_dict(e)
                          for e in record.get("efficiencies", [])],
        )

    def object_count_cuts(self) -> list[CountCut]:
        """Derive per-object count cuts from the object definitions.

        Convenience for building selections that require "at least one
        object passing each definition".
        """
        return [
            CountCut(
                collection=f"{definition.object_type}s",
                min_count=1,
                min_pt=definition.min_pt,
                max_abs_eta=definition.max_abs_eta,
            )
            for definition in self.objects
        ]
