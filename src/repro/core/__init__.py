"""The DASPOS preservation framework — the library's core contribution.

Ties the substrates together into the preservation architecture the
workshop set out to scope:

- :mod:`repro.core.levels` — the DPHEP Level 1-4 taxonomy and a
  classifier for every artifact kind in this library (workshop goal i/ii);
- :mod:`repro.core.metadata` — the preliminary preservation metadata set
  (workshop goal iii);
- :mod:`repro.core.archive` + :mod:`repro.core.package` — a
  content-addressed, fixity-checked archive with OAIS-style
  SIP -> AIP -> DIP packaging;
- :mod:`repro.core.describe` + :mod:`repro.core.analysisdb` — the Les
  Houches Recommendation 1a/1b analysis descriptions and the common
  analysis database;
- :mod:`repro.core.validate` — re-execution validation of preserved
  analyses against archived inputs and outputs;
- :mod:`repro.core.migrate` — platform-migration simulation and
  re-validation, quantifying the maintenance cost the paper attributes
  to full-stack (RECAST-style) preservation.
"""

from repro.core.levels import (
    DPHEPLevel,
    classify_artifact,
    classify_tier,
    level_description,
    required_level,
    supports_use_case,
    use_cases,
)
from repro.core.metadata import MetadataBlock, PreservationMetadata
from repro.core.archive import ArchiveEntry, PreservationArchive
from repro.core.package import (
    ArchivalPackage,
    DisseminationPackage,
    SubmissionPackage,
    disseminate,
    ingest,
)
from repro.core.describe import (
    AnalysisDescription,
    EfficiencyFunction,
    EventSelection,
    KinematicVariable,
    ObjectDefinition,
)
from repro.core.analysisdb import AnalysisDatabase
from repro.core.validate import (
    PreservedAnalysisBundle,
    ValidationOutcome,
    revalidate,
)
from repro.core.capture import (
    ReexecutionOutcome,
    ScriptCapture,
    environment_spec,
)
from repro.core.inventory import (
    ArchiveInventory,
    LevelInventory,
    take_inventory,
)
from repro.core.suite import SuiteReport, run_validation_suite
from repro.core.migrate import (
    DropAuxiliaryMigration,
    FieldRenameMigration,
    LosslessMigration,
    Migration,
    PrecisionLossMigration,
    apply_migration,
)

__all__ = [
    "DPHEPLevel",
    "classify_artifact",
    "classify_tier",
    "level_description",
    "required_level",
    "supports_use_case",
    "use_cases",
    "MetadataBlock",
    "PreservationMetadata",
    "ArchiveEntry",
    "PreservationArchive",
    "SubmissionPackage",
    "ArchivalPackage",
    "DisseminationPackage",
    "ingest",
    "disseminate",
    "ObjectDefinition",
    "EventSelection",
    "KinematicVariable",
    "EfficiencyFunction",
    "AnalysisDescription",
    "AnalysisDatabase",
    "PreservedAnalysisBundle",
    "ValidationOutcome",
    "revalidate",
    "ScriptCapture",
    "ReexecutionOutcome",
    "environment_spec",
    "ArchiveInventory",
    "LevelInventory",
    "take_inventory",
    "SuiteReport",
    "run_validation_suite",
    "Migration",
    "LosslessMigration",
    "FieldRenameMigration",
    "PrecisionLossMigration",
    "DropAuxiliaryMigration",
    "apply_migration",
]
