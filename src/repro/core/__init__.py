"""The DASPOS preservation framework — the library's core contribution.

Ties the substrates together into the preservation architecture the
workshop set out to scope:

- :mod:`repro.core.levels` — the DPHEP Level 1-4 taxonomy and a
  classifier for every artifact kind in this library (workshop goal i/ii);
- :mod:`repro.core.metadata` — the preliminary preservation metadata set
  (workshop goal iii);
- :mod:`repro.core.archive` + :mod:`repro.core.package` — a
  content-addressed, fixity-checked archive with OAIS-style
  SIP -> AIP -> DIP packaging;
- :mod:`repro.core.describe` + :mod:`repro.core.analysisdb` — the Les
  Houches Recommendation 1a/1b analysis descriptions and the common
  analysis database;
- :mod:`repro.core.validate` — re-execution validation of preserved
  analyses against archived inputs and outputs;
- :mod:`repro.core.migrate` — platform-migration simulation and
  re-validation, quantifying the maintenance cost the paper attributes
  to full-stack (RECAST-style) preservation.

The public names below resolve lazily (PEP 562): substrate packages
(:mod:`repro.obs`, :mod:`repro.datamodel`) import the dependency-free
:mod:`repro.core.canonical` encoder, so this ``__init__`` must not
eagerly pull in :mod:`repro.core.describe` and friends, which import
those very substrates back.
"""

from __future__ import annotations

import importlib

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "DPHEPLevel": "repro.core.levels",
    "classify_artifact": "repro.core.levels",
    "classify_tier": "repro.core.levels",
    "level_description": "repro.core.levels",
    "required_level": "repro.core.levels",
    "supports_use_case": "repro.core.levels",
    "use_cases": "repro.core.levels",
    "MetadataBlock": "repro.core.metadata",
    "PreservationMetadata": "repro.core.metadata",
    "ArchiveEntry": "repro.core.archive",
    "PreservationArchive": "repro.core.archive",
    "SubmissionPackage": "repro.core.package",
    "ArchivalPackage": "repro.core.package",
    "DisseminationPackage": "repro.core.package",
    "ingest": "repro.core.package",
    "disseminate": "repro.core.package",
    "canonical_json": "repro.core.canonical",
    "canonical_text": "repro.core.canonical",
    "canonical_document": "repro.core.canonical",
    "ObjectDefinition": "repro.core.describe",
    "EventSelection": "repro.core.describe",
    "KinematicVariable": "repro.core.describe",
    "EfficiencyFunction": "repro.core.describe",
    "AnalysisDescription": "repro.core.describe",
    "AnalysisDatabase": "repro.core.analysisdb",
    "PreservedAnalysisBundle": "repro.core.validate",
    "ValidationOutcome": "repro.core.validate",
    "revalidate": "repro.core.validate",
    "ScriptCapture": "repro.core.capture",
    "ReexecutionOutcome": "repro.core.capture",
    "environment_spec": "repro.core.capture",
    "ArchiveInventory": "repro.core.inventory",
    "LevelInventory": "repro.core.inventory",
    "take_inventory": "repro.core.inventory",
    "SuiteReport": "repro.core.suite",
    "run_validation_suite": "repro.core.suite",
    "Migration": "repro.core.migrate",
    "LosslessMigration": "repro.core.migrate",
    "FieldRenameMigration": "repro.core.migrate",
    "PrecisionLossMigration": "repro.core.migrate",
    "DropAuxiliaryMigration": "repro.core.migrate",
    "apply_migration": "repro.core.migrate",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve a public name or submodule on first access."""
    target = _EXPORTS.get(name)
    if target is not None:
        value = getattr(importlib.import_module(target), name)
        globals()[name] = value
        return value
    try:
        return importlib.import_module(f"repro.core.{name}")
    except ModuleNotFoundError:
        raise AttributeError(
            f"module 'repro.core' has no attribute {name!r}"
        ) from None


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
