"""OAIS-style packaging: SIP -> AIP -> DIP.

A producer assembles a :class:`SubmissionPackage` (SIP) of named
payloads; :func:`ingest` validates it and stores every payload in the
archive, producing an :class:`ArchivalPackage` (AIP) manifest;
:func:`disseminate` extracts a :class:`DisseminationPackage` (DIP)
filtered by the consumer's access level — e.g. an outreach DIP contains
only the Level-2 payloads of a full AIP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.archive import ArchiveEntry, PreservationArchive
from repro.core.levels import DPHEPLevel, classify_artifact
from repro.core.metadata import PreservationMetadata
from repro.errors import PreservationError


@dataclass
class SubmissionPackage:
    """A SIP: named payloads plus shared descriptive context."""

    title: str
    creator: str
    experiment: str
    created: str
    access_policy: str = "collaboration"
    #: name -> (kind, payload dict)
    payloads: dict[str, tuple[str, dict]] = field(default_factory=dict)

    def add(self, name: str, kind: str, payload: dict) -> None:
        """Attach one payload; kinds must be classifiable."""
        if name in self.payloads:
            raise PreservationError(
                f"SIP {self.title!r} already has payload {name!r}"
            )
        classify_artifact(kind)  # validates the kind
        self.payloads[name] = (kind, dict(payload))

    def __len__(self) -> int:
        return len(self.payloads)


@dataclass
class ArchivalPackage:
    """An AIP: the ingest manifest mapping payload names to digests."""

    package_id: str
    title: str
    experiment: str
    #: name -> (kind, digest)
    members: dict[str, tuple[str, str]] = field(default_factory=dict)

    def digest_for(self, name: str) -> str:
        """The archive digest of one member."""
        try:
            return self.members[name][1]
        except KeyError:
            raise PreservationError(
                f"AIP {self.package_id!r} has no member {name!r}; "
                f"members: {sorted(self.members)}"
            ) from None

    def members_at_level(self, maximum_level: DPHEPLevel
                         ) -> dict[str, tuple[str, str]]:
        """Members whose kind classifies at or below a level."""
        return {
            name: (kind, digest)
            for name, (kind, digest) in self.members.items()
            if classify_artifact(kind) <= maximum_level
        }

    def to_dict(self) -> dict:
        """Serialise the manifest (itself archivable)."""
        return {
            "package_id": self.package_id,
            "title": self.title,
            "experiment": self.experiment,
            "members": {name: list(member)
                        for name, member in self.members.items()},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ArchivalPackage":
        """Inverse of :meth:`to_dict`."""
        return cls(
            package_id=str(record["package_id"]),
            title=str(record["title"]),
            experiment=str(record["experiment"]),
            members={name: (str(member[0]), str(member[1]))
                     for name, member in record.get("members", {}).items()},
        )


@dataclass
class DisseminationPackage:
    """A DIP: retrieved payloads for one consumer profile."""

    package_id: str
    profile: str
    #: name -> payload dict (fixity-verified at extraction).
    payloads: dict[str, dict] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.payloads)


def ingest(sip: SubmissionPackage, archive: PreservationArchive,
           package_id: str) -> ArchivalPackage:
    """Validate and store a SIP; returns the AIP manifest.

    Every payload gets its own metadata record derived from the SIP's
    shared context; the manifest itself is stored too, so the AIP is
    discoverable from the archive alone.
    """
    if not sip.payloads:
        raise PreservationError(f"SIP {sip.title!r} is empty")
    aip = ArchivalPackage(
        package_id=package_id,
        title=sip.title,
        experiment=sip.experiment,
    )
    for name, (kind, payload) in sorted(sip.payloads.items()):
        metadata = PreservationMetadata.build(
            title=f"{sip.title} / {name}",
            creator=sip.creator,
            experiment=sip.experiment,
            created=sip.created,
            artifact_format=kind,
            size_bytes=0,  # overwritten at store time
            checksum="",   # overwritten at store time
            producer="sip-ingest",
            parents=[],
            access_policy=sip.access_policy,
        )
        entry: ArchiveEntry = archive.store(payload, kind, metadata)
        aip.members[name] = (kind, entry.digest)
    manifest_metadata = PreservationMetadata.build(
        title=f"{sip.title} / manifest",
        creator=sip.creator,
        experiment=sip.experiment,
        created=sip.created,
        artifact_format="aip-manifest",
        size_bytes=0,
        checksum="",
        producer="sip-ingest",
        access_policy=sip.access_policy,
    )
    archive.store(aip.to_dict(), "hepdata_record", manifest_metadata)
    return aip


#: Consumer profiles and the maximum level their DIPs include.
_PROFILES = {
    "outreach": DPHEPLevel.SIMPLIFIED,
    "phenomenologist": DPHEPLevel.SIMPLIFIED,
    "collaborator": DPHEPLevel.ANALYSIS,
    "archivist": DPHEPLevel.FULL,
}


def disseminate(archive: PreservationArchive, aip: ArchivalPackage,
                profile: str) -> DisseminationPackage:
    """Extract the payloads a consumer profile may receive."""
    try:
        maximum_level = _PROFILES[profile]
    except KeyError:
        raise PreservationError(
            f"unknown dissemination profile {profile!r}; known: "
            f"{sorted(_PROFILES)}"
        ) from None
    dip = DisseminationPackage(package_id=aip.package_id, profile=profile)
    for name, (_, digest) in sorted(
        aip.members_at_level(maximum_level).items()
    ):
        dip.payloads[name] = archive.retrieve(digest)
    return dip


def dissemination_profiles() -> list[str]:
    """All known consumer profiles, sorted."""
    return sorted(_PROFILES)
