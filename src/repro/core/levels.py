"""The DPHEP preservation-level taxonomy."""

from __future__ import annotations

import enum

from repro.datamodel.tiers import DataTier
from repro.errors import PreservationError


class DPHEPLevel(enum.IntEnum):
    """DPHEP data-preservation levels (low number = most abstract)."""

    #: Additional documentation and data associated with publications.
    PUBLICATION = 1
    #: Simplified formats for outreach and simple re-analysis.
    SIMPLIFIED = 2
    #: Reconstructed data plus the analysis-level software.
    ANALYSIS = 3
    #: Raw data plus full reconstruction/simulation capability.
    FULL = 4


_LEVEL_DESCRIPTIONS = {
    DPHEPLevel.PUBLICATION: (
        "Publication-level products: result tables, cut descriptions, "
        "efficiency grids, and other additional data attached to papers "
        "(HepData records, analysis descriptions)."
    ),
    DPHEPLevel.SIMPLIFIED: (
        "Simplified-format data and encapsulated analyses usable without "
        "experiment software: outreach files, event-display records, "
        "truth-level (RIVET-style) analysis code."
    ),
    DPHEPLevel.ANALYSIS: (
        "Analysis-level reconstructed data (AOD, ntuples) together with "
        "the software needed to analyse it."
    ),
    DPHEPLevel.FULL: (
        "Raw data and the complete processing capability: simulation, "
        "digitisation, reconstruction, conditions."
    ),
}

#: Artifact-kind names accepted by :func:`classify_artifact`.
_ARTIFACT_LEVELS = {
    "hepdata_record": DPHEPLevel.PUBLICATION,
    "analysis_description": DPHEPLevel.PUBLICATION,
    "data_table": DPHEPLevel.PUBLICATION,
    "efficiency_grid": DPHEPLevel.PUBLICATION,
    "level2_file": DPHEPLevel.SIMPLIFIED,
    "display_record": DPHEPLevel.SIMPLIFIED,
    "rivet_analysis": DPHEPLevel.SIMPLIFIED,
    "reference_data": DPHEPLevel.SIMPLIFIED,
    "aod_dataset": DPHEPLevel.ANALYSIS,
    "ntuple_dataset": DPHEPLevel.ANALYSIS,
    "skim_spec": DPHEPLevel.ANALYSIS,
    "slim_spec": DPHEPLevel.ANALYSIS,
    "raw_dataset": DPHEPLevel.FULL,
    "conditions_snapshot": DPHEPLevel.FULL,
    "recast_backend": DPHEPLevel.FULL,
    "workflow_chain": DPHEPLevel.FULL,
}

#: What each re-use use case minimally requires.
_USE_CASE_LEVELS = {
    "outreach": DPHEPLevel.SIMPLIFIED,
    "generator_validation": DPHEPLevel.SIMPLIFIED,
    "phenomenology_reinterpretation": DPHEPLevel.PUBLICATION,
    "full_reinterpretation": DPHEPLevel.FULL,
    "internal_reanalysis": DPHEPLevel.ANALYSIS,
    "future_comparison": DPHEPLevel.ANALYSIS,
    "reprocessing": DPHEPLevel.FULL,
}


def level_description(level: DPHEPLevel) -> str:
    """Human-readable description of a level."""
    return _LEVEL_DESCRIPTIONS[level]


def classify_tier(tier: DataTier) -> DPHEPLevel:
    """The preservation level a data tier belongs to."""
    return DPHEPLevel(tier.dphep_level)


def classify_artifact(kind: str) -> DPHEPLevel:
    """The preservation level of a named artifact kind."""
    try:
        return _ARTIFACT_LEVELS[kind]
    except KeyError:
        raise PreservationError(
            f"unknown artifact kind {kind!r}; known: "
            f"{sorted(_ARTIFACT_LEVELS)}"
        ) from None


def required_level(use_case: str) -> DPHEPLevel:
    """The minimum preservation level a use case requires."""
    try:
        return _USE_CASE_LEVELS[use_case]
    except KeyError:
        raise PreservationError(
            f"unknown use case {use_case!r}; known: "
            f"{sorted(_USE_CASE_LEVELS)}"
        ) from None


def supports_use_case(available_level: DPHEPLevel, use_case: str) -> bool:
    """True when data preserved at ``available_level`` serves a use case.

    Higher levels subsume lower ones: Level 4 supports everything,
    Level 1 only publication-based work.
    """
    return available_level >= required_level(use_case)


def use_cases() -> list[str]:
    """All known use cases, sorted."""
    return sorted(_USE_CASE_LEVELS)
