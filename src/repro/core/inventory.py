"""Curator's archive inventory by DPHEP preservation level.

Workshop goal (i) asks which data tiers the use cases need; a curator's
first question of an existing archive is the converse: *what do we hold,
at which level, and which use cases does that support?* This module
answers it from an archive's catalogue alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.archive import PreservationArchive
from repro.core.levels import (
    DPHEPLevel,
    classify_artifact,
    supports_use_case,
    use_cases,
)
from repro.kinematics.units import human_bytes


@dataclass
class LevelInventory:
    """Holdings at one DPHEP level."""

    level: DPHEPLevel
    n_artifacts: int = 0
    total_bytes: int = 0
    kinds: dict[str, int] = field(default_factory=dict)


@dataclass
class ArchiveInventory:
    """The per-level breakdown of an archive plus use-case coverage."""

    archive_name: str
    levels: dict[DPHEPLevel, LevelInventory]
    unclassified: int = 0

    @property
    def highest_level_held(self) -> DPHEPLevel | None:
        """The most complete preservation level with any holdings."""
        held = [level for level, inventory in self.levels.items()
                if inventory.n_artifacts > 0]
        return max(held) if held else None

    def supported_use_cases(self) -> list[str]:
        """Use cases the archive's holdings can serve."""
        highest = self.highest_level_held
        if highest is None:
            return []
        return [use_case for use_case in use_cases()
                if supports_use_case(highest, use_case)]

    def render(self) -> str:
        """Plain-text curator report."""
        lines = [f"Archive inventory — {self.archive_name}", ""]
        for level in sorted(self.levels, reverse=True):
            inventory = self.levels[level]
            kinds = ", ".join(
                f"{kind}({count})"
                for kind, count in sorted(inventory.kinds.items())
            ) or "-"
            lines.append(
                f"  Level {int(level)} ({level.name.lower():12s}): "
                f"{inventory.n_artifacts:4d} artifacts, "
                f"{human_bytes(inventory.total_bytes):>10s}  [{kinds}]"
            )
        if self.unclassified:
            lines.append(f"  unclassified: {self.unclassified}")
        supported = self.supported_use_cases()
        lines.append("")
        lines.append("Supported use cases: "
                     + (", ".join(supported) if supported else "none"))
        return "\n".join(lines)


def take_inventory(archive: PreservationArchive) -> ArchiveInventory:
    """Classify every archived artifact onto its DPHEP level."""
    levels = {level: LevelInventory(level=level) for level in DPHEPLevel}
    unclassified = 0
    for digest in archive.digests():
        entry = archive.entry(digest)
        try:
            level = classify_artifact(entry.kind)
        except Exception:
            unclassified += 1
            continue
        inventory = levels[level]
        inventory.n_artifacts += 1
        inventory.total_bytes += entry.size_bytes
        inventory.kinds[entry.kind] = (
            inventory.kinds.get(entry.kind, 0) + 1
        )
    return ArchiveInventory(
        archive_name=archive.name,
        levels=levels,
        unclassified=unclassified,
    )
