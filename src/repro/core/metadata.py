"""The preliminary preservation metadata set (workshop goal iii).

Four blocks, modelled on library-science practice:

- **descriptive** — what the artifact is and who made it;
- **provenance** — how it was produced (links into the provenance graph);
- **technical** — how to read it (format, size, checksum);
- **rights** — who may access it, and when (embargo/licensing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MetadataError


class MetadataBlock(enum.Enum):
    """The four metadata blocks."""

    DESCRIPTIVE = "descriptive"
    PROVENANCE = "provenance"
    TECHNICAL = "technical"
    RIGHTS = "rights"


#: Required fields per block.
_REQUIRED: dict[MetadataBlock, tuple[str, ...]] = {
    MetadataBlock.DESCRIPTIVE: ("title", "creator", "experiment",
                                "created"),
    MetadataBlock.PROVENANCE: ("producer", "parents"),
    MetadataBlock.TECHNICAL: ("format", "size_bytes", "checksum"),
    MetadataBlock.RIGHTS: ("access_policy",),
}

#: Recognised access policies, most to least open.
ACCESS_POLICIES = ("public", "registered", "collaboration", "embargoed")


@dataclass
class PreservationMetadata:
    """Metadata for one preserved artifact, organised in blocks."""

    blocks: dict[MetadataBlock, dict] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        title: str,
        creator: str,
        experiment: str,
        created: str,
        artifact_format: str,
        size_bytes: int,
        checksum: str,
        producer: str = "unknown",
        parents: list[str] | None = None,
        access_policy: str = "collaboration",
        **extra: str,
    ) -> "PreservationMetadata":
        """Convenience constructor covering every required field."""
        metadata = cls(blocks={
            MetadataBlock.DESCRIPTIVE: {
                "title": title,
                "creator": creator,
                "experiment": experiment,
                "created": created,
            },
            MetadataBlock.PROVENANCE: {
                "producer": producer,
                "parents": list(parents) if parents else [],
            },
            MetadataBlock.TECHNICAL: {
                "format": artifact_format,
                "size_bytes": size_bytes,
                "checksum": checksum,
            },
            MetadataBlock.RIGHTS: {
                "access_policy": access_policy,
            },
        })
        for key, value in extra.items():
            metadata.blocks[MetadataBlock.DESCRIPTIVE][key] = value
        metadata.validate()
        return metadata

    def validate(self) -> None:
        """Check block completeness; raises :class:`MetadataError`."""
        problems = []
        for block, required_fields in _REQUIRED.items():
            block_content = self.blocks.get(block)
            if block_content is None:
                problems.append(f"missing block {block.value!r}")
                continue
            for field_name in required_fields:
                if field_name not in block_content:
                    problems.append(
                        f"block {block.value!r} missing field "
                        f"{field_name!r}"
                    )
        rights = self.blocks.get(MetadataBlock.RIGHTS, {})
        policy = rights.get("access_policy")
        if policy is not None and policy not in ACCESS_POLICIES:
            problems.append(
                f"unknown access policy {policy!r}; known: "
                f"{ACCESS_POLICIES}"
            )
        if problems:
            raise MetadataError("; ".join(problems))

    def get(self, block: MetadataBlock, field_name: str):
        """Fetch one field from one block."""
        try:
            return self.blocks[block][field_name]
        except KeyError:
            raise MetadataError(
                f"no field {field_name!r} in block {block.value!r}"
            ) from None

    @property
    def title(self) -> str:
        """The descriptive title."""
        return str(self.get(MetadataBlock.DESCRIPTIVE, "title"))

    @property
    def checksum(self) -> str:
        """The technical checksum."""
        return str(self.get(MetadataBlock.TECHNICAL, "checksum"))

    @property
    def access_policy(self) -> str:
        """The rights access policy."""
        return str(self.get(MetadataBlock.RIGHTS, "access_policy"))

    def to_dict(self) -> dict:
        """Serialise for archive storage."""
        return {block.value: dict(content)
                for block, content in self.blocks.items()}

    @classmethod
    def from_dict(cls, record: dict) -> "PreservationMetadata":
        """Inverse of :meth:`to_dict` (validates on load)."""
        blocks = {}
        for block_name, content in record.items():
            try:
                block = MetadataBlock(block_name)
            except ValueError:
                raise MetadataError(
                    f"unknown metadata block {block_name!r}"
                ) from None
            blocks[block] = dict(content)
        metadata = cls(blocks=blocks)
        metadata.validate()
        return metadata
