"""Efficiency grids over parameter spaces.

HepData's reactions database holds "acceptance/efficiency grids in mass
parameter spaces for Supersymmetry searches"; RECAST responses quote
signal efficiencies for new models. :class:`EfficiencyGrid` is that
payload: pass/total counts on a 2-D grid with Wilson-interval errors.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import StatsError


def binomial_interval(n_pass: int, n_total: int,
                      z: float = 1.0) -> tuple[float, float]:
    """Wilson score interval for a binomial efficiency.

    Returns ``(low, high)`` at ``z`` standard deviations (z=1 ~ 68%).
    """
    if n_total <= 0:
        raise StatsError("binomial interval needs n_total > 0")
    if not 0 <= n_pass <= n_total:
        raise StatsError(f"invalid counts: {n_pass}/{n_total}")
    p_hat = n_pass / n_total
    denom = 1.0 + z * z / n_total
    center = (p_hat + z * z / (2 * n_total)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / n_total + z * z / (4.0 * n_total**2)
    )
    return max(0.0, center - half), min(1.0, center + half)


class EfficiencyGrid:
    """Pass/total counts over a rectangular (x, y) parameter grid."""

    def __init__(self, name: str, x_edges, y_edges,
                 x_label: str = "", y_label: str = "") -> None:
        self.name = name
        self.x_label = x_label
        self.y_label = y_label
        self.x_edges = np.asarray(x_edges, dtype=float)
        self.y_edges = np.asarray(y_edges, dtype=float)
        if len(self.x_edges) < 2 or len(self.y_edges) < 2:
            raise StatsError("grid needs at least one cell per axis")
        if (not np.all(np.diff(self.x_edges) > 0)
                or not np.all(np.diff(self.y_edges) > 0)):
            raise StatsError("grid edges must be strictly increasing")
        shape = (len(self.x_edges) - 1, len(self.y_edges) - 1)
        self._n_pass = np.zeros(shape, dtype=int)
        self._n_total = np.zeros(shape, dtype=int)

    @property
    def shape(self) -> tuple[int, int]:
        """(nx, ny) cell counts."""
        return self._n_pass.shape

    def _cell(self, x: float, y: float) -> tuple[int, int] | None:
        if not (self.x_edges[0] <= x < self.x_edges[-1]):
            return None
        if not (self.y_edges[0] <= y < self.y_edges[-1]):
            return None
        ix = min(int(np.searchsorted(self.x_edges, x, side="right")) - 1,
                 self.shape[0] - 1)
        iy = min(int(np.searchsorted(self.y_edges, y, side="right")) - 1,
                 self.shape[1] - 1)
        return ix, iy

    def record(self, x: float, y: float, passed: bool) -> None:
        """Record one trial at parameter point (x, y)."""
        cell = self._cell(x, y)
        if cell is None:
            return
        self._n_total[cell] += 1
        if passed:
            self._n_pass[cell] += 1

    def efficiency(self, x: float, y: float) -> float:
        """Point efficiency of the cell containing (x, y)."""
        cell = self._cell(x, y)
        if cell is None:
            raise StatsError(f"({x}, {y}) is outside the grid")
        total = self._n_total[cell]
        if total == 0:
            raise StatsError(f"cell containing ({x}, {y}) has no trials")
        return float(self._n_pass[cell] / total)

    def efficiency_map(self) -> np.ndarray:
        """The (nx, ny) efficiency array; empty cells are NaN."""
        with np.errstate(invalid="ignore", divide="ignore"):
            result = np.where(
                self._n_total > 0,
                self._n_pass / np.maximum(self._n_total, 1),
                np.nan,
            )
        return result

    def interval(self, x: float, y: float,
                 z: float = 1.0) -> tuple[float, float]:
        """Wilson interval of the cell containing (x, y)."""
        cell = self._cell(x, y)
        if cell is None:
            raise StatsError(f"({x}, {y}) is outside the grid")
        return binomial_interval(int(self._n_pass[cell]),
                                 int(self._n_total[cell]), z)

    def to_dict(self) -> dict:
        """Serialise for archive payloads."""
        return {
            "type": "efficiency_grid",
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_edges": self.x_edges.tolist(),
            "y_edges": self.y_edges.tolist(),
            "n_pass": self._n_pass.tolist(),
            "n_total": self._n_total.tolist(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "EfficiencyGrid":
        """Inverse of :meth:`to_dict`."""
        if record.get("type") != "efficiency_grid":
            raise StatsError(
                f"not an efficiency_grid record: {record.get('type')!r}"
            )
        grid = cls(
            str(record["name"]), record["x_edges"], record["y_edges"],
            x_label=str(record.get("x_label", "")),
            y_label=str(record.get("y_label", "")),
        )
        grid._n_pass = np.asarray(record["n_pass"], dtype=int)
        grid._n_total = np.asarray(record["n_total"], dtype=int)
        if grid._n_pass.shape != grid.shape:
            raise StatsError("n_pass shape does not match grid edges")
        if np.any(grid._n_pass > grid._n_total):
            raise StatsError("n_pass exceeds n_total in some cells")
        return grid
