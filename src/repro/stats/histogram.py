"""Weighted histograms with full error propagation.

These are the exchange currency of the RIVET-analogue framework and the
HepData-analogue archive: an analysis fills them, the archive stores their
serialised form, and comparisons consume them. Sum-of-weights-squared is
tracked per bin so scaled and added histograms keep correct errors.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import HistogramError


def edges_compatible(edges1: np.ndarray, edges2: np.ndarray) -> bool:
    """True when two edge arrays describe the same binning."""
    edges1 = np.asarray(edges1, dtype=float)
    edges2 = np.asarray(edges2, dtype=float)
    if edges1.shape != edges2.shape:
        return False
    return bool(np.allclose(edges1, edges2))


class Histogram1D:
    """A one-dimensional weighted histogram.

    Construct with either ``nbins``/``low``/``high`` (uniform binning) or
    explicit ``edges``. Underflow and overflow are tracked separately.
    """

    def __init__(
        self,
        name: str,
        nbins: int | None = None,
        low: float | None = None,
        high: float | None = None,
        edges: Sequence[float] | None = None,
        label: str = "",
    ) -> None:
        if edges is not None:
            edge_array = np.asarray(edges, dtype=float)
            if edge_array.ndim != 1 or len(edge_array) < 2:
                raise HistogramError("edges must be a 1-D sequence of >= 2")
            if not np.all(np.diff(edge_array) > 0.0):
                raise HistogramError("edges must be strictly increasing")
            self.edges = edge_array
        else:
            if nbins is None or low is None or high is None:
                raise HistogramError(
                    "provide either edges or nbins/low/high"
                )
            if nbins <= 0:
                raise HistogramError(f"nbins must be positive, got {nbins}")
            if high <= low:
                raise HistogramError(f"empty range [{low}, {high})")
            self.edges = np.linspace(low, high, nbins + 1)
        self.name = name
        self.label = label
        n = len(self.edges) - 1
        self._sumw = np.zeros(n)
        self._sumw2 = np.zeros(n)
        self.underflow = 0.0
        self.overflow = 0.0
        self.n_entries = 0

    # ------------------------------------------------------------------

    @property
    def nbins(self) -> int:
        """Number of in-range bins."""
        return len(self._sumw)

    @property
    def low(self) -> float:
        """Lower edge of the first bin."""
        return float(self.edges[0])

    @property
    def high(self) -> float:
        """Upper edge of the last bin."""
        return float(self.edges[-1])

    def bin_centers(self) -> np.ndarray:
        """Centres of the in-range bins."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def bin_widths(self) -> np.ndarray:
        """Widths of the in-range bins."""
        return np.diff(self.edges)

    def values(self) -> np.ndarray:
        """Per-bin weighted contents (copy)."""
        return self._sumw.copy()

    def errors(self) -> np.ndarray:
        """Per-bin statistical errors ``sqrt(sum w^2)`` (copy)."""
        return np.sqrt(self._sumw2)

    # ------------------------------------------------------------------

    def fill(self, value: float, weight: float = 1.0) -> None:
        """Fill one value."""
        self.n_entries += 1
        if value < self.edges[0]:
            self.underflow += weight
            return
        if value >= self.edges[-1]:
            self.overflow += weight
            return
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        index = min(index, self.nbins - 1)
        self._sumw[index] += weight
        self._sumw2[index] += weight * weight

    def fill_array(self, values: Sequence[float],
                   weights: Sequence[float] | None = None) -> None:
        """Vectorised fill of many values.

        Bin-edge semantics are identical to :meth:`fill` (``side="right"``
        search, underflow strictly below the first edge, overflow at or
        above the last). Per-bin accumulation uses ``np.bincount``,
        which adds the selected weights left-to-right in input order —
        the same association order as a sequential :meth:`fill` loop —
        and is an order of magnitude faster than the ``np.add.at``
        scatter it replaces.
        """
        values = np.asarray(values, dtype=float)
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != values.shape:
                raise HistogramError("weights must match values in shape")
        self.n_entries += len(values)
        below = values < self.edges[0]
        above = values >= self.edges[-1]
        # Flow sums also via bincount (input-order accumulation), so
        # the result is bit-identical to a sequential fill() loop —
        # a pairwise .sum() here would differ in the last ulp.
        category = np.full(len(values), 2, dtype=np.intp)
        category[below] = 0
        category[above] = 1
        flow = np.bincount(category, weights=weights, minlength=3)
        self.underflow += float(flow[0])
        self.overflow += float(flow[1])
        in_range = ~(below | above)
        if not np.any(in_range):
            return
        indices = np.searchsorted(self.edges, values[in_range],
                                  side="right") - 1
        indices = np.clip(indices, 0, self.nbins - 1)
        in_weights = weights[in_range]
        self._sumw += np.bincount(indices, weights=in_weights,
                                  minlength=self.nbins)
        self._sumw2 += np.bincount(indices,
                                   weights=in_weights * in_weights,
                                   minlength=self.nbins)

    # ------------------------------------------------------------------

    def integral(self, include_flow: bool = False) -> float:
        """Total weighted content."""
        total = float(self._sumw.sum())
        if include_flow:
            total += self.underflow + self.overflow
        return total

    def mean(self) -> float:
        """Weighted mean of bin centres."""
        total = self.integral()
        if total == 0.0:
            raise HistogramError(f"histogram {self.name!r} is empty")
        return float(np.dot(self.bin_centers(), self._sumw) / total)

    def std(self) -> float:
        """Weighted standard deviation of bin centres."""
        mu = self.mean()
        total = self.integral()
        variance = float(
            np.dot((self.bin_centers() - mu) ** 2, self._sumw) / total
        )
        return math.sqrt(max(0.0, variance))

    def scaled(self, factor: float) -> "Histogram1D":
        """A copy scaled by ``factor`` (errors scale linearly)."""
        clone = self._clone_empty()
        clone._sumw = self._sumw * factor
        clone._sumw2 = self._sumw2 * factor**2
        clone.underflow = self.underflow * factor
        clone.overflow = self.overflow * factor
        clone.n_entries = self.n_entries
        return clone

    def normalized(self, to: float = 1.0) -> "Histogram1D":
        """A copy normalised to the given integral."""
        total = self.integral()
        if total == 0.0:
            raise HistogramError(f"cannot normalise empty {self.name!r}")
        return self.scaled(to / total)

    def __add__(self, other: "Histogram1D") -> "Histogram1D":
        self._check_compatible(other)
        clone = self._clone_empty()
        clone._sumw = self._sumw + other._sumw
        clone._sumw2 = self._sumw2 + other._sumw2
        clone.underflow = self.underflow + other.underflow
        clone.overflow = self.overflow + other.overflow
        clone.n_entries = self.n_entries + other.n_entries
        return clone

    def __sub__(self, other: "Histogram1D") -> "Histogram1D":
        self._check_compatible(other)
        clone = self._clone_empty()
        clone._sumw = self._sumw - other._sumw
        clone._sumw2 = self._sumw2 + other._sumw2
        clone.underflow = self.underflow - other.underflow
        clone.overflow = self.overflow - other.overflow
        clone.n_entries = self.n_entries + other.n_entries
        return clone

    def _check_compatible(self, other: "Histogram1D") -> None:
        if not edges_compatible(self.edges, other.edges):
            raise HistogramError(
                f"incompatible binning: {self.name!r} vs {other.name!r}"
            )

    def _clone_empty(self) -> "Histogram1D":
        clone = Histogram1D(self.name, edges=self.edges.copy(),
                            label=self.label)
        return clone

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise for archives and reference-data files."""
        return {
            "type": "histogram1d",
            "name": self.name,
            "label": self.label,
            "edges": self.edges.tolist(),
            "sumw": self._sumw.tolist(),
            "sumw2": self._sumw2.tolist(),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "n_entries": self.n_entries,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Histogram1D":
        """Inverse of :meth:`to_dict`."""
        if record.get("type") != "histogram1d":
            raise HistogramError(
                f"not a histogram1d record: {record.get('type')!r}"
            )
        histogram = cls(str(record["name"]), edges=record["edges"],
                        label=str(record.get("label", "")))
        histogram._sumw = np.asarray(record["sumw"], dtype=float)
        histogram._sumw2 = np.asarray(record["sumw2"], dtype=float)
        if len(histogram._sumw) != histogram.nbins:
            raise HistogramError("sumw length does not match binning")
        histogram.underflow = float(record.get("underflow", 0.0))
        histogram.overflow = float(record.get("overflow", 0.0))
        histogram.n_entries = int(record.get("n_entries", 0))
        return histogram


class Histogram2D:
    """A two-dimensional weighted histogram (uniform binning)."""

    def __init__(self, name: str, nx: int, x_low: float, x_high: float,
                 ny: int, y_low: float, y_high: float,
                 label: str = "") -> None:
        if nx <= 0 or ny <= 0:
            raise HistogramError("bin counts must be positive")
        if x_high <= x_low or y_high <= y_low:
            raise HistogramError("empty axis range")
        self.name = name
        self.label = label
        self.x_edges = np.linspace(x_low, x_high, nx + 1)
        self.y_edges = np.linspace(y_low, y_high, ny + 1)
        self._sumw = np.zeros((nx, ny))
        self._sumw2 = np.zeros((nx, ny))
        self.n_entries = 0

    @property
    def shape(self) -> tuple[int, int]:
        """(nx, ny) bin counts."""
        return self._sumw.shape

    def fill(self, x: float, y: float, weight: float = 1.0) -> None:
        """Fill one (x, y) value; out-of-range fills are dropped."""
        self.n_entries += 1
        if not (self.x_edges[0] <= x < self.x_edges[-1]):
            return
        if not (self.y_edges[0] <= y < self.y_edges[-1]):
            return
        ix = min(int(np.searchsorted(self.x_edges, x, side="right")) - 1,
                 self.shape[0] - 1)
        iy = min(int(np.searchsorted(self.y_edges, y, side="right")) - 1,
                 self.shape[1] - 1)
        self._sumw[ix, iy] += weight
        self._sumw2[ix, iy] += weight * weight

    def fill_array(self, xs: Sequence[float], ys: Sequence[float],
                   weights: Sequence[float] | None = None) -> None:
        """Vectorised fill of many (x, y) values.

        Same semantics as a :meth:`fill` loop — out-of-range pairs are
        dropped (either axis) — with the accumulation done as one
        ``np.bincount`` over the ravelled (ix, iy) bin index.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape:
            raise HistogramError("x and y must match in shape")
        if weights is None:
            weights = np.ones_like(xs)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != xs.shape:
                raise HistogramError("weights must match values in shape")
        self.n_entries += len(xs)
        in_range = ((self.x_edges[0] <= xs) & (xs < self.x_edges[-1])
                    & (self.y_edges[0] <= ys) & (ys < self.y_edges[-1]))
        if not np.any(in_range):
            return
        nx, ny = self.shape
        ix = np.minimum(
            np.searchsorted(self.x_edges, xs[in_range], side="right") - 1,
            nx - 1)
        iy = np.minimum(
            np.searchsorted(self.y_edges, ys[in_range], side="right") - 1,
            ny - 1)
        flat = ix * ny + iy
        in_weights = weights[in_range]
        self._sumw += np.bincount(
            flat, weights=in_weights, minlength=nx * ny).reshape(nx, ny)
        self._sumw2 += np.bincount(
            flat, weights=in_weights * in_weights,
            minlength=nx * ny).reshape(nx, ny)

    def values(self) -> np.ndarray:
        """The (nx, ny) content array (copy)."""
        return self._sumw.copy()

    def errors(self) -> np.ndarray:
        """Per-bin statistical errors (copy)."""
        return np.sqrt(self._sumw2)

    def integral(self) -> float:
        """Total in-range weighted content."""
        return float(self._sumw.sum())

    def to_dict(self) -> dict:
        """Serialise for archives."""
        return {
            "type": "histogram2d",
            "name": self.name,
            "label": self.label,
            "x_edges": self.x_edges.tolist(),
            "y_edges": self.y_edges.tolist(),
            "sumw": self._sumw.tolist(),
            "sumw2": self._sumw2.tolist(),
            "n_entries": self.n_entries,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Histogram2D":
        """Inverse of :meth:`to_dict`."""
        if record.get("type") != "histogram2d":
            raise HistogramError(
                f"not a histogram2d record: {record.get('type')!r}"
            )
        x_edges = record["x_edges"]
        y_edges = record["y_edges"]
        histogram = cls(
            str(record["name"]),
            nx=len(x_edges) - 1, x_low=x_edges[0], x_high=x_edges[-1],
            ny=len(y_edges) - 1, y_low=y_edges[0], y_high=y_edges[-1],
            label=str(record.get("label", "")),
        )
        histogram.x_edges = np.asarray(x_edges, dtype=float)
        histogram.y_edges = np.asarray(y_edges, dtype=float)
        histogram._sumw = np.asarray(record["sumw"], dtype=float)
        histogram._sumw2 = np.asarray(record["sumw2"], dtype=float)
        histogram.n_entries = int(record.get("n_entries", 0))
        return histogram
