"""Bin-by-bin unfolding of detector effects.

RIVET "is valid as long as the measurements have been corrected for the
smearing introduced by detector resolution effects, noise, reconstruction
efficiencies". This module performs that correction: correction factors
``truth/reco`` derived from a simulation pair are applied to a measured
distribution, turning a reco-level histogram into an unfolded,
truth-comparable one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StatsError
from repro.stats.histogram import Histogram1D, edges_compatible


def bin_by_bin_factors(truth: Histogram1D,
                       reco: Histogram1D) -> np.ndarray:
    """Correction factors ``truth_i / reco_i`` per bin.

    Bins with an empty reco expectation get a factor of zero (they cannot
    be corrected and are zeroed in the unfolded result — the honest
    treatment for dead regions).
    """
    if not edges_compatible(truth.edges, reco.edges):
        raise StatsError("truth and reco histograms must share binning")
    truth_values = truth.values()
    reco_values = reco.values()
    factors = np.zeros_like(truth_values)
    nonzero = reco_values != 0.0
    factors[nonzero] = truth_values[nonzero] / reco_values[nonzero]
    return factors


def unfold(measured: Histogram1D, truth: Histogram1D,
           reco: Histogram1D) -> Histogram1D:
    """Apply bin-by-bin correction factors to a measured histogram.

    ``truth``/``reco`` are the simulation pair defining the response;
    ``measured`` is the data. Errors scale with the factors.
    """
    if not edges_compatible(measured.edges, truth.edges):
        raise StatsError("measured histogram binning must match response")
    factors = bin_by_bin_factors(truth, reco)
    unfolded = Histogram1D(f"{measured.name}_unfolded",
                           edges=measured.edges,
                           label=measured.label)
    values = measured.values() * factors
    errors2 = (measured.errors() * factors) ** 2
    unfolded._sumw = values
    unfolded._sumw2 = errors2
    unfolded.n_entries = measured.n_entries
    return unfolded


def closure_deviation(truth: Histogram1D, reco: Histogram1D) -> float:
    """Maximum relative deviation of the unfolding closure test.

    Unfolding the reco histogram of the same simulation pair must return
    the truth histogram exactly; this measures any residual (should be 0
    up to floating-point noise).
    """
    unfolded = unfold(reco, truth, reco)
    truth_values = truth.values()
    unfolded_values = unfolded.values()
    mask = truth_values != 0.0
    if not np.any(mask):
        return 0.0
    return float(np.max(np.abs(
        unfolded_values[mask] / truth_values[mask] - 1.0
    )))
