"""Poisson counting likelihoods with background uncertainty."""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize
from scipy.special import gammaln

from repro.errors import StatsError


def poisson_nll(n_observed: int, expected: float) -> float:
    """Negative log of the Poisson probability ``P(n | expected)``."""
    if n_observed < 0:
        raise StatsError(f"n_observed must be >= 0, got {n_observed}")
    if expected <= 0.0:
        # Zero expectation is only compatible with zero observation.
        return 0.0 if n_observed == 0 else float("inf")
    return float(expected - n_observed * math.log(expected)
                 + gammaln(n_observed + 1))


@dataclass(frozen=True)
class CountingExperiment:
    """A single-bin counting experiment.

    ``background`` carries a log-normal-ish Gaussian constraint of width
    ``background_uncertainty`` (absolute). ``signal_efficiency`` times
    ``luminosity`` converts a signal cross-section into an expected count.
    """

    n_observed: int
    background: float
    background_uncertainty: float
    signal_efficiency: float
    luminosity: float

    def __post_init__(self) -> None:
        if self.background < 0.0:
            raise StatsError("background must be >= 0")
        if self.background_uncertainty < 0.0:
            raise StatsError("background uncertainty must be >= 0")
        if not 0.0 <= self.signal_efficiency <= 1.0:
            raise StatsError(
                f"signal efficiency must be in [0, 1], got "
                f"{self.signal_efficiency}"
            )
        if self.luminosity <= 0.0:
            raise StatsError("luminosity must be positive")

    def expected_signal(self, cross_section: float) -> float:
        """Expected signal count for a cross-section (same units as lumi)."""
        return cross_section * self.signal_efficiency * self.luminosity

    def nll(self, cross_section: float,
            background_shift: float = 0.0) -> float:
        """Constrained negative log-likelihood at the given parameters."""
        background = self.background + background_shift
        if background < 0.0:
            return float("inf")
        expected = self.expected_signal(cross_section) + background
        value = poisson_nll(self.n_observed, expected)
        if self.background_uncertainty > 0.0:
            value += 0.5 * (background_shift
                            / self.background_uncertainty) ** 2
        return value

    def profiled_nll(self, cross_section: float) -> float:
        """NLL with the background nuisance profiled out."""
        if self.background_uncertainty == 0.0:
            return self.nll(cross_section)
        result = optimize.minimize_scalar(
            lambda shift: self.nll(cross_section, shift),
            bounds=(-5.0 * self.background_uncertainty,
                    5.0 * self.background_uncertainty),
            method="bounded",
        )
        return float(result.fun)

    def best_fit_cross_section(self, upper_bound: float = 1e6) -> float:
        """Maximum-likelihood signal cross-section (bounded at zero)."""
        result = optimize.minimize_scalar(
            self.profiled_nll, bounds=(0.0, upper_bound), method="bounded"
        )
        return float(result.x)


def discovery_significance(n_observed: int, background: float,
                           background_uncertainty: float = 0.0) -> float:
    """Asymptotic discovery significance of an excess, in sigma.

    Uses the profile-likelihood Asimov formula; with a background
    uncertainty ``db`` the standard extension

        Z^2 = 2 [ n ln( n(b + db^2) / (b^2 + n db^2) )
                  - (b^2/db^2) ln( 1 + db^2 (n - b) / (b (b + db^2)) ) ]

    is used. Deficits (n <= b) return 0.
    """
    if background <= 0.0:
        raise StatsError("significance needs positive background")
    if n_observed <= background:
        return 0.0
    n = float(n_observed)
    b = background
    db2 = background_uncertainty**2
    if db2 == 0.0:
        z_squared = 2.0 * (n * math.log(n / b) - (n - b))
    else:
        first = n * math.log(n * (b + db2) / (b * b + n * db2))
        second = (b * b / db2) * math.log(
            1.0 + db2 * (n - b) / (b * (b + db2))
        )
        z_squared = 2.0 * (first - second)
    return math.sqrt(max(0.0, z_squared))


def profile_likelihood_ratio(experiment: CountingExperiment,
                             cross_section: float) -> float:
    """The test statistic ``q = 2 [NLL(sigma) - NLL(sigma_hat)]``.

    Clamped at zero so downward fluctuations do not count as evidence
    against a signal hypothesis larger than the best fit.
    """
    best = experiment.best_fit_cross_section()
    q = 2.0 * (experiment.profiled_nll(cross_section)
               - experiment.profiled_nll(best))
    return max(0.0, float(q))
