"""Statistics substrate: histograms, comparisons, efficiencies, limits.

Provides the statistical machinery the analysis-preservation layers need:
YODA-like histograms for the RIVET analogue, chi-square/KS comparisons for
generator validation, efficiency grids for the HepData-style SUSY
acceptance payloads, and CLs limit setting for the RECAST re-analysis
use case — the capability the paper notes RIVET lacks ("limit-setting,
likelihood fitting, or other more advanced ... techniques").
"""

from repro.stats.histogram import Histogram1D, Histogram2D
from repro.stats.comparison import (
    ComparisonResult,
    chi2_test,
    ks_test,
    ratio_points,
)
from repro.stats.efficiency import EfficiencyGrid, binomial_interval
from repro.stats.likelihood import (
    CountingExperiment,
    discovery_significance,
    poisson_nll,
    profile_likelihood_ratio,
)
from repro.stats.limits import LimitResult, cls_upper_limit, expected_limit
from repro.stats.unfolding import bin_by_bin_factors, unfold
from repro.stats.fitting import (
    FitResult,
    fit_gaussian_peak,
    fit_exponential_lifetime,
    sideband_subtract,
)

__all__ = [
    "Histogram1D",
    "Histogram2D",
    "ComparisonResult",
    "chi2_test",
    "ks_test",
    "ratio_points",
    "EfficiencyGrid",
    "binomial_interval",
    "CountingExperiment",
    "discovery_significance",
    "poisson_nll",
    "profile_likelihood_ratio",
    "LimitResult",
    "cls_upper_limit",
    "expected_limit",
    "bin_by_bin_factors",
    "unfold",
    "FitResult",
    "fit_gaussian_peak",
    "fit_exponential_lifetime",
    "sideband_subtract",
]
