"""Histogram comparison tests for generator validation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import StatsError
from repro.stats.histogram import Histogram1D, edges_compatible


@dataclass(frozen=True)
class ComparisonResult:
    """The outcome of a data/prediction shape comparison."""

    statistic: float
    n_dof: int
    p_value: float
    test: str

    @property
    def compatible(self) -> bool:
        """True at the conventional 5% level."""
        return self.p_value >= 0.05

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "COMPATIBLE" if self.compatible else "DISCREPANT"
        return (
            f"{self.test}: stat={self.statistic:.2f}/{self.n_dof} dof, "
            f"p={self.p_value:.3g} -> {verdict}"
        )


def chi2_test(data: Histogram1D, prediction: Histogram1D,
              min_error: float = 1e-9) -> ComparisonResult:
    """Bin-by-bin chi-square using both histograms' errors in quadrature.

    Bins where both histograms are empty are skipped and do not count as
    degrees of freedom.
    """
    if not edges_compatible(data.edges, prediction.edges):
        raise StatsError(
            f"incompatible binning: {data.name!r} vs {prediction.name!r}"
        )
    data_values = data.values()
    pred_values = prediction.values()
    errors2 = data.errors() ** 2 + prediction.errors() ** 2
    mask = (data_values != 0.0) | (pred_values != 0.0)
    if not np.any(mask):
        raise StatsError("both histograms are empty")
    errors2 = np.maximum(errors2[mask], min_error**2)
    chi2 = float(((data_values[mask] - pred_values[mask]) ** 2
                  / errors2).sum())
    n_dof = int(mask.sum())
    p_value = float(scipy_stats.chi2.sf(chi2, n_dof))
    return ComparisonResult(statistic=chi2, n_dof=n_dof, p_value=p_value,
                            test="chi2")


def ks_test(data: Histogram1D, prediction: Histogram1D) -> ComparisonResult:
    """Two-sample Kolmogorov-Smirnov test on the binned shapes.

    Uses the effective entry counts (``integral^2 / sum(errors^2)``) to set
    the sample sizes, which makes the test meaningful for weighted fills.
    """
    if not edges_compatible(data.edges, prediction.edges):
        raise StatsError(
            f"incompatible binning: {data.name!r} vs {prediction.name!r}"
        )
    data_total = data.integral()
    pred_total = prediction.integral()
    if data_total <= 0.0 or pred_total <= 0.0:
        raise StatsError("KS test needs non-empty histograms")
    data_cdf = np.cumsum(data.values()) / data_total
    pred_cdf = np.cumsum(prediction.values()) / pred_total
    d_statistic = float(np.max(np.abs(data_cdf - pred_cdf)))

    def effective_n(histogram: Histogram1D) -> float:
        err2 = float((histogram.errors() ** 2).sum())
        if err2 == 0.0:
            return float(histogram.n_entries or 1)
        return histogram.integral() ** 2 / err2

    n1 = effective_n(data)
    n2 = effective_n(prediction)
    n_effective = n1 * n2 / (n1 + n2)
    p_value = float(
        scipy_stats.kstwobign.sf(d_statistic * np.sqrt(n_effective))
    )
    return ComparisonResult(statistic=d_statistic, n_dof=data.nbins,
                            p_value=p_value, test="ks")


def ratio_points(numerator: Histogram1D, denominator: Histogram1D
                 ) -> list[tuple[float, float, float]]:
    """Per-bin ``(center, ratio, error)`` points for ratio panels.

    Bins with an empty denominator are skipped.
    """
    if not edges_compatible(numerator.edges, denominator.edges):
        raise StatsError("incompatible binning for ratio")
    points = []
    centers = numerator.bin_centers()
    num_values = numerator.values()
    den_values = denominator.values()
    num_errors = numerator.errors()
    den_errors = denominator.errors()
    for i in range(numerator.nbins):
        if den_values[i] == 0.0:
            continue
        ratio = num_values[i] / den_values[i]
        if num_values[i] != 0.0:
            relative = np.hypot(num_errors[i] / num_values[i],
                                den_errors[i] / den_values[i])
            error = abs(ratio) * float(relative)
        else:
            error = float(num_errors[i] / den_values[i])
        points.append((float(centers[i]), float(ratio), error))
    return points
