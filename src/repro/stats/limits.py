"""CLs exclusion limits for counting experiments.

This is the "advanced interpretation" capability the paper attributes to
RECAST and not to RIVET: given a preserved search (background estimate,
observed count, signal efficiency for a new model), derive the 95% CL
upper limit on the new model's cross-section with the frequentist CLs
prescription, using toy Monte Carlo for the test-statistic distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError
from repro.stats.likelihood import CountingExperiment


@dataclass(frozen=True)
class LimitResult:
    """A CLs upper limit and its inputs."""

    upper_limit: float
    confidence_level: float
    n_observed: int
    background: float
    signal_efficiency: float
    luminosity: float
    n_toys: int

    @property
    def excluded(self) -> bool:
        """Whether the limit is finite (always true for CLs scans)."""
        return math.isfinite(self.upper_limit)

    def excludes_cross_section(self, cross_section: float) -> bool:
        """True if the given cross-section is excluded at this CL."""
        return cross_section > self.upper_limit

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"sigma < {self.upper_limit:.4g} at "
            f"{self.confidence_level:.0%} CL "
            f"(n_obs={self.n_observed}, b={self.background:.2f}, "
            f"eff={self.signal_efficiency:.3f})"
        )


def _cls_value(experiment: CountingExperiment, cross_section: float,
               rng: np.random.Generator, n_toys: int) -> float:
    """CLs = CL_{s+b} / CL_b for one signal hypothesis, via toys."""
    signal = experiment.expected_signal(cross_section)
    background = experiment.background
    b_unc = experiment.background_uncertainty
    n_observed = experiment.n_observed

    # Sample nuisance-fluctuated background expectations.
    if b_unc > 0.0:
        b_toys = np.maximum(0.0, rng.normal(background, b_unc, n_toys))
    else:
        b_toys = np.full(n_toys, background)
    # Test statistic: the observed count itself (optimal for one bin).
    sb_counts = rng.poisson(b_toys + signal)
    b_counts = rng.poisson(b_toys)
    # p-values: probability of an outcome <= observed under s+b (signal
    # exclusion works on downward compatibility) and under b.
    cl_sb = float(np.mean(sb_counts <= n_observed))
    cl_b = float(np.mean(b_counts <= n_observed))
    if cl_b == 0.0:
        return 1.0
    return min(1.0, cl_sb / cl_b)


def cls_upper_limit(
    experiment: CountingExperiment,
    confidence_level: float = 0.95,
    n_toys: int = 4000,
    seed: int = 9090,
    max_cross_section: float | None = None,
) -> LimitResult:
    """Scan for the cross-section where CLs crosses ``1 - CL``.

    Uses bisection over the cross-section; the bracket grows automatically
    until the upper edge is excluded.
    """
    if not 0.0 < confidence_level < 1.0:
        raise StatsError(
            f"confidence level must be in (0, 1), got {confidence_level}"
        )
    if experiment.signal_efficiency <= 0.0:
        raise StatsError(
            "cannot set a limit with zero signal efficiency"
        )
    rng = np.random.default_rng(seed)
    alpha = 1.0 - confidence_level

    # Initial bracket: a couple of events' worth of cross-section.
    low = 0.0
    high = (max_cross_section if max_cross_section is not None else
            (experiment.n_observed + 3.0 * math.sqrt(
                experiment.background + 1.0) + 5.0)
            / (experiment.signal_efficiency * experiment.luminosity))
    for _ in range(20):
        if _cls_value(experiment, high, rng, n_toys) < alpha:
            break
        high *= 2.0
    else:
        raise StatsError("could not bracket the CLs limit")

    for _ in range(40):
        middle = 0.5 * (low + high)
        if _cls_value(experiment, middle, rng, n_toys) < alpha:
            high = middle
        else:
            low = middle
        if high - low < 1e-3 * high:
            break
    return LimitResult(
        upper_limit=0.5 * (low + high),
        confidence_level=confidence_level,
        n_observed=experiment.n_observed,
        background=experiment.background,
        signal_efficiency=experiment.signal_efficiency,
        luminosity=experiment.luminosity,
        n_toys=n_toys,
    )


def expected_limit(
    background: float,
    background_uncertainty: float,
    signal_efficiency: float,
    luminosity: float,
    confidence_level: float = 0.95,
    n_toys: int = 2000,
    seed: int = 9091,
) -> LimitResult:
    """The median expected limit under the background-only hypothesis."""
    experiment = CountingExperiment(
        n_observed=int(round(background)),
        background=background,
        background_uncertainty=background_uncertainty,
        signal_efficiency=signal_efficiency,
        luminosity=luminosity,
    )
    return cls_upper_limit(experiment, confidence_level, n_toys, seed)
