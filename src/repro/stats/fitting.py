"""Peak and lifetime fits plus sideband background subtraction."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import StatsError
from repro.stats.histogram import Histogram1D


@dataclass(frozen=True)
class FitResult:
    """Fitted parameters and their covariance-derived errors."""

    parameters: dict[str, float]
    errors: dict[str, float]
    chi2: float
    n_dof: int

    @property
    def chi2_per_dof(self) -> float:
        """Reduced chi-square (inf for zero degrees of freedom)."""
        if self.n_dof <= 0:
            return float("inf")
        return self.chi2 / self.n_dof

    def parameter(self, name: str) -> float:
        """Look up a fitted parameter by name."""
        try:
            return self.parameters[name]
        except KeyError:
            raise StatsError(f"fit has no parameter {name!r}") from None


def _prepare_points(histogram: Histogram1D
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    centers = histogram.bin_centers()
    values = histogram.values()
    errors = histogram.errors()
    mask = values > 0.0
    if mask.sum() < 4:
        raise StatsError(
            f"histogram {histogram.name!r} has too few populated bins "
            f"({int(mask.sum())}) to fit"
        )
    return centers[mask], values[mask], np.maximum(errors[mask], 1e-9)


def fit_gaussian_peak(histogram: Histogram1D,
                      linear_background: bool = True) -> FitResult:
    """Fit ``A exp(-(x-mu)^2 / 2 sigma^2) [+ p0 + p1 x]`` to a histogram."""
    x, y, err = _prepare_points(histogram)
    peak_guess = float(x[np.argmax(y)])
    amplitude_guess = float(y.max())
    sigma_guess = max(histogram.std() / 2.0, 1e-3)

    if linear_background:
        def model(x, amplitude, mu, sigma, p0, p1):
            return (amplitude * np.exp(-0.5 * ((x - mu) / sigma) ** 2)
                    + p0 + p1 * x)
        names = ["amplitude", "mu", "sigma", "p0", "p1"]
        p0 = [amplitude_guess, peak_guess, sigma_guess, float(y.min()), 0.0]
    else:
        def model(x, amplitude, mu, sigma):
            return amplitude * np.exp(-0.5 * ((x - mu) / sigma) ** 2)
        names = ["amplitude", "mu", "sigma"]
        p0 = [amplitude_guess, peak_guess, sigma_guess]

    try:
        popt, pcov = optimize.curve_fit(model, x, y, p0=p0, sigma=err,
                                        absolute_sigma=True, maxfev=20000)
    except (RuntimeError, optimize.OptimizeWarning) as exc:
        raise StatsError(f"gaussian fit failed: {exc}")
    popt = [float(v) for v in popt]
    perr = [float(math.sqrt(max(0.0, pcov[i, i])))
            for i in range(len(popt))]
    residuals = (y - model(x, *popt)) / err
    chi2 = float((residuals**2).sum())
    # Report |sigma| — the model is symmetric in its sign.
    result = dict(zip(names, popt))
    result["sigma"] = abs(result["sigma"])
    return FitResult(
        parameters=result,
        errors=dict(zip(names, perr)),
        chi2=chi2,
        n_dof=len(x) - len(popt),
    )


def fit_exponential_lifetime(histogram: Histogram1D) -> FitResult:
    """Fit ``N exp(-t / tau)`` to a decay-time histogram.

    Returns ``tau`` in whatever unit the histogram axis uses.
    """
    x, y, err = _prepare_points(histogram)

    def model(t, norm, tau):
        return norm * np.exp(-t / tau)

    tau_guess = max(float(np.average(x, weights=y)), 1e-6)
    try:
        popt, pcov = optimize.curve_fit(
            model, x, y, p0=[float(y.max()), tau_guess], sigma=err,
            absolute_sigma=True, maxfev=20000,
        )
    except (RuntimeError, optimize.OptimizeWarning) as exc:
        raise StatsError(f"lifetime fit failed: {exc}")
    residuals = (y - model(x, *popt)) / err
    return FitResult(
        parameters={"norm": float(popt[0]), "tau": float(popt[1])},
        errors={
            "norm": float(math.sqrt(max(0.0, pcov[0, 0]))),
            "tau": float(math.sqrt(max(0.0, pcov[1, 1]))),
        },
        chi2=float((residuals**2).sum()),
        n_dof=len(x) - 2,
    )


def sideband_subtract(histogram: Histogram1D, signal_window: tuple[float, float],
                      sidebands: tuple[tuple[float, float],
                                       tuple[float, float]]
                      ) -> tuple[float, float]:
    """Sideband-subtracted signal yield in a window.

    The background density is estimated from the two sidebands and
    interpolated linearly under the signal window. Returns
    ``(signal_yield, error)`` — the "background subtraction" capability
    the paper notes plain RIVET lacks.
    """
    low, high = signal_window
    if high <= low:
        raise StatsError("empty signal window")
    (sb1_low, sb1_high), (sb2_low, sb2_high) = sidebands
    if sb1_high > low or sb2_low < high:
        raise StatsError("sidebands must not overlap the signal window")

    def window_sum(w_low: float, w_high: float) -> tuple[float, float, float]:
        centers = histogram.bin_centers()
        values = histogram.values()
        errors2 = histogram.errors() ** 2
        mask = (centers >= w_low) & (centers < w_high)
        width = float(histogram.bin_widths()[mask].sum())
        return float(values[mask].sum()), float(errors2[mask].sum()), width

    signal_sum, signal_err2, signal_width = window_sum(low, high)
    sb1_sum, sb1_err2, sb1_width = window_sum(sb1_low, sb1_high)
    sb2_sum, sb2_err2, sb2_width = window_sum(sb2_low, sb2_high)
    sideband_width = sb1_width + sb2_width
    if sideband_width <= 0.0 or signal_width <= 0.0:
        raise StatsError("windows contain no bins")
    density = (sb1_sum + sb2_sum) / sideband_width
    background = density * signal_width
    background_err2 = (sb1_err2 + sb2_err2) * (signal_width
                                               / sideband_width) ** 2
    yield_value = signal_sum - background
    yield_error = math.sqrt(signal_err2 + background_err2)
    return yield_value, yield_error
