"""Flat-file conditions snapshots (the ALICE constants-handling style).

A snapshot extracts, for one global tag and one run range, every payload a
processing job could need, and writes it to a single self-describing JSON
file that can be "easily shipped around with the data" — the paper's words
for the ALICE approach. :class:`ConditionsSnapshot` then answers the same
``payload(folder, run)`` queries as the live store, so reconstruction code
is agnostic about which mode it is running in.

Snapshots are also what the preservation layer archives: they freeze the
external conditions dependency of a workflow into a portable artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.conditions.iov import IOV
from repro.conditions.store import ConditionsStore
from repro.errors import ConditionsError, IOVError, PersistenceError

_SNAPSHOT_FORMAT = "repro-conditions-snapshot"
_SNAPSHOT_VERSION = "1.0"


@dataclass
class ConditionsSnapshot:
    """An immutable, file-backed slice of a conditions store."""

    global_tag_name: str
    first_run: int
    last_run: int
    #: folder -> list of (IOV, payload) pairs.
    entries: dict[str, list[tuple[IOV, dict]]]

    def payload(self, folder: str, run: int) -> dict:
        """The payload valid for ``run``; same contract as the live store."""
        if folder not in self.entries:
            raise ConditionsError(
                f"snapshot has no folder {folder!r} "
                f"(global tag {self.global_tag_name})"
            )
        if not self.first_run <= run <= self.last_run:
            raise IOVError(
                f"run {run} outside snapshot range "
                f"[{self.first_run}, {self.last_run}]"
            )
        for iov, payload in self.entries[folder]:
            if iov.contains(run):
                return dict(payload)
        raise IOVError(f"snapshot {folder}: no IOV covers run {run}")

    def folders(self) -> list[str]:
        """Folders captured in this snapshot, sorted."""
        return sorted(self.entries)

    def to_dict(self) -> dict:
        """Full serialisation, including a schema header."""
        return {
            "schema": {
                "format": _SNAPSHOT_FORMAT,
                "version": _SNAPSHOT_VERSION,
                "description": (
                    "Self-contained conditions constants for a run range; "
                    "shippable alongside event data."
                ),
            },
            "global_tag": self.global_tag_name,
            "first_run": self.first_run,
            "last_run": self.last_run,
            "folders": {
                folder: [
                    {"iov": iov.to_dict(), "payload": payload}
                    for iov, payload in pairs
                ]
                for folder, pairs in self.entries.items()
            },
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ConditionsSnapshot":
        """Inverse of :meth:`to_dict`, with format validation."""
        schema = record.get("schema", {})
        if schema.get("format") != _SNAPSHOT_FORMAT:
            raise PersistenceError(
                f"not a conditions snapshot: format={schema.get('format')!r}"
            )
        entries = {}
        for folder, pairs in record.get("folders", {}).items():
            entries[folder] = [
                (IOV.from_dict(pair["iov"]), dict(pair["payload"]))
                for pair in pairs
            ]
        return cls(
            global_tag_name=str(record["global_tag"]),
            first_run=int(record["first_run"]),
            last_run=int(record["last_run"]),
            entries=entries,
        )


def export_snapshot(
    store: ConditionsStore,
    global_tag_name: str,
    first_run: int,
    last_run: int,
    path: str | Path | None = None,
) -> ConditionsSnapshot:
    """Extract a snapshot from a live store, optionally writing it to disk."""
    global_tag = store.global_tag(global_tag_name)
    entries: dict[str, list[tuple[IOV, dict]]] = {}
    window = IOV(first_run, last_run)
    for folder in global_tag.folders():
        tag = global_tag.tag_for(folder)
        pairs = []
        for iov in store.iovs(folder, tag):
            if iov.overlaps(window):
                pairs.append((iov, store.payload(folder, tag,
                                                 max(iov.first_run,
                                                     first_run))))
        if not pairs:
            raise IOVError(
                f"{folder}/{tag} has no IOVs overlapping "
                f"[{first_run}, {last_run}]"
            )
        entries[folder] = pairs
    snapshot = ConditionsSnapshot(
        global_tag_name=global_tag_name,
        first_run=first_run,
        last_run=last_run,
        entries=entries,
    )
    if path is not None:
        path = Path(path)
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(snapshot.to_dict(), handle, indent=1)
        except OSError as exc:
            raise PersistenceError(f"cannot write snapshot {path}: {exc}")
    return snapshot


def load_snapshot(path: str | Path) -> ConditionsSnapshot:
    """Read a snapshot previously written by :func:`export_snapshot`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as exc:
        raise PersistenceError(f"cannot read snapshot {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"snapshot {path} is not valid JSON: {exc}")
    return ConditionsSnapshot.from_dict(record)
