"""The tagged, IOV-versioned conditions store.

Layout follows the COOL-style model the LHC experiments use:

- a *folder* holds one kind of payload (``"ecal/energy_scale"``),
- within a folder, a *tag* names one calibration version,
- within a tag, payloads are attached to non-overlapping :class:`IOV`\\ s,
- a :class:`GlobalTag` maps every folder to the tag reconstruction should
  use, so one string pins the entire conditions configuration of a
  processing campaign — which is precisely what a preservation record
  needs to capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditions.iov import IOV
from repro.errors import ConditionsError, IOVError


@dataclass(frozen=True)
class _TaggedPayload:
    iov: IOV
    payload: dict


@dataclass(frozen=True)
class GlobalTag:
    """A named, frozen mapping of folder -> tag."""

    name: str
    folder_tags: tuple[tuple[str, str], ...]

    @classmethod
    def from_mapping(cls, name: str, mapping: dict[str, str]) -> "GlobalTag":
        """Build from a plain dict, normalising the entry order."""
        return cls(name=name, folder_tags=tuple(sorted(mapping.items())))

    def tag_for(self, folder: str) -> str:
        """The tag assigned to ``folder``; raises if unmapped."""
        for known_folder, tag in self.folder_tags:
            if known_folder == folder:
                return tag
        raise ConditionsError(
            f"global tag {self.name!r} has no entry for folder {folder!r}"
        )

    def folders(self) -> list[str]:
        """All folders this global tag covers."""
        return [folder for folder, _ in self.folder_tags]

    def to_dict(self) -> dict:
        """Serialise for provenance records."""
        return {"name": self.name, "folders": dict(self.folder_tags)}


class ConditionsStore:
    """In-memory conditions database with COOL-style semantics."""

    def __init__(self, name: str = "conditions") -> None:
        self.name = name
        self._folders: dict[str, dict[str, list[_TaggedPayload]]] = {}
        self._global_tags: dict[str, GlobalTag] = {}
        self._access_log: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def create_folder(self, folder: str) -> None:
        """Create an empty folder; idempotent."""
        self._folders.setdefault(folder, {})

    def add_payload(self, folder: str, tag: str, iov: IOV,
                    payload: dict) -> None:
        """Attach a payload to ``(folder, tag, iov)``.

        Overlapping IOVs within the same tag are rejected — a tag must give
        an unambiguous answer for every run.
        """
        self.create_folder(folder)
        entries = self._folders[folder].setdefault(tag, [])
        for existing in entries:
            if existing.iov.overlaps(iov):
                raise IOVError(
                    f"{folder}/{tag}: IOV {iov} overlaps existing "
                    f"{existing.iov}"
                )
        entries.append(_TaggedPayload(iov=iov, payload=dict(payload)))
        entries.sort(key=lambda entry: entry.iov.first_run)

    def register_global_tag(self, global_tag: GlobalTag) -> None:
        """Register a global tag, checking every folder/tag exists."""
        for folder, tag in global_tag.folder_tags:
            if folder not in self._folders:
                raise ConditionsError(
                    f"global tag {global_tag.name!r} references unknown "
                    f"folder {folder!r}"
                )
            if tag not in self._folders[folder]:
                raise ConditionsError(
                    f"global tag {global_tag.name!r} references unknown tag "
                    f"{folder}/{tag}"
                )
        self._global_tags[global_tag.name] = global_tag

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def folders(self) -> list[str]:
        """All folder names, sorted."""
        return sorted(self._folders)

    def tags(self, folder: str) -> list[str]:
        """All tags in a folder, sorted."""
        if folder not in self._folders:
            raise ConditionsError(f"unknown folder {folder!r}")
        return sorted(self._folders[folder])

    def global_tag(self, name: str) -> GlobalTag:
        """Look up a registered global tag."""
        try:
            return self._global_tags[name]
        except KeyError:
            raise ConditionsError(f"unknown global tag {name!r}") from None

    def payload(self, folder: str, tag: str, run: int) -> dict:
        """The payload valid for ``run`` under ``(folder, tag)``.

        Raises :class:`IOVError` when no interval covers the run — an IOV
        *gap*, which is a real operational failure mode.
        """
        if folder not in self._folders:
            raise ConditionsError(f"unknown folder {folder!r}")
        if tag not in self._folders[folder]:
            raise ConditionsError(f"unknown tag {folder}/{tag}")
        self._access_log.append((folder, tag, run))
        for entry in self._folders[folder][tag]:
            if entry.iov.contains(run):
                return dict(entry.payload)
        raise IOVError(f"{folder}/{tag}: no IOV covers run {run}")

    def payload_for_global_tag(self, folder: str, global_tag_name: str,
                               run: int) -> dict:
        """Resolve a folder through a global tag and fetch the payload."""
        global_tag = self.global_tag(global_tag_name)
        return self.payload(folder, global_tag.tag_for(folder), run)

    def iovs(self, folder: str, tag: str) -> list[IOV]:
        """The IOV list for ``(folder, tag)``, in run order."""
        if folder not in self._folders or tag not in self._folders[folder]:
            raise ConditionsError(f"unknown {folder}/{tag}")
        return [entry.iov for entry in self._folders[folder][tag]]

    # ------------------------------------------------------------------
    # Dependency accounting (the preservation hook)
    # ------------------------------------------------------------------

    @property
    def access_log(self) -> list[tuple[str, str, int]]:
        """Every ``(folder, tag, run)`` read since construction.

        The workflow layer uses this to *enumerate external dependencies*:
        the set of conditions payloads a processing step actually consumed.
        """
        return list(self._access_log)

    def clear_access_log(self) -> None:
        """Reset the access log (e.g. between workflow steps)."""
        self._access_log.clear()

    def accessed_payload_keys(self) -> set[tuple[str, str]]:
        """Distinct ``(folder, tag)`` pairs that were read."""
        return {(folder, tag) for folder, tag, _ in self._access_log}
