"""IOV-interval memoization of global-tag conditions reads.

Reconstruction asks the conditions database for the same payloads over
and over: every event of a run resolves the same global tag, the same
folder -> tag mapping, and the same interval of validity. A
:class:`CachedConditionsView` collapses that repeated work to a single
dictionary hit by memoizing each resolved ``(folder, IOV)`` payload the
first time it is read, keyed by the interval rather than the run — so a
whole run range shares one cache entry per folder per IOV.

The cache is *exact*, never stale: the underlying
:class:`~repro.conditions.store.ConditionsStore` is immutable-per-tag by
construction (overlapping IOVs are rejected, payloads are copied on
write), so a payload resolved once for an interval is the payload for
every run in that interval. The determinism tests assert byte-equality
against an uncached :class:`~repro.reconstruction.GlobalTagView` across
IOV boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditions.iov import IOV
from repro.conditions.store import ConditionsStore
from repro.errors import IOVError


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one cached view."""

    hits: int
    misses: int

    @property
    def reads(self) -> int:
        """Total payload reads served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from cache (0.0 when unused)."""
        return self.hits / self.reads if self.reads else 0.0

    def to_dict(self) -> dict:
        """Serialise for benchmark reports."""
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate}


class CachedConditionsView:
    """A memoizing ConditionsSource over ``(store, global_tag)``.

    Drop-in replacement for :class:`~repro.reconstruction.GlobalTagView`:
    same constructor, same ``payload(folder, run)`` answers, same
    failure modes (unknown folders and IOV gaps still raise through the
    store). Each ``payload`` call returns a fresh copy, exactly like the
    store does, so callers may mutate the result freely.
    """

    def __init__(self, store: ConditionsStore, global_tag_name: str) -> None:
        self.store = store
        self.global_tag_name = global_tag_name
        # Fail fast on unknown global tags, like GlobalTagView.
        self._global_tag = store.global_tag(global_tag_name)
        #: folder -> list of resolved (IOV, payload) entries.
        self._resolved: dict[str, list[tuple[IOV, dict]]] = {}
        #: folder -> the entry that served the previous read. Events
        #: arrive in run order, so this one-slot memo serves almost
        #: every hit with a single interval test.
        self._last: dict[str, tuple[IOV, dict]] = {}
        self._hits = 0
        self._misses = 0

    def payload(self, folder: str, run: int) -> dict:
        """The payload for ``folder`` valid at ``run``, cached per IOV."""
        last = self._last.get(folder)
        if last is not None and last[0].contains(run):
            self._hits += 1
            return dict(last[1])
        for entry in self._resolved.get(folder, ()):
            if entry[0].contains(run):
                self._last[folder] = entry
                self._hits += 1
                return dict(entry[1])
        return dict(self._resolve(folder, run))

    def _resolve(self, folder: str, run: int) -> dict:
        """Miss path: one real store read, then remember its interval."""
        self._misses += 1
        tag = self._global_tag.tag_for(folder)
        payload = self.store.payload(folder, tag, run)
        for iov in self.store.iovs(folder, tag):
            if iov.contains(run):
                entry = (iov, payload)
                self._resolved.setdefault(folder, []).append(entry)
                self._last[folder] = entry
                return payload
        raise IOVError(  # pragma: no cover - store.payload raised first
            f"{folder}/{tag}: no IOV covers run {run}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Hit/miss accounting since construction."""
        return CacheStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        """Drop every memoized payload (stats included)."""
        self._resolved.clear()
        self._last.clear()
        self._hits = 0
        self._misses = 0

    def describe(self) -> dict:
        """Provenance description of this conditions configuration.

        Same shape as :meth:`GlobalTagView.describe` plus the cache
        marker, so dependency records stay comparable across modes.
        """
        return {
            "mode": "database",
            "store": self.store.name,
            "global_tag": self.global_tag_name,
            "cached": True,
        }
