"""Conditions database: calibration constants with intervals of validity.

The paper singles out conditions data as the dominant *external dependency*
of the Reconstruction step ("at least one and sometimes many different
databases that store all manner of calibration constants, conditions data,
etc.") and notes the ALICE variation of shipping constants as text files.
This package implements both access modes:

- :class:`ConditionsStore` — a tagged, IOV-versioned database queried live
  by run number (the ATLAS/CMS/LHCb style), and
- :mod:`repro.conditions.snapshot` — flat-file snapshots extracted from the
  store that travel with the data (the ALICE style).

The preservation layer enumerates these dependencies when encapsulating a
workflow.
"""

from repro.conditions.iov import IOV
from repro.conditions.store import ConditionsStore, GlobalTag
from repro.conditions.cache import CachedConditionsView, CacheStats
from repro.conditions.calibration import (
    CalibrationCampaign,
    default_conditions,
)
from repro.conditions.snapshot import (
    ConditionsSnapshot,
    export_snapshot,
    load_snapshot,
)

__all__ = [
    "IOV",
    "ConditionsStore",
    "GlobalTag",
    "CachedConditionsView",
    "CacheStats",
    "CalibrationCampaign",
    "default_conditions",
    "ConditionsSnapshot",
    "export_snapshot",
    "load_snapshot",
]
