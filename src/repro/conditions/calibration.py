"""Standard calibration content for the toy experiments.

A :class:`CalibrationCampaign` populates a :class:`ConditionsStore` with
the folders reconstruction needs — calorimeter energy scales, tracker
alignment, beam-spot position — across a range of runs, including the
run-to-run drift that makes IOV versioning necessary in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conditions.iov import IOV, INFINITE_RUN
from repro.conditions.store import ConditionsStore, GlobalTag

#: Folder names used by reconstruction.
FOLDER_ECAL_SCALE = "calo/ecal_energy_scale"
FOLDER_HCAL_SCALE = "calo/hcal_energy_scale"
FOLDER_TRACKER_ALIGNMENT = "tracker/alignment"
FOLDER_BEAMSPOT = "beam/beamspot"

#: The standard folders every reconstruction pass reads.
RECONSTRUCTION_FOLDERS = (
    FOLDER_ECAL_SCALE,
    FOLDER_HCAL_SCALE,
    FOLDER_TRACKER_ALIGNMENT,
    FOLDER_BEAMSPOT,
)


@dataclass
class CalibrationCampaign:
    """Generates a realistic set of calibration payloads.

    ``first_run``/``last_run`` bound the campaign; payloads are issued in
    blocks of ``runs_per_iov`` runs with small deterministic drifts sampled
    from ``seed``. Two tags are produced per folder: a ``prompt`` tag with
    coarse constants and a ``final`` tag with refined ones — mirroring the
    prompt/re-reco calibration cycles of the real experiments.
    """

    first_run: int = 1
    last_run: int = 100
    runs_per_iov: int = 10
    seed: int = 777

    def populate(self, store: ConditionsStore) -> None:
        """Fill ``store`` with payloads and register global tags."""
        rng = np.random.default_rng(self.seed)
        for folder in RECONSTRUCTION_FOLDERS:
            store.create_folder(folder)
        run = self.first_run
        while run <= self.last_run:
            iov = IOV(run, min(run + self.runs_per_iov - 1, self.last_run))
            drift = float(rng.normal(0.0, 0.01))
            refined_drift = drift * 0.2
            store.add_payload(FOLDER_ECAL_SCALE, "prompt", iov,
                              {"scale": 1.0 + drift})
            store.add_payload(FOLDER_ECAL_SCALE, "final", iov,
                              {"scale": 1.0 + refined_drift})
            hcal_drift = float(rng.normal(0.0, 0.02))
            store.add_payload(FOLDER_HCAL_SCALE, "prompt", iov,
                              {"scale": 1.0 + hcal_drift})
            store.add_payload(FOLDER_HCAL_SCALE, "final", iov,
                              {"scale": 1.0 + 0.2 * hcal_drift})
            shift_x = float(rng.normal(0.0, 0.005))
            shift_y = float(rng.normal(0.0, 0.005))
            store.add_payload(FOLDER_TRACKER_ALIGNMENT, "prompt", iov,
                              {"dx_mm": shift_x, "dy_mm": shift_y})
            store.add_payload(FOLDER_TRACKER_ALIGNMENT, "final", iov,
                              {"dx_mm": 0.1 * shift_x, "dy_mm": 0.1 * shift_y})
            store.add_payload(FOLDER_BEAMSPOT, "prompt", iov, {
                "x_mm": float(rng.normal(0.0, 0.01)),
                "y_mm": float(rng.normal(0.0, 0.01)),
                "z_mm": float(rng.normal(0.0, 2.0)),
                "sigma_z_mm": 35.0,
            })
            store.add_payload(FOLDER_BEAMSPOT, "final", iov,
                              store.payload(FOLDER_BEAMSPOT, "prompt",
                                            iov.first_run))
            run += self.runs_per_iov
        # Open-ended fallback so MC processing (run 0 conventions aside)
        # and future runs resolve; attached after the campaign range.
        tail = IOV(self.last_run + 1, INFINITE_RUN)
        for folder in RECONSTRUCTION_FOLDERS:
            for tag in ("prompt", "final"):
                payload = store.payload(folder, tag, self.last_run)
                store.add_payload(folder, tag, tail, payload)
        store.register_global_tag(GlobalTag.from_mapping(
            "GT-PROMPT",
            {folder: "prompt" for folder in RECONSTRUCTION_FOLDERS},
        ))
        store.register_global_tag(GlobalTag.from_mapping(
            "GT-FINAL",
            {folder: "final" for folder in RECONSTRUCTION_FOLDERS},
        ))


def default_conditions(first_run: int = 1, last_run: int = 100,
                       seed: int = 777) -> ConditionsStore:
    """A fully populated conditions store with GT-PROMPT and GT-FINAL."""
    store = ConditionsStore("toy-conditions")
    CalibrationCampaign(first_run=first_run, last_run=last_run,
                        seed=seed).populate(store)
    return store
