"""Intervals of validity for conditions payloads."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IOVError

#: Sentinel meaning "valid until further notice".
INFINITE_RUN = 2**31 - 1


@dataclass(frozen=True, slots=True)
class IOV:
    """A closed run-number interval ``[first_run, last_run]``.

    ``last_run`` defaults to :data:`INFINITE_RUN`, meaning open-ended.
    """

    first_run: int
    last_run: int = INFINITE_RUN

    def __post_init__(self) -> None:
        if self.first_run < 0:
            raise IOVError(f"first_run must be >= 0, got {self.first_run}")
        if self.last_run < self.first_run:
            raise IOVError(
                f"IOV is empty: [{self.first_run}, {self.last_run}]"
            )

    def contains(self, run: int) -> bool:
        """True if ``run`` lies inside this interval."""
        return self.first_run <= run <= self.last_run

    def overlaps(self, other: "IOV") -> bool:
        """True if the two intervals share at least one run."""
        return (self.first_run <= other.last_run
                and other.first_run <= self.last_run)

    @property
    def is_open_ended(self) -> bool:
        """True if this interval never expires."""
        return self.last_run == INFINITE_RUN

    def to_dict(self) -> dict:
        """Serialise for snapshot files."""
        return {"first_run": self.first_run, "last_run": self.last_run}

    @classmethod
    def from_dict(cls, record: dict) -> "IOV":
        """Inverse of :meth:`to_dict`."""
        return cls(int(record["first_run"]), int(record["last_run"]))

    def __str__(self) -> str:
        last = "inf" if self.is_open_ended else str(self.last_run)
        return f"[{self.first_run}, {last}]"
