"""Processing chains and their provenance-recording runner."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datamodel.tiers import DataTier
from repro.errors import WorkflowError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active
from repro.provenance.capture import ProvenanceCapture
from repro.provenance.records import ProducerRecord
from repro.workflow.step import ProcessingStep, StepContext


@dataclass
class ProcessingChain:
    """A linear sequence of processing steps.

    The constructor validates tier continuity: each step's ``input_tier``
    must equal its predecessor's ``output_tier`` (source steps go first).
    Branching workflows are modelled as multiple chains sharing dataset
    names through the runner.
    """

    name: str
    steps: list[ProcessingStep]

    def __post_init__(self) -> None:
        if not self.steps:
            raise WorkflowError(f"chain {self.name!r} has no steps")
        previous_output: DataTier | None = None
        for position, step in enumerate(self.steps):
            if position == 0:
                if step.input_tier is not None:
                    # Chains may also start from an existing dataset; the
                    # runner checks the actual input tier in that case.
                    previous_output = step.input_tier
            elif step.input_tier != previous_output:
                raise WorkflowError(
                    f"chain {self.name!r}: step {step.name!r} expects "
                    f"{step.input_tier} but predecessor produces "
                    f"{previous_output}"
                )
            previous_output = step.output_tier

    @property
    def is_source_chain(self) -> bool:
        """True when the first step generates its own input."""
        return self.steps[0].input_tier is None

    def describe(self) -> dict:
        """Machine-readable chain description for preservation."""
        return {
            "name": self.name,
            "steps": [step.describe() for step in self.steps],
        }


@dataclass
class ChainResult:
    """Everything a chain run produced."""

    chain_name: str
    #: dataset name -> list of event records (live Python objects).
    datasets: dict[str, list] = field(default_factory=dict)
    #: dataset name -> artifact id in the provenance capture.
    artifact_ids: dict[str, str] = field(default_factory=dict)
    #: dataset name -> external-dependency enumeration.
    externals: dict[str, dict] = field(default_factory=dict)

    def dataset(self, name: str) -> list:
        """Look up one produced dataset by name."""
        try:
            return self.datasets[name]
        except KeyError:
            raise WorkflowError(
                f"chain {self.chain_name!r} produced no dataset {name!r}; "
                f"available: {sorted(self.datasets)}"
            ) from None

    def final_dataset(self) -> list:
        """The last dataset the chain produced."""
        if not self.datasets:
            raise WorkflowError(
                f"chain {self.chain_name!r} produced no datasets; "
                f"was the chain run?"
            )
        last_name = list(self.datasets)[-1]
        return self.datasets[last_name]


class ChainRunner:
    """Executes chains, reporting every dataset to a provenance capture.

    An enabled ``tracer`` records a ``chain.run`` span per chain with
    one ``chain.step`` child per executed step; ``metrics`` counts
    steps and produced records. Step failures are raised with the
    chain name, step name, step position, and active span name
    attached, so a failed sweep is attributable from the error alone.
    """

    def __init__(self, capture: ProvenanceCapture | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.capture = capture if capture is not None else ProvenanceCapture()
        self.tracer = tracer
        self.metrics = metrics

    def run(
        self,
        chain: ProcessingChain,
        context: StepContext | None = None,
        initial_records: list | None = None,
        initial_artifact_id: str | None = None,
    ) -> ChainResult:
        """Run a chain end to end.

        A source chain takes no ``initial_records``; a derivation chain
        requires them (and, for full provenance, the artifact id of the
        dataset they came from).
        """
        if context is None:
            context = StepContext()
        if chain.is_source_chain and initial_records:
            raise WorkflowError(
                f"chain {chain.name!r} is a source chain; it takes no "
                f"initial records"
            )
        if not chain.is_source_chain and initial_records is None:
            raise WorkflowError(
                f"chain {chain.name!r} needs initial records of tier "
                f"{chain.steps[0].input_tier}"
            )
        result = ChainResult(chain_name=chain.name)
        records = initial_records if initial_records is not None else []
        parent_artifact = initial_artifact_id
        obs = active(self.tracer)

        with obs.span("chain.run", chain=chain.name,
                      n_steps=len(chain.steps)):
            for position, step in enumerate(chain.steps):
                records = self._run_step(chain, step, position, records,
                                         context, obs)
                parent_artifact = self._report_step(
                    chain, step, records, parent_artifact, result)
        return result

    def _run_step(self, chain: ProcessingChain, step: ProcessingStep,
                  position: int, records: list,
                  context: StepContext, obs: Tracer) -> list:
        """Execute one step under its span, attributing any failure."""
        try:
            with obs.span("chain.step", chain=chain.name,
                          step=step.name, position=position) as span:
                produced = step.run(records, context)
                span.set("n_records", len(produced))
        except Exception as exc:
            # Keep WorkflowError subclasses (StepError, ...) but attach
            # the chain, step, position, and span the failure happened
            # under — a bare "step failed" is unattributable years on.
            error_type = (type(exc) if isinstance(exc, WorkflowError)
                          else WorkflowError)
            raise error_type(
                f"chain {chain.name!r}: step {step.name!r} "
                f"(position {position}, span 'chain.step') "
                f"failed: {exc}"
            ) from exc
        if self.metrics is not None:
            self.metrics.counter("chain.steps").inc()
            self.metrics.counter("chain.records").inc(len(produced))
        return produced

    def _report_step(self, chain: ProcessingChain, step: ProcessingStep,
                     records: list, parent_artifact: str | None,
                     result: ChainResult) -> str:
        """Report one produced dataset to the provenance capture."""
        dataset_name = f"{chain.name}/{step.name}"
        externals = step.external_dependencies()
        artifact_id = self.capture.new_artifact_id(dataset_name)
        self.capture.report(
            artifact_id=artifact_id,
            kind="dataset",
            tier=step.output_tier.value,
            parents=(parent_artifact,) if parent_artifact else (),
            producer=ProducerRecord(
                name=step.name,
                version=step.version,
                configuration=step.configuration(),
            ),
            externals=externals,
            attributes={"n_events": len(records)},
        )
        result.datasets[dataset_name] = records
        result.artifact_ids[dataset_name] = artifact_id
        result.externals[dataset_name] = externals
        return artifact_id
