"""Processing chains and their provenance-recording runner."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datamodel.tiers import DataTier
from repro.errors import WorkflowError
from repro.provenance.capture import ProvenanceCapture
from repro.provenance.records import ProducerRecord
from repro.workflow.step import ProcessingStep, StepContext


@dataclass
class ProcessingChain:
    """A linear sequence of processing steps.

    The constructor validates tier continuity: each step's ``input_tier``
    must equal its predecessor's ``output_tier`` (source steps go first).
    Branching workflows are modelled as multiple chains sharing dataset
    names through the runner.
    """

    name: str
    steps: list[ProcessingStep]

    def __post_init__(self) -> None:
        if not self.steps:
            raise WorkflowError(f"chain {self.name!r} has no steps")
        previous_output: DataTier | None = None
        for position, step in enumerate(self.steps):
            if position == 0:
                if step.input_tier is not None:
                    # Chains may also start from an existing dataset; the
                    # runner checks the actual input tier in that case.
                    previous_output = step.input_tier
            elif step.input_tier != previous_output:
                raise WorkflowError(
                    f"chain {self.name!r}: step {step.name!r} expects "
                    f"{step.input_tier} but predecessor produces "
                    f"{previous_output}"
                )
            previous_output = step.output_tier

    @property
    def is_source_chain(self) -> bool:
        """True when the first step generates its own input."""
        return self.steps[0].input_tier is None

    def describe(self) -> dict:
        """Machine-readable chain description for preservation."""
        return {
            "name": self.name,
            "steps": [step.describe() for step in self.steps],
        }


@dataclass
class ChainResult:
    """Everything a chain run produced."""

    chain_name: str
    #: dataset name -> list of event records (live Python objects).
    datasets: dict[str, list] = field(default_factory=dict)
    #: dataset name -> artifact id in the provenance capture.
    artifact_ids: dict[str, str] = field(default_factory=dict)
    #: dataset name -> external-dependency enumeration.
    externals: dict[str, dict] = field(default_factory=dict)

    def dataset(self, name: str) -> list:
        """Look up one produced dataset by name."""
        try:
            return self.datasets[name]
        except KeyError:
            raise WorkflowError(
                f"chain {self.chain_name!r} produced no dataset {name!r}; "
                f"available: {sorted(self.datasets)}"
            ) from None

    def final_dataset(self) -> list:
        """The last dataset the chain produced."""
        if not self.datasets:
            raise WorkflowError(
                f"chain {self.chain_name!r} produced no datasets; "
                f"was the chain run?"
            )
        last_name = list(self.datasets)[-1]
        return self.datasets[last_name]


class ChainRunner:
    """Executes chains, reporting every dataset to a provenance capture."""

    def __init__(self, capture: ProvenanceCapture | None = None) -> None:
        self.capture = capture if capture is not None else ProvenanceCapture()

    def run(
        self,
        chain: ProcessingChain,
        context: StepContext | None = None,
        initial_records: list | None = None,
        initial_artifact_id: str | None = None,
    ) -> ChainResult:
        """Run a chain end to end.

        A source chain takes no ``initial_records``; a derivation chain
        requires them (and, for full provenance, the artifact id of the
        dataset they came from).
        """
        if context is None:
            context = StepContext()
        if chain.is_source_chain and initial_records:
            raise WorkflowError(
                f"chain {chain.name!r} is a source chain; it takes no "
                f"initial records"
            )
        if not chain.is_source_chain and initial_records is None:
            raise WorkflowError(
                f"chain {chain.name!r} needs initial records of tier "
                f"{chain.steps[0].input_tier}"
            )
        result = ChainResult(chain_name=chain.name)
        records = initial_records if initial_records is not None else []
        parent_artifact = initial_artifact_id

        for step in chain.steps:
            try:
                records = step.run(records, context)
            except Exception as exc:
                if isinstance(exc, WorkflowError):
                    raise
                raise WorkflowError(
                    f"chain {chain.name!r}: step {step.name!r} failed: {exc}"
                ) from exc
            dataset_name = f"{chain.name}/{step.name}"
            externals = step.external_dependencies()
            artifact_id = self.capture.new_artifact_id(dataset_name)
            self.capture.report(
                artifact_id=artifact_id,
                kind="dataset",
                tier=step.output_tier.value,
                parents=(parent_artifact,) if parent_artifact else (),
                producer=ProducerRecord(
                    name=step.name,
                    version=step.version,
                    configuration=step.configuration(),
                ),
                externals=externals,
                attributes={"n_events": len(records)},
            )
            result.datasets[dataset_name] = records
            result.artifact_ids[dataset_name] = artifact_id
            result.externals[dataset_name] = externals
            parent_artifact = artifact_id
        return result
