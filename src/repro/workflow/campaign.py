"""Multi-run processing campaigns.

Central production does not process one run: it sweeps a run range,
fetching the conditions valid for *each* run and producing one dataset
per run. A :class:`ProcessingCampaign` models that sweep — the thing a
"processing version" names in the experiments' data catalogues — and its
:meth:`conditions_manifest` is the complete external-dependency record
the preservation layer must archive for the whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conditions.store import ConditionsStore
from repro.datamodel.event import AODEvent, make_aod
from repro.datamodel.luminosity import GoodRunList, RunRegistry
from repro.detector.digitization import Digitizer
from repro.detector.geometry import DetectorGeometry
from repro.detector.simulation import DetectorSimulation
from repro.errors import WorkflowError
from repro.generation.generator import ToyGenerator
from repro.reconstruction.reconstructor import (
    GlobalTagView,
    Reconstructor,
)


@dataclass
class RunResult:
    """The output of processing one run."""

    run_number: int
    aods: list[AODEvent] = field(default_factory=list)
    conditions_used: dict = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        """Events produced for this run."""
        return len(self.aods)


class ProcessingCampaign:
    """Processes a run range under one conditions global tag.

    ``events_per_section`` events are generated per certified lumi
    section (capped by ``max_events_per_run`` to keep toys fast). Runs
    not in the good-run list are skipped entirely — certified data is
    the only data a campaign processes.
    """

    def __init__(
        self,
        name: str,
        geometry: DetectorGeometry,
        conditions: ConditionsStore,
        global_tag: str,
        generator: ToyGenerator,
        events_per_section: float = 0.2,
        max_events_per_run: int = 50,
        seed: int = 6000,
    ) -> None:
        if events_per_section <= 0.0:
            raise WorkflowError("events_per_section must be positive")
        self.name = name
        self.geometry = geometry
        self.conditions = conditions
        self.global_tag = global_tag
        self.generator = generator
        self.events_per_section = events_per_section
        self.max_events_per_run = max_events_per_run
        self.seed = seed
        self._results: dict[int, RunResult] = {}

    def process(self, registry: RunRegistry,
                good_runs: GoodRunList) -> dict[int, RunResult]:
        """Process every certified run of the registry."""
        for run_number in registry.run_numbers():
            n_sections = good_runs.certified_sections(run_number)
            if n_sections == 0:
                continue
            n_events = min(
                self.max_events_per_run,
                max(1, int(n_sections * self.events_per_section)),
            )
            self._results[run_number] = self._process_run(run_number,
                                                          n_events)
        return dict(self._results)

    def _process_run(self, run_number: int,
                     n_events: int) -> RunResult:
        simulation = DetectorSimulation(self.geometry,
                                        seed=self.seed + run_number)
        digitizer = Digitizer(self.geometry, run_number=run_number,
                              seed=self.seed + run_number + 1)
        reconstructor = Reconstructor(
            self.geometry,
            GlobalTagView(self.conditions, self.global_tag),
        )
        result = RunResult(run_number=run_number)
        for event in self.generator.stream(n_events):
            raw = digitizer.digitize(simulation.simulate(event))
            result.aods.append(make_aod(reconstructor.reconstruct(raw)))
        # Record exactly which payloads this run's reconstruction used.
        view = GlobalTagView(self.conditions, self.global_tag)
        result.conditions_used = {
            folder: view.payload(folder, run_number)
            for folder in sorted(
                {f for f, _ in reconstructor.conditions_reads}
            )
        }
        return result

    def results(self) -> dict[int, RunResult]:
        """All per-run results processed so far."""
        return dict(self._results)

    def all_aods(self) -> list[AODEvent]:
        """The campaign's combined AOD sample, run-ordered."""
        combined = []
        for run_number in sorted(self._results):
            combined.extend(self._results[run_number].aods)
        return combined

    def conditions_manifest(self) -> dict:
        """The campaign-wide conditions record for preservation.

        Maps every processed run to the exact payloads used — the
        "enumerate and encapsulate external dependencies" artifact at
        campaign granularity.
        """
        return {
            "campaign": self.name,
            "global_tag": self.global_tag,
            "runs": {
                str(run_number): result.conditions_used
                for run_number, result in sorted(self._results.items())
            },
        }

    def describe(self) -> dict:
        """Preservable campaign configuration."""
        return {
            "campaign": self.name,
            "geometry": self.geometry.name,
            "global_tag": self.global_tag,
            "generator": self.generator.run_info.to_dict(),
            "events_per_section": self.events_per_section,
            "max_events_per_run": self.max_events_per_run,
        }
