"""Multi-run processing campaigns.

Central production does not process one run: it sweeps a run range,
fetching the conditions valid for *each* run and producing one dataset
per run. A :class:`ProcessingCampaign` models that sweep — the thing a
"processing version" names in the experiments' data catalogues — and its
:meth:`conditions_manifest` is the complete external-dependency record
the preservation layer must archive for the whole campaign.

Runs are independent work units: each owns a generator, simulation and
digitisation seed derived deterministically from the campaign seed and
the run number, and its own cached conditions view. That independence is
what lets :meth:`ProcessingCampaign.process` fan runs out across an
:class:`~repro.runtime.ExecutionPolicy`'s workers while producing output
bit-identical to the serial sweep.
"""

from __future__ import annotations

import copy
import functools
from dataclasses import dataclass, field, replace

from repro.conditions.cache import CachedConditionsView
from repro.conditions.store import ConditionsStore
from repro.datamodel.event import AODEvent, make_aod
from repro.datamodel.luminosity import GoodRunList, RunRegistry
from repro.detector.digitization import Digitizer
from repro.detector.geometry import DetectorGeometry
from repro.detector.simulation import DetectorSimulation
from repro.errors import WorkflowError
from repro.generation.generator import ToyGenerator
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active
from repro.reconstruction.reconstructor import Reconstructor
from repro.runtime import ExecutionPolicy, derive_seed, parallel_map


@dataclass
class RunResult:
    """The output of processing one run."""

    run_number: int
    aods: list[AODEvent] = field(default_factory=list)
    conditions_used: dict = field(default_factory=dict)
    #: Observability sidecar (worker spans, derived seed, read counts);
    #: populated only when the campaign is processed under a tracer.
    stats: dict = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        """Events produced for this run."""
        return len(self.aods)


class ProcessingCampaign:
    """Processes a run range under one conditions global tag.

    ``events_per_section`` events are generated per certified lumi
    section (capped by ``max_events_per_run`` to keep toys fast). Runs
    not in the good-run list are skipped entirely — certified data is
    the only data a campaign processes.

    ``policy`` sets the default execution policy of :meth:`process`;
    the default is serial. Every policy produces identical results —
    each run derives its generator seed from the campaign's generator
    seed and its run number, so no run depends on how many events any
    other run drew.
    """

    def __init__(
        self,
        name: str,
        geometry: DetectorGeometry,
        conditions: ConditionsStore,
        global_tag: str,
        generator: ToyGenerator,
        events_per_section: float = 0.2,
        max_events_per_run: int = 50,
        seed: int = 6000,
        policy: ExecutionPolicy | None = None,
        columnar: bool = False,
    ) -> None:
        if events_per_section <= 0.0:
            raise WorkflowError("events_per_section must be positive")
        self.name = name
        self.geometry = geometry
        self.conditions = conditions
        self.global_tag = global_tag
        self.generator = generator
        self.events_per_section = events_per_section
        self.max_events_per_run = max_events_per_run
        self.seed = seed
        self.policy = policy
        self.columnar = columnar
        self._results: dict[int, RunResult] = {}

    def process(self, registry: RunRegistry, good_runs: GoodRunList,
                policy: ExecutionPolicy | None = None,
                *,
                tracer: Tracer | None = None,
                metrics: MetricsRegistry | None = None,
                ) -> dict[int, RunResult]:
        """Process every certified run of the registry.

        ``policy`` overrides the campaign's default policy for this
        sweep. Results are merged back in run order regardless of which
        worker finished first.

        An enabled ``tracer`` records a ``campaign.process`` span with
        one ``campaign.run`` child per run — each carrying the run's
        derived generator seed, event count, and conditions-read count,
        timed on the worker that processed it and adopted back in run
        order; ``metrics`` receives run/event/read counters.
        """
        if policy is None:
            policy = self.policy
        obs = active(tracer)
        tasks = []
        for run_number in registry.run_numbers():
            n_sections = good_runs.certified_sections(run_number)
            if n_sections == 0:
                continue
            n_events = min(
                self.max_events_per_run,
                max(1, int(n_sections * self.events_per_section)),
            )
            tasks.append((len(tasks), run_number, n_events))
        template = self._worker_template()
        template._observe_runs = obs.enabled or metrics is not None
        worker = functools.partial(_process_run_worker, template)
        with obs.span("campaign.process", campaign=self.name,
                      global_tag=self.global_tag,
                      n_runs=len(tasks)) as sweep:
            for result in parallel_map(worker, tasks, policy):
                obs.adopt(result.stats.pop("spans", []), parent=sweep)
                if metrics is not None:
                    metrics.counter("campaign.runs").inc()
                    metrics.counter("campaign.events").inc(
                        result.n_events)
                    metrics.counter("campaign.conditions_reads").inc(
                        result.stats.get("conditions_reads", 0))
                self._results[result.run_number] = result
        return dict(self._results)

    def _worker_template(self) -> "ProcessingCampaign":
        """A results-free copy to ship to workers.

        Shallow-copying keeps the pickled task payload constant-size
        instead of shipping every previously processed run along.
        """
        template = copy.copy(self)
        template._results = {}
        return template

    def _process_run(self, run_number: int, n_events: int,
                     run_index: int = 0) -> RunResult:
        observe = getattr(self, "_observe_runs", False)
        worker_tracer = Tracer("worker", enabled=observe)
        try:
            with worker_tracer.span("campaign.run", run=run_number,
                                    n_events=n_events) as span:
                result = self._process_certified_run(
                    run_number, n_events, span)
        except Exception as exc:
            # Attribution: which run of the sweep died, under which
            # span, at which task index. WorkflowError subclasses keep
            # their type; anything else becomes a WorkflowError.
            error_type = (type(exc) if isinstance(exc, WorkflowError)
                          else WorkflowError)
            raise error_type(
                f"campaign {self.name!r}: run {run_number} "
                f"(span 'campaign.run', run index {run_index}) "
                f"failed: {exc}"
            ) from exc
        if observe:
            result.stats["spans"] = worker_tracer.spans
        return result

    def _process_certified_run(self, run_number: int, n_events: int,
                               span) -> RunResult:
        generator = self._run_generator(run_number)
        simulation = DetectorSimulation(self.geometry,
                                        seed=self.seed + run_number)
        digitizer = Digitizer(self.geometry, run_number=run_number,
                              seed=self.seed + run_number + 1)
        # One cached view per run: the per-event double store lookup
        # collapses to a dict hit after the first event of the run.
        view = CachedConditionsView(self.conditions, self.global_tag)
        reconstructor = Reconstructor(self.geometry, view)
        result = RunResult(run_number=run_number)
        if getattr(self, "columnar", False):
            # Columnar engine. Generation/simulation/digitisation use
            # the same per-component streams in the same per-event
            # order as the scalar loop (each stage owns a private
            # generator, so de-interleaving the stages consumes each
            # stream identically), and reconstruct_batch is
            # bit-identical to reconstruct by contract — the run's
            # AODs match the per-event path bit for bit.
            events = list(generator.stream(n_events))
            raws = digitizer.digitize_many(
                simulation.simulate_many(events))
            recos = reconstructor.reconstruct_batch(raws)
            result.aods = [make_aod(reco) for reco in recos]
            span.set("engine", "columnar")
        else:
            for event in generator.stream(n_events):
                raw = digitizer.digitize(simulation.simulate(event))
                result.aods.append(
                    make_aod(reconstructor.reconstruct(raw)))
        # Record exactly which payloads this run's reconstruction used —
        # read back through the *same* view the reconstructor used, so
        # the dependency record cannot drift from the payloads applied.
        result.conditions_used = {
            folder: view.payload(folder, run_number)
            for folder in sorted(
                {f for f, _ in reconstructor.conditions_reads}
            )
        }
        n_reads = len(reconstructor.conditions_reads)
        result.stats["conditions_reads"] = n_reads
        result.stats["generator_seed"] = generator.config.seed
        span.set("generator_seed", generator.config.seed)
        span.set("conditions_reads", n_reads)
        return result

    def _run_generator(self, run_number: int) -> ToyGenerator:
        """A private generator for one run.

        The seed derives from the campaign generator's seed and the run
        number alone, making every run's event sample independent of
        execution order — the property the parallel sweep relies on.
        """
        config = replace(
            self.generator.config,
            seed=derive_seed(self.generator.config.seed, "run", run_number),
        )
        return ToyGenerator(config, table=self.generator.table)

    def results(self) -> dict[int, RunResult]:
        """All per-run results processed so far."""
        return dict(self._results)

    def all_aods(self) -> list[AODEvent]:
        """The campaign's combined AOD sample, run-ordered."""
        combined = []
        for run_number in sorted(self._results):
            combined.extend(self._results[run_number].aods)
        return combined

    def conditions_manifest(self) -> dict:
        """The campaign-wide conditions record for preservation.

        Maps every processed run to the exact payloads used — the
        "enumerate and encapsulate external dependencies" artifact at
        campaign granularity.
        """
        return {
            "campaign": self.name,
            "global_tag": self.global_tag,
            "runs": {
                str(run_number): result.conditions_used
                for run_number, result in sorted(self._results.items())
            },
        }

    def describe(self) -> dict:
        """Preservable campaign configuration."""
        return {
            "campaign": self.name,
            "geometry": self.geometry.name,
            "global_tag": self.global_tag,
            "generator": self.generator.run_info.to_dict(),
            "events_per_section": self.events_per_section,
            "max_events_per_run": self.max_events_per_run,
        }


def _process_run_worker(campaign: ProcessingCampaign,
                        task: tuple[int, int, int]) -> RunResult:
    """Module-level worker driver so process pools can pickle it."""
    run_index, run_number, n_events = task
    return campaign._process_run(run_number, n_events, run_index)
