"""External-resource accounting for preservation.

The paper: "Enumerating and potentially encapsulating these external
dependencies will be an important ingredient in the analysis preservation
process." :func:`summarize_resources` turns the per-dataset dependency
enumerations of a chain run into a single report the preservation layer
can archive alongside the workflow description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workflow.chain import ChainResult


@dataclass
class ResourceReport:
    """Aggregated external dependencies of one or more chain runs."""

    conditions_folders: set[str] = field(default_factory=set)
    conditions_modes: set[str] = field(default_factory=set)
    global_tags: set[str] = field(default_factory=set)
    runs: set[int] = field(default_factory=set)
    datasets_with_externals: int = 0
    datasets_total: int = 0

    @property
    def is_self_contained(self) -> bool:
        """True when no step consumed any external resource."""
        return self.datasets_with_externals == 0

    def to_dict(self) -> dict:
        """Serialise for preservation records."""
        return {
            "conditions_folders": sorted(self.conditions_folders),
            "conditions_modes": sorted(self.conditions_modes),
            "global_tags": sorted(self.global_tags),
            "runs": sorted(self.runs),
            "datasets_with_externals": self.datasets_with_externals,
            "datasets_total": self.datasets_total,
        }

    def summary(self) -> str:
        """One-line human-readable report."""
        if self.is_self_contained:
            return "self-contained: no external dependencies"
        return (
            f"{self.datasets_with_externals}/{self.datasets_total} datasets "
            f"depend on {len(self.conditions_folders)} conditions folders "
            f"(modes: {', '.join(sorted(self.conditions_modes)) or 'n/a'}; "
            f"global tags: {', '.join(sorted(self.global_tags)) or 'n/a'})"
        )


def summarize_resources(*results: ChainResult) -> ResourceReport:
    """Aggregate the externals of any number of chain results."""
    report = ResourceReport()
    for result in results:
        for externals in result.externals.values():
            report.datasets_total += 1
            if not externals:
                continue
            report.datasets_with_externals += 1
            for folder in externals.get("folders", []):
                report.conditions_folders.add(folder)
            for run in externals.get("runs", []):
                report.runs.add(int(run))
            conditions = externals.get("conditions", {})
            if conditions:
                mode = conditions.get("mode")
                if mode:
                    report.conditions_modes.add(str(mode))
                global_tag = conditions.get("global_tag")
                if global_tag:
                    report.global_tags.add(str(global_tag))
    return report
