"""Processing-step abstractions and the standard step library."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.datamodel.event import AODEvent, make_aod
from repro.datamodel.skimslim import SkimSpec, SlimSpec
from repro.datamodel.tiers import DataTier
from repro.detector.digitization import Digitizer
from repro.detector.simulation import DetectorSimulation
from repro.errors import StepError
from repro.generation.generator import ToyGenerator
from repro.reconstruction.reconstructor import Reconstructor


@dataclass
class StepContext:
    """Shared context passed to every step of a chain run.

    ``run_number`` keys the conditions database; ``extras`` carries
    chain-specific objects a custom step might need.
    """

    run_number: int = 1
    extras: dict = field(default_factory=dict)


class ProcessingStep(abc.ABC):
    """One stage of a processing chain.

    ``input_tier``/``output_tier`` declare the tier semantics so chains
    can be validated; ``None`` for ``input_tier`` marks a source step.
    """

    name: str = "step"
    version: str = "1.0.0"
    input_tier: DataTier | None = None
    output_tier: DataTier = DataTier.GEN

    @abc.abstractmethod
    def run(self, inputs: list, context: StepContext) -> list:
        """Transform the input records into the output records."""

    def configuration(self) -> dict:
        """JSON-serialisable configuration for the producer record."""
        return {}

    def external_dependencies(self) -> dict:
        """External resources consumed by the last :meth:`run` call."""
        return {}

    def describe(self) -> dict:
        """Provenance-friendly step description."""
        return {
            "name": self.name,
            "version": self.version,
            "input_tier": (self.input_tier.value
                           if self.input_tier is not None else None),
            "output_tier": self.output_tier.value,
            "configuration": self.configuration(),
        }


class GenerationStep(ProcessingStep):
    """Source step: Monte Carlo event generation."""

    name = "generation"
    input_tier = None
    output_tier = DataTier.GEN

    def __init__(self, generator: ToyGenerator, n_events: int) -> None:
        if n_events <= 0:
            raise StepError(f"n_events must be positive, got {n_events}")
        self.generator = generator
        self.n_events = n_events

    def run(self, inputs: list, context: StepContext) -> list:
        if inputs:
            raise StepError("generation is a source step; it takes no input")
        return self.generator.generate(self.n_events)

    def configuration(self) -> dict:
        return {
            "n_events": self.n_events,
            "run_info": self.generator.run_info.to_dict(),
        }


class SimulationStep(ProcessingStep):
    """GEN -> SIM: detector simulation."""

    name = "simulation"
    input_tier = DataTier.GEN
    output_tier = DataTier.SIM

    def __init__(self, simulation: DetectorSimulation) -> None:
        self.simulation = simulation

    def run(self, inputs: list, context: StepContext) -> list:
        return self.simulation.simulate_many(inputs)

    def configuration(self) -> dict:
        return self.simulation.describe()


class DigitizationStep(ProcessingStep):
    """SIM -> RAW: digitisation."""

    name = "digitization"
    input_tier = DataTier.SIM
    output_tier = DataTier.RAW

    def __init__(self, digitizer: Digitizer) -> None:
        self.digitizer = digitizer

    def run(self, inputs: list, context: StepContext) -> list:
        return self.digitizer.digitize_many(inputs)

    def configuration(self) -> dict:
        return self.digitizer.describe()


class ReconstructionStep(ProcessingStep):
    """RAW -> RECO: the conditions-dependent reconstruction pass."""

    name = "reconstruction"
    input_tier = DataTier.RAW
    output_tier = DataTier.RECO

    def __init__(self, reconstructor: Reconstructor) -> None:
        self.reconstructor = reconstructor

    def run(self, inputs: list, context: StepContext) -> list:
        return self.reconstructor.reconstruct_many(inputs)

    def configuration(self) -> dict:
        return self.reconstructor.describe()

    def external_dependencies(self) -> dict:
        return self.reconstructor.external_dependencies()


class AODProductionStep(ProcessingStep):
    """RECO -> AOD: drop the basic objects, evaluate the trigger menu."""

    name = "aod_production"
    input_tier = DataTier.RECO
    output_tier = DataTier.AOD

    def run(self, inputs: list, context: StepContext) -> list:
        return [make_aod(reco) for reco in inputs]


class SkimStep(ProcessingStep):
    """AOD -> AOD: declarative event selection."""

    input_tier = DataTier.AOD
    output_tier = DataTier.AOD

    def __init__(self, spec: SkimSpec) -> None:
        self.spec = spec
        self.name = f"skim:{spec.name}"

    def run(self, inputs: list, context: StepContext) -> list[AODEvent]:
        return self.spec.apply(inputs)

    def configuration(self) -> dict:
        return self.spec.to_dict()


class SlimStep(ProcessingStep):
    """AOD -> NTUPLE: declarative flattening to derived columns."""

    input_tier = DataTier.AOD
    output_tier = DataTier.NTUPLE

    def __init__(self, spec: SlimSpec) -> None:
        self.spec = spec
        self.name = f"slim:{spec.name}"

    def run(self, inputs: list, context: StepContext) -> list:
        return self.spec.apply(inputs)

    def configuration(self) -> dict:
        return self.spec.to_dict()
