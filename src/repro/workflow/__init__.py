"""The processing-workflow engine.

Models the paper's "generic outline of typical data processing": a chain
of :class:`ProcessingStep` objects (generation, simulation, digitisation,
reconstruction, AOD production, skims, slims), executed by a
:class:`ChainRunner` that records provenance for every produced dataset
and enumerates the external resources each step consumed.
"""

from repro.workflow.step import (
    AODProductionStep,
    DigitizationStep,
    GenerationStep,
    ProcessingStep,
    ReconstructionStep,
    SimulationStep,
    SkimStep,
    SlimStep,
    StepContext,
)
from repro.workflow.campaign import ProcessingCampaign, RunResult
from repro.workflow.chain import ChainResult, ChainRunner, ProcessingChain
from repro.workflow.resources import ResourceReport, summarize_resources

__all__ = [
    "ProcessingStep",
    "StepContext",
    "GenerationStep",
    "SimulationStep",
    "DigitizationStep",
    "ReconstructionStep",
    "AODProductionStep",
    "SkimStep",
    "SlimStep",
    "ProcessingCampaign",
    "RunResult",
    "ProcessingChain",
    "ChainRunner",
    "ChainResult",
    "ResourceReport",
    "summarize_resources",
]
