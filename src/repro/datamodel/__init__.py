"""Event data model: tiers, containers, skim/slim, and persistent formats.

Implements the nested data-tier taxonomy of Section 3 of the paper —
GEN/SIM/RAW/RECO/AOD/NTUPLE — with explicit, *logical* skimming and
slimming descriptions ("each processing step between the final
centrally-processed format and some reduced format can be reduced to a
logical skimming/slimming description"), and a self-documenting
JSON-lines file format whose header carries both schema and provenance.
"""

from repro.datamodel.tiers import DataTier, TIER_ORDER, tier_description
from repro.datamodel.event import AODEvent, NtupleRow, make_aod
from repro.datamodel.skimslim import (
    AndCut,
    CountCut,
    HtCut,
    MassWindowCut,
    MetCut,
    NotCut,
    OrCut,
    SelectionCut,
    SkimSpec,
    SlimSpec,
    TriggerCut,
    available_derived_columns,
    cut_from_dict,
)
from repro.datamodel.io import (
    DatasetHeader,
    DatasetReader,
    DatasetWriter,
    read_dataset,
    write_dataset,
)
from repro.datamodel.luminosity import (
    GoodRunList,
    RunRecord,
    RunRegistry,
    certify_good_runs,
)
from repro.datamodel.schema import field_documentation, validate_record

__all__ = [
    "DataTier",
    "TIER_ORDER",
    "tier_description",
    "AODEvent",
    "NtupleRow",
    "make_aod",
    "SelectionCut",
    "CountCut",
    "MetCut",
    "HtCut",
    "MassWindowCut",
    "AndCut",
    "OrCut",
    "NotCut",
    "SkimSpec",
    "SlimSpec",
    "TriggerCut",
    "available_derived_columns",
    "cut_from_dict",
    "DatasetHeader",
    "DatasetWriter",
    "DatasetReader",
    "write_dataset",
    "read_dataset",
    "field_documentation",
    "validate_record",
    "RunRecord",
    "RunRegistry",
    "GoodRunList",
    "certify_good_runs",
]
