"""The data-tier taxonomy and its mapping onto DPHEP preservation levels."""

from __future__ import annotations

import enum

from repro.errors import TierError


class DataTier(enum.Enum):
    """The nested processing tiers of a HEP experiment."""

    GEN = "GEN"
    SIM = "SIM"
    RAW = "RAW"
    RECO = "RECO"
    AOD = "AOD"
    NTUPLE = "NTUPLE"
    LEVEL2 = "LEVEL2"

    @property
    def dphep_level(self) -> int:
        """The DPHEP preservation level this tier's data belongs to.

        Level 1: published results and additional publication data;
        Level 2: simplified formats for outreach and simple re-analysis;
        Level 3: analysis-level reconstructed data plus software;
        Level 4: raw data and full reconstruction capability.
        """
        return _DPHEP_LEVEL[self]


_DPHEP_LEVEL = {
    DataTier.GEN: 4,
    DataTier.SIM: 4,
    DataTier.RAW: 4,
    DataTier.RECO: 3,
    DataTier.AOD: 3,
    DataTier.NTUPLE: 3,
    DataTier.LEVEL2: 2,
}

#: The production ordering of tiers; each is derived from its predecessor
#: (LEVEL2 branches off AOD rather than NTUPLE, see ``derived_from``).
TIER_ORDER = (
    DataTier.GEN,
    DataTier.SIM,
    DataTier.RAW,
    DataTier.RECO,
    DataTier.AOD,
    DataTier.NTUPLE,
)

_DESCRIPTIONS = {
    DataTier.GEN: (
        "Generator truth: HepMC-style particle records with parentage "
        "and decay vertices."
    ),
    DataTier.SIM: (
        "Simulation output: particle traversals and calorimeter deposits "
        "with truth links."
    ),
    DataTier.RAW: (
        "Detector signals only: tracker space points, calorimeter cell "
        "energies, muon segments. No truth, no interpretation."
    ),
    DataTier.RECO: (
        "Full reconstruction output: tracks and clusters plus candidate "
        "physics objects (electrons, muons, photons, jets, MET)."
    ),
    DataTier.AOD: (
        "Analysis Object Data: candidate physics objects and event "
        "summary only; the basis for physics analysis."
    ),
    DataTier.NTUPLE: (
        "Flat analysis-group format: derived per-event quantities after "
        "skimming and slimming."
    ),
    DataTier.LEVEL2: (
        "Simplified self-documenting format for outreach and high-level "
        "re-analysis; converted from AOD by a thin layer."
    ),
}

_DERIVED_FROM = {
    DataTier.GEN: None,
    DataTier.SIM: DataTier.GEN,
    DataTier.RAW: DataTier.SIM,
    DataTier.RECO: DataTier.RAW,
    DataTier.AOD: DataTier.RECO,
    DataTier.NTUPLE: DataTier.AOD,
    DataTier.LEVEL2: DataTier.AOD,
}


def tier_description(tier: DataTier) -> str:
    """Human-readable description of a tier's content."""
    return _DESCRIPTIONS[tier]


def parent_tier(tier: DataTier) -> DataTier | None:
    """The tier this one is derived from (None for GEN)."""
    return _DERIVED_FROM[tier]


def check_derivation(parent: DataTier, child: DataTier) -> None:
    """Raise :class:`TierError` unless ``child`` is derived from ``parent``."""
    if _DERIVED_FROM[child] is not parent:
        raise TierError(
            f"{child.value} is not derived from {parent.value}; it is "
            f"derived from "
            f"{_DERIVED_FROM[child].value if _DERIVED_FROM[child] else None}"
        )
