"""Schema documentation and validation for the persistent tiers.

A recurring paper theme is the *self-documenting* data format (Table 1
asks each experiment whether its outreach format is self-documenting).
Every dataset file written by :mod:`repro.datamodel.io` embeds the field
documentation returned by :func:`field_documentation`, so a file alone is
enough to understand its contents.
"""

from __future__ import annotations

from repro.datamodel.tiers import DataTier
from repro.errors import SchemaError

_FIELD_DOCS: dict[DataTier, dict[str, str]] = {
    DataTier.GEN: {
        "event_number": "sequential event index within the run",
        "process_id": "integer id of the generating physics process",
        "process_name": "name of the generating physics process",
        "sqrt_s": "centre-of-mass energy in GeV",
        "weight": "event weight (1.0 for unweighted generation)",
        "particles": "list of generated particles; each has index, "
                     "pdg_id, p4=[E,px,py,pz] in GeV, status "
                     "(1=final, 2=decayed, 3=hard), parents, children, "
                     "and optional prod_vtx/decay_vtx in mm",
    },
    DataTier.RAW: {
        "run": "run number (keys the conditions database)",
        "event": "event number within the run",
        "bx": "bunch-crossing counter",
        "tracker_hits": "anonymous tracker space points: layer, r [mm], "
                        "phi [rad], z [mm]",
        "calo_hits": "calorimeter cells above threshold: sub, ieta, "
                     "iphi, e [GeV]",
        "muon_hits": "muon-chamber segments: station, eta, phi",
    },
    DataTier.RECO: {
        "run": "run number",
        "event": "event number within the run",
        "tracks": "fitted tracks: pt [GeV], eta, phi, q, d0 [mm], "
                  "z0 [mm], chi2, nhits",
        "ecal_clusters": "ECAL clusters: e [GeV], eta, phi, ncells",
        "hcal_clusters": "HCAL clusters: e [GeV], eta, phi, ncells",
        "electrons": "electron candidates: p4, q, eop, iso",
        "muons": "muon candidates: p4, q, stations, iso",
        "photons": "photon candidates: p4",
        "jets": "cone jets: p4, ncon, emf",
        "met": "missing transverse momentum: met [GeV], phi",
    },
    DataTier.AOD: {
        "run": "run number",
        "event": "event number within the run",
        "electrons": "electron candidates: p4, q, eop, iso",
        "muons": "muon candidates: p4, q, stations, iso",
        "photons": "photon candidates: p4",
        "jets": "cone jets: p4, ncon, emf",
        "met": "missing transverse momentum: met [GeV], phi",
        "triggers": "names of trigger paths that fired",
        "ntracks": "number of reconstructed tracks (summary only)",
    },
    DataTier.NTUPLE: {
        "run": "run number",
        "event": "event number within the run",
        "cols": "flat derived columns; names are analysis-defined from "
                "the fixed slim vocabulary",
    },
    DataTier.LEVEL2: {
        "run": "run number",
        "event": "event number within the run",
        "collision_energy_tev": "centre-of-mass energy in TeV",
        "particles": "simplified particle list: type (electron, muon, "
                     "photon, jet), E [GeV], pt [GeV], eta, phi, charge",
        "met": "missing transverse momentum: value [GeV], phi",
        "display": "optional event-display payload: tracks and towers",
    },
    DataTier.SIM: {
        "event_number": "sequential event index",
        "primary_vertex": "smeared beam-spot vertex [mm]",
        "traversals": "charged particles crossing the tracker",
        "deposits": "calorimeter energy deposits",
    },
}

#: Fields that must be present for a record to be minimally valid.
_REQUIRED_FIELDS: dict[DataTier, tuple[str, ...]] = {
    DataTier.GEN: ("event_number", "process_name", "particles"),
    DataTier.SIM: ("event_number",),
    DataTier.RAW: ("run", "event", "tracker_hits", "calo_hits"),
    DataTier.RECO: ("run", "event", "tracks", "met"),
    DataTier.AOD: ("run", "event", "met", "triggers"),
    DataTier.NTUPLE: ("run", "event", "cols"),
    DataTier.LEVEL2: ("run", "event", "particles"),
}


def field_documentation(tier: DataTier) -> dict[str, str]:
    """Per-field documentation for a tier's records."""
    return dict(_FIELD_DOCS[tier])


def validate_record(record: dict, tier: DataTier) -> None:
    """Check that a record has the tier's required fields.

    Raises :class:`SchemaError` naming every missing field.
    """
    missing = [name for name in _REQUIRED_FIELDS[tier]
               if name not in record]
    if missing:
        raise SchemaError(
            f"{tier.value} record missing required fields: {missing}"
        )
