"""Self-documenting JSON-lines dataset files.

Layout: the first line of a dataset file is a :class:`DatasetHeader` —
format tag, tier, schema documentation, and a free-form provenance block —
followed by one JSON object per event. Plain text, no pickles: a file is
readable by anything that can parse JSON, which is the preservation
property the paper's "self-documenting?" row in Table 1 is probing.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.canonical import canonical_json
from repro.datamodel.schema import field_documentation, validate_record
from repro.datamodel.tiers import DataTier
from repro.errors import PersistenceError, SchemaError

_FORMAT_TAG = "repro-dataset"
_FORMAT_VERSION = "1.0"


@dataclass
class DatasetHeader:
    """The first line of every dataset file."""

    dataset_name: str
    tier: DataTier
    provenance: dict = field(default_factory=dict)
    n_events: int | None = None

    def to_dict(self) -> dict:
        """Serialise, embedding the tier's field documentation."""
        return {
            "format": _FORMAT_TAG,
            "format_version": _FORMAT_VERSION,
            "dataset": self.dataset_name,
            "tier": self.tier.value,
            "n_events": self.n_events,
            "schema": field_documentation(self.tier),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DatasetHeader":
        """Inverse of :meth:`to_dict`, with format validation."""
        if record.get("format") != _FORMAT_TAG:
            raise PersistenceError(
                f"not a repro dataset: format={record.get('format')!r}"
            )
        try:
            tier = DataTier(record["tier"])
        except (KeyError, ValueError):
            raise PersistenceError(
                f"dataset has unknown tier {record.get('tier')!r}"
            ) from None
        n_events = record.get("n_events")
        return cls(
            dataset_name=str(record.get("dataset", "")),
            tier=tier,
            provenance=dict(record.get("provenance", {})),
            n_events=int(n_events) if n_events is not None else None,
        )


class DatasetWriter:
    """Streams event records into a dataset file.

    Use as a context manager; the header is finalised (with the event
    count) when the writer closes, by rewriting the first line.
    """

    def __init__(self, path: str | Path, dataset_name: str, tier: DataTier,
                 provenance: dict | None = None,
                 validate: bool = True) -> None:
        self.path = Path(path)
        self.header = DatasetHeader(
            dataset_name=dataset_name,
            tier=tier,
            provenance=provenance if provenance is not None else {},
        )
        self._validate = validate
        self._records: list[dict] = []
        self._closed = False

    def write(self, record: dict) -> None:
        """Append one event record."""
        if self._closed:
            raise PersistenceError("writer is closed")
        if self._validate:
            validate_record(record, self.header.tier)
        self._records.append(record)

    def write_all(self, records: Iterable[dict]) -> None:
        """Append many event records."""
        for record in records:
            self.write(record)

    def close(self) -> None:
        """Finalise the header and flush the file."""
        if self._closed:
            return
        self.header.n_events = len(self._records)
        try:
            with self.path.open("w", encoding="utf-8") as handle:
                handle.write(
                    canonical_json(self.header.to_dict()).decode("utf-8")
                    + "\n")
                for record in self._records:
                    handle.write(
                        canonical_json(record).decode("utf-8") + "\n")
        except OSError as exc:
            raise PersistenceError(
                f"cannot write dataset {self.path}: {exc}"
            )
        self._closed = True

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class DatasetReader:
    """Reads a dataset file: header plus streamed event records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise PersistenceError(f"dataset file not found: {self.path}")
        self.header = self._read_header()

    def _read_header(self) -> DatasetHeader:
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                first_line = handle.readline()
        except OSError as exc:
            raise PersistenceError(
                f"cannot read dataset {self.path}: {exc}"
            )
        if not first_line.strip():
            raise PersistenceError(f"dataset {self.path} is empty")
        try:
            header_record = json.loads(first_line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"dataset {self.path} header is not valid JSON: {exc}"
            )
        return DatasetHeader.from_dict(header_record)

    def records(self) -> Iterator[dict]:
        """Stream the event records, one dictionary at a time."""
        with self.path.open("r", encoding="utf-8") as handle:
            handle.readline()  # skip the header
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(
                        f"{self.path}:{line_number}: bad record: {exc}"
                    )

    def read_all(self) -> list[dict]:
        """All event records as a list."""
        return list(self.records())

    def __len__(self) -> int:
        if self.header.n_events is not None:
            return self.header.n_events
        return sum(1 for _ in self.records())


def write_dataset(path: str | Path, dataset_name: str, tier: DataTier,
                  records: Iterable[dict],
                  provenance: dict | None = None) -> DatasetHeader:
    """One-shot dataset write; returns the finalised header."""
    with DatasetWriter(path, dataset_name, tier, provenance) as writer:
        writer.write_all(records)
    return writer.header


def read_dataset(path: str | Path) -> tuple[DatasetHeader, list[dict]]:
    """One-shot dataset read: ``(header, records)``."""
    reader = DatasetReader(path)
    return reader.header, reader.read_all()


def dataset_size_bytes(path: str | Path) -> int:
    """On-disk size of a dataset file."""
    try:
        return Path(path).stat().st_size
    except OSError as exc:
        raise PersistenceError(f"cannot stat dataset {path}: {exc}")


def check_records(path: str | Path) -> int:
    """Validate every record against the tier schema; returns the count.

    Raises :class:`SchemaError` on the first invalid record.
    """
    reader = DatasetReader(path)
    count = 0
    for record in reader.records():
        try:
            validate_record(record, reader.header.tier)
        except SchemaError as exc:
            raise SchemaError(f"{path}: record {count}: {exc}") from exc
        count += 1
    return count
