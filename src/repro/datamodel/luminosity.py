"""Run and luminosity bookkeeping with good-run lists.

Another class of metadata the Data Interview Template probes: which runs
exist, how much integrated luminosity each carries, and which of it is
certified for physics. A :class:`GoodRunList` is a preservation artifact
in its own right — an analysis's luminosity (and therefore every
cross-section and limit it quotes) is meaningless without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DataModelError, PersistenceError


@dataclass(frozen=True)
class RunRecord:
    """Bookkeeping for one data-taking run."""

    run_number: int
    n_lumi_sections: int
    luminosity_per_section_ipb: float
    detector_ok: bool = True

    def __post_init__(self) -> None:
        if self.run_number < 0:
            raise DataModelError("run_number must be >= 0")
        if self.n_lumi_sections <= 0:
            raise DataModelError("a run needs at least one lumi section")
        if self.luminosity_per_section_ipb < 0.0:
            raise DataModelError("luminosity must be >= 0")

    @property
    def luminosity_ipb(self) -> float:
        """Total delivered luminosity of the run."""
        return self.n_lumi_sections * self.luminosity_per_section_ipb

    def to_dict(self) -> dict:
        """Serialise for the run registry."""
        return {
            "run": self.run_number,
            "sections": self.n_lumi_sections,
            "lumi_per_section_ipb": self.luminosity_per_section_ipb,
            "detector_ok": self.detector_ok,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_number=int(record["run"]),
            n_lumi_sections=int(record["sections"]),
            luminosity_per_section_ipb=float(
                record["lumi_per_section_ipb"]
            ),
            detector_ok=bool(record.get("detector_ok", True)),
        )


class RunRegistry:
    """All runs of a data-taking period."""

    def __init__(self, period: str = "RunA") -> None:
        self.period = period
        self._runs: dict[int, RunRecord] = {}

    def add(self, run: RunRecord) -> None:
        """Register a run; run numbers must be unique."""
        if run.run_number in self._runs:
            raise DataModelError(
                f"run {run.run_number} already registered"
            )
        self._runs[run.run_number] = run

    def get(self, run_number: int) -> RunRecord:
        """Look one run up."""
        try:
            return self._runs[run_number]
        except KeyError:
            raise DataModelError(
                f"unknown run {run_number}"
            ) from None

    def __contains__(self, run_number: int) -> bool:
        return run_number in self._runs

    def __len__(self) -> int:
        return len(self._runs)

    def run_numbers(self) -> list[int]:
        """All run numbers, sorted."""
        return sorted(self._runs)

    def total_luminosity_ipb(self) -> float:
        """Delivered luminosity over all runs (certified or not)."""
        return sum(run.luminosity_ipb for run in self._runs.values())


@dataclass
class GoodRunList:
    """The certified (run -> good lumi-section ranges) map.

    Ranges are inclusive ``(first_section, last_section)`` pairs,
    1-indexed like the real thing.
    """

    name: str
    #: run number -> list of (first, last) certified section ranges.
    ranges: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict
    )

    def certify(self, run_number: int, first_section: int,
                last_section: int) -> None:
        """Mark a section range of a run as good."""
        if first_section < 1 or last_section < first_section:
            raise DataModelError(
                f"bad section range [{first_section}, {last_section}]"
            )
        run_ranges = self.ranges.setdefault(run_number, [])
        for existing_first, existing_last in run_ranges:
            if (first_section <= existing_last
                    and existing_first <= last_section):
                raise DataModelError(
                    f"run {run_number}: range [{first_section}, "
                    f"{last_section}] overlaps [{existing_first}, "
                    f"{existing_last}]"
                )
        run_ranges.append((first_section, last_section))
        run_ranges.sort()

    def is_good(self, run_number: int, section: int) -> bool:
        """Is one lumi section certified?"""
        for first, last in self.ranges.get(run_number, []):
            if first <= section <= last:
                return True
        return False

    def certified_sections(self, run_number: int) -> int:
        """Number of certified sections of a run."""
        return sum(last - first + 1
                   for first, last in self.ranges.get(run_number, []))

    def certified_luminosity_ipb(self, registry: RunRegistry) -> float:
        """Integrated luminosity of the certified sections.

        Ranges extending past a run's actual section count are clipped
        (a GRL made against a newer registry must not inflate the
        luminosity).
        """
        total = 0.0
        for run_number, run_ranges in self.ranges.items():
            if run_number not in registry:
                continue
            run = registry.get(run_number)
            for first, last in run_ranges:
                clipped_last = min(last, run.n_lumi_sections)
                if clipped_last >= first:
                    total += ((clipped_last - first + 1)
                              * run.luminosity_per_section_ipb)
        return total

    def to_dict(self) -> dict:
        """Serialise for preservation."""
        return {
            "format": "repro-good-run-list",
            "name": self.name,
            "ranges": {str(run): [list(r) for r in run_ranges]
                       for run, run_ranges in self.ranges.items()},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GoodRunList":
        """Inverse of :meth:`to_dict`."""
        if record.get("format") != "repro-good-run-list":
            raise PersistenceError(
                f"not a good-run list: format={record.get('format')!r}"
            )
        grl = cls(name=str(record["name"]))
        for run, run_ranges in record.get("ranges", {}).items():
            for first, last in run_ranges:
                grl.certify(int(run), int(first), int(last))
        return grl

    def save(self, path: str | Path) -> None:
        """Write to a JSON file."""
        path = Path(path)
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1)
        except OSError as exc:
            raise PersistenceError(f"cannot write GRL {path}: {exc}")

    @classmethod
    def load(cls, path: str | Path) -> "GoodRunList":
        """Read a file written by :meth:`save`."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except OSError as exc:
            raise PersistenceError(f"cannot read GRL {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"GRL {path} is not valid JSON: {exc}"
            )


def certify_good_runs(registry: RunRegistry,
                      name: str = "GRL-v1") -> GoodRunList:
    """Build a GRL certifying every section of detector-ok runs."""
    grl = GoodRunList(name=name)
    for run_number in registry.run_numbers():
        run = registry.get(run_number)
        if run.detector_ok:
            grl.certify(run_number, 1, run.n_lumi_sections)
    return grl
