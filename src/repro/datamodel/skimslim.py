"""Declarative, preservable skim/slim descriptions.

The paper's observation: "each processing step between the final
centrally-processed format and some reduced format can be reduced to a
logical skimming/slimming description." This module is that logical
language. A :class:`SkimSpec` (event selection) is a tree of
:class:`SelectionCut` nodes; a :class:`SlimSpec` names the collections and
derived columns to keep. Both are fully JSON-serialisable, so a post-AOD
processing step can be *preserved as a description* rather than as opaque
code — one of the two preservation strategies Section 3.2 contrasts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.datamodel.event import AODEvent, NtupleRow
from repro.errors import DataModelError
from repro.kinematics import invariant_mass


class SelectionCut(abc.ABC):
    """A node of the declarative event-selection language."""

    #: Registry used by :func:`cut_from_dict`; populated by subclasses.
    _registry: dict[str, type["SelectionCut"]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        SelectionCut._registry[cls.kind()] = cls

    @classmethod
    @abc.abstractmethod
    def kind(cls) -> str:
        """The serialisation tag for this node type."""

    @abc.abstractmethod
    def passes(self, event: AODEvent) -> bool:
        """Evaluate the cut on one AOD event."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Serialise the node (must include ``{"kind": self.kind()}``)."""

    @classmethod
    @abc.abstractmethod
    def _from_dict(cls, record: dict) -> "SelectionCut":
        """Deserialise the node body (``kind`` already dispatched)."""

    def describe(self) -> str:
        """One-line human-readable rendering (for publications' cut tables)."""
        return str(self.to_dict())


def cut_from_dict(record: dict) -> SelectionCut:
    """Deserialise any cut tree from its dictionary form."""
    kind = record.get("kind")
    if kind not in SelectionCut._registry:
        raise DataModelError(f"unknown selection-cut kind {kind!r}")
    return SelectionCut._registry[kind]._from_dict(record)


_COLLECTIONS = ("electrons", "muons", "photons", "jets", "leptons")


def _collection(event: AODEvent, name: str) -> list:
    if name == "leptons":
        return event.leptons()
    if name not in _COLLECTIONS:
        raise DataModelError(f"unknown collection {name!r}")
    return getattr(event, name)


@dataclass(frozen=True)
class CountCut(SelectionCut):
    """Require at least ``min_count`` objects above ``min_pt``."""

    collection: str
    min_count: int
    min_pt: float = 0.0
    max_abs_eta: float | None = None

    @classmethod
    def kind(cls) -> str:
        return "count"

    def passes(self, event: AODEvent) -> bool:
        objects = _collection(event, self.collection)
        count = 0
        for obj in objects:
            if obj.p4.pt < self.min_pt:
                continue
            if (self.max_abs_eta is not None
                    and abs(obj.p4.eta) > self.max_abs_eta):
                continue
            count += 1
        return count >= self.min_count

    def to_dict(self) -> dict:
        record = {"kind": self.kind(), "collection": self.collection,
                  "min_count": self.min_count, "min_pt": self.min_pt}
        if self.max_abs_eta is not None:
            record["max_abs_eta"] = self.max_abs_eta
        return record

    @classmethod
    def _from_dict(cls, record: dict) -> "CountCut":
        return cls(
            collection=str(record["collection"]),
            min_count=int(record["min_count"]),
            min_pt=float(record.get("min_pt", 0.0)),
            max_abs_eta=(float(record["max_abs_eta"])
                         if "max_abs_eta" in record else None),
        )

    def describe(self) -> str:
        eta = (f", |eta| < {self.max_abs_eta}"
               if self.max_abs_eta is not None else "")
        return (f">= {self.min_count} {self.collection} with "
                f"pt > {self.min_pt} GeV{eta}")


@dataclass(frozen=True)
class MetCut(SelectionCut):
    """Require missing transverse momentum above a threshold."""

    min_met: float

    @classmethod
    def kind(cls) -> str:
        return "met"

    def passes(self, event: AODEvent) -> bool:
        return event.met.met >= self.min_met

    def to_dict(self) -> dict:
        return {"kind": self.kind(), "min_met": self.min_met}

    @classmethod
    def _from_dict(cls, record: dict) -> "MetCut":
        return cls(min_met=float(record["min_met"]))

    def describe(self) -> str:
        return f"MET > {self.min_met} GeV"


@dataclass(frozen=True)
class HtCut(SelectionCut):
    """Require the scalar jet-pt sum above a threshold."""

    min_ht: float

    @classmethod
    def kind(cls) -> str:
        return "ht"

    def passes(self, event: AODEvent) -> bool:
        return event.ht() >= self.min_ht

    def to_dict(self) -> dict:
        return {"kind": self.kind(), "min_ht": self.min_ht}

    @classmethod
    def _from_dict(cls, record: dict) -> "HtCut":
        return cls(min_ht=float(record["min_ht"]))

    def describe(self) -> str:
        return f"HT > {self.min_ht} GeV"


@dataclass(frozen=True)
class MassWindowCut(SelectionCut):
    """Require the invariant mass of the two leading objects in a window.

    ``opposite_charge`` additionally demands the pair be oppositely
    charged (only meaningful for lepton collections).
    """

    collection: str
    min_mass: float
    max_mass: float
    opposite_charge: bool = False

    @classmethod
    def kind(cls) -> str:
        return "mass_window"

    def passes(self, event: AODEvent) -> bool:
        objects = sorted(_collection(event, self.collection),
                         key=lambda obj: obj.p4.pt, reverse=True)
        if len(objects) < 2:
            return False
        first, second = objects[0], objects[1]
        if self.opposite_charge:
            charge1 = getattr(first, "charge", 0)
            charge2 = getattr(second, "charge", 0)
            if charge1 * charge2 >= 0:
                return False
        mass = invariant_mass([first.p4, second.p4])
        return self.min_mass <= mass <= self.max_mass

    def to_dict(self) -> dict:
        return {
            "kind": self.kind(), "collection": self.collection,
            "min_mass": self.min_mass, "max_mass": self.max_mass,
            "opposite_charge": self.opposite_charge,
        }

    @classmethod
    def _from_dict(cls, record: dict) -> "MassWindowCut":
        return cls(
            collection=str(record["collection"]),
            min_mass=float(record["min_mass"]),
            max_mass=float(record["max_mass"]),
            opposite_charge=bool(record.get("opposite_charge", False)),
        )

    def describe(self) -> str:
        charge = " (opposite charge)" if self.opposite_charge else ""
        return (f"{self.min_mass} < m({self.collection}[0,1]) < "
                f"{self.max_mass} GeV{charge}")


@dataclass(frozen=True)
class AndCut(SelectionCut):
    """Logical AND of child cuts."""

    children: tuple[SelectionCut, ...]

    @classmethod
    def kind(cls) -> str:
        return "and"

    def passes(self, event: AODEvent) -> bool:
        return all(child.passes(event) for child in self.children)

    def to_dict(self) -> dict:
        return {"kind": self.kind(),
                "children": [c.to_dict() for c in self.children]}

    @classmethod
    def _from_dict(cls, record: dict) -> "AndCut":
        return cls(children=tuple(cut_from_dict(c)
                                  for c in record["children"]))

    def describe(self) -> str:
        return " AND ".join(f"({c.describe()})" for c in self.children)


@dataclass(frozen=True)
class OrCut(SelectionCut):
    """Logical OR of child cuts."""

    children: tuple[SelectionCut, ...]

    @classmethod
    def kind(cls) -> str:
        return "or"

    def passes(self, event: AODEvent) -> bool:
        return any(child.passes(event) for child in self.children)

    def to_dict(self) -> dict:
        return {"kind": self.kind(),
                "children": [c.to_dict() for c in self.children]}

    @classmethod
    def _from_dict(cls, record: dict) -> "OrCut":
        return cls(children=tuple(cut_from_dict(c)
                                  for c in record["children"]))

    def describe(self) -> str:
        return " OR ".join(f"({c.describe()})" for c in self.children)


@dataclass(frozen=True)
class NotCut(SelectionCut):
    """Logical negation of a child cut."""

    child: SelectionCut

    @classmethod
    def kind(cls) -> str:
        return "not"

    def passes(self, event: AODEvent) -> bool:
        return not self.child.passes(event)

    def to_dict(self) -> dict:
        return {"kind": self.kind(), "child": self.child.to_dict()}

    @classmethod
    def _from_dict(cls, record: dict) -> "NotCut":
        return cls(child=cut_from_dict(record["child"]))

    def describe(self) -> str:
        return f"NOT ({self.child.describe()})"


@dataclass(frozen=True)
class TriggerCut(SelectionCut):
    """Require one of the listed trigger paths to have fired."""

    paths: tuple[str, ...]

    @classmethod
    def kind(cls) -> str:
        return "trigger"

    def passes(self, event: AODEvent) -> bool:
        return any(path in event.trigger_bits for path in self.paths)

    def to_dict(self) -> dict:
        return {"kind": self.kind(), "paths": list(self.paths)}

    @classmethod
    def _from_dict(cls, record: dict) -> "TriggerCut":
        return cls(paths=tuple(str(p) for p in record["paths"]))

    def describe(self) -> str:
        return "trigger in {" + ", ".join(self.paths) + "}"


@dataclass(frozen=True)
class SkimSpec:
    """A named event selection — the "skimming" half of a reduction step."""

    name: str
    cut: SelectionCut

    def apply(self, events: list[AODEvent]) -> list[AODEvent]:
        """Events passing the selection, order preserved."""
        return [event for event in events if self.cut.passes(event)]

    def efficiency(self, events: list[AODEvent]) -> float:
        """Fraction of events passing (0 for an empty input)."""
        if not events:
            return 0.0
        return len(self.apply(events)) / len(events)

    def to_dict(self) -> dict:
        """Serialise for preservation records."""
        return {"name": self.name, "cut": self.cut.to_dict()}

    @classmethod
    def from_dict(cls, record: dict) -> "SkimSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(record["name"]),
                   cut=cut_from_dict(record["cut"]))


#: Derived-column expressions available to slims, by name. Keeping this a
#: fixed vocabulary (rather than arbitrary code) is what makes a SlimSpec
#: a *description* instead of software that must itself be preserved.
_DERIVED_COLUMNS = {
    "n_electrons": lambda event: len(event.electrons),
    "n_muons": lambda event: len(event.muons),
    "n_jets": lambda event: len(event.jets),
    "met": lambda event: event.met.met,
    "ht": lambda event: event.ht(),
    "lead_lepton_pt": lambda event: (
        event.leptons()[0].p4.pt if event.leptons() else 0.0
    ),
    "lead_jet_pt": lambda event: (
        event.jets[0].p4.pt if event.jets else 0.0
    ),
    "dilepton_mass": lambda event: (
        invariant_mass([lepton.p4 for lepton in event.leptons()[:2]])
        if len(event.leptons()) >= 2 else 0.0
    ),
    "dimuon_mass": lambda event: (
        invariant_mass([muon.p4 for muon in sorted(
            event.muons, key=lambda m: m.p4.pt, reverse=True)[:2]])
        if len(event.muons) >= 2 else 0.0
    ),
}


@dataclass(frozen=True)
class SlimSpec:
    """A named content reduction — the "slimming" half of a step.

    Produces flat :class:`NtupleRow` records with the requested derived
    columns; column names must come from the fixed vocabulary.
    """

    name: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = [c for c in self.columns if c not in _DERIVED_COLUMNS]
        if unknown:
            raise DataModelError(
                f"slim {self.name!r}: unknown derived columns {unknown}; "
                f"available: {sorted(_DERIVED_COLUMNS)}"
            )

    def apply(self, events: list[AODEvent]) -> list[NtupleRow]:
        """Flatten each event to its derived columns."""
        rows = []
        for event in events:
            rows.append(NtupleRow(
                run_number=event.run_number,
                event_number=event.event_number,
                columns={name: _DERIVED_COLUMNS[name](event)
                         for name in self.columns},
            ))
        return rows

    def to_dict(self) -> dict:
        """Serialise for preservation records."""
        return {"name": self.name, "columns": list(self.columns)}

    @classmethod
    def from_dict(cls, record: dict) -> "SlimSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(record["name"]),
                   columns=tuple(str(c) for c in record["columns"]))


def available_derived_columns() -> list[str]:
    """The fixed derived-column vocabulary, sorted."""
    return sorted(_DERIVED_COLUMNS)
