"""The AOD event container and flat ntuple rows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataModelError
from repro.reconstruction.objects import (
    Electron,
    Jet,
    MissingEnergy,
    Muon,
    Photon,
    RecoEvent,
)


@dataclass
class AODEvent:
    """Analysis Object Data: the refined physics objects for one event.

    Basic objects (tracks, clusters) have been dropped — "after the initial
    commissioning phase ... only the refined objects necessary for further
    analysis are kept". ``trigger_bits`` records which toy trigger paths
    fired, computed at AOD production time.
    """

    run_number: int
    event_number: int
    electrons: list[Electron] = field(default_factory=list)
    muons: list[Muon] = field(default_factory=list)
    photons: list[Photon] = field(default_factory=list)
    jets: list[Jet] = field(default_factory=list)
    met: MissingEnergy = field(
        default_factory=lambda: MissingEnergy(0.0, 0.0)
    )
    trigger_bits: list[str] = field(default_factory=list)
    n_tracks: int = 0

    def leptons(self) -> list[Electron | Muon]:
        """All charged leptons, pt-sorted (descending).

        Ties are broken deterministically by flavour (electrons before
        muons) and then stored order — an *explicit* secondary key, so
        the ordering is part of the preserved selection semantics
        rather than an accident of sort stability, and the columnar
        engine can reproduce it with ``np.lexsort``.
        """
        return sorted(self.electrons + self.muons,
                      key=lambda lepton: (-lepton.p4.pt,
                                          isinstance(lepton, Muon)))

    def ht(self) -> float:
        """Scalar sum of jet transverse momenta."""
        return sum(jet.p4.pt for jet in self.jets)

    def approximate_size_bytes(self) -> int:
        """Rough persistent size, used by tier-volume accounting."""
        return (
            80
            + 48 * (len(self.electrons) + len(self.muons))
            + 40 * len(self.photons)
            + 48 * len(self.jets)
            + 8 * len(self.trigger_bits)
        )

    def to_dict(self) -> dict:
        """Serialise for the AOD JSON-lines format."""
        return {
            "run": self.run_number,
            "event": self.event_number,
            "electrons": [e.to_dict() for e in self.electrons],
            "muons": [m.to_dict() for m in self.muons],
            "photons": [p.to_dict() for p in self.photons],
            "jets": [j.to_dict() for j in self.jets],
            "met": self.met.to_dict(),
            "triggers": list(self.trigger_bits),
            "ntracks": self.n_tracks,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "AODEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_number=int(record["run"]),
            event_number=int(record["event"]),
            electrons=[Electron.from_dict(e)
                       for e in record.get("electrons", [])],
            muons=[Muon.from_dict(m) for m in record.get("muons", [])],
            photons=[Photon.from_dict(p) for p in record.get("photons", [])],
            jets=[Jet.from_dict(j) for j in record.get("jets", [])],
            met=MissingEnergy.from_dict(record["met"]),
            trigger_bits=[str(t) for t in record.get("triggers", [])],
            n_tracks=int(record.get("ntracks", 0)),
        )


#: Toy trigger menu evaluated at AOD production.
TRIGGER_MENU = {
    "HLT_SingleMu20": lambda reco: any(m.p4.pt > 20.0 for m in reco.muons),
    "HLT_SingleEl25": lambda reco: any(e.p4.pt > 25.0
                                       for e in reco.electrons),
    "HLT_DiMu10": lambda reco: sum(1 for m in reco.muons
                                   if m.p4.pt > 10.0) >= 2,
    "HLT_DiEl12": lambda reco: sum(1 for e in reco.electrons
                                   if e.p4.pt > 12.0) >= 2,
    "HLT_Jet100": lambda reco: any(j.p4.pt > 100.0 for j in reco.jets),
    "HLT_Met80": lambda reco: reco.met.met > 80.0,
}


def make_aod(reco: RecoEvent) -> AODEvent:
    """Produce the AOD tier from a RECO event (the RECO->AOD step)."""
    fired = [name for name, condition in TRIGGER_MENU.items()
             if condition(reco)]
    return AODEvent(
        run_number=reco.run_number,
        event_number=reco.event_number,
        electrons=list(reco.electrons),
        muons=list(reco.muons),
        photons=list(reco.photons),
        jets=list(reco.jets),
        met=reco.met,
        trigger_bits=fired,
        n_tracks=len(reco.tracks),
    )


@dataclass
class NtupleRow:
    """A flat row of derived quantities — the analysis-group format.

    Unlike the structured tiers, an ntuple's columns are analysis-defined.
    The ``columns`` mapping must have JSON-scalar values only.
    """

    run_number: int
    event_number: int
    columns: dict[str, float | int | bool | str]

    def __post_init__(self) -> None:
        for key, value in self.columns.items():
            if not isinstance(value, (int, float, bool, str)):
                raise DataModelError(
                    f"ntuple column {key!r} has non-scalar value "
                    f"{type(value).__name__}"
                )

    def approximate_size_bytes(self) -> int:
        """Rough persistent size, used by tier-volume accounting."""
        return 16 + 12 * len(self.columns)

    def to_dict(self) -> dict:
        """Serialise for the NTUPLE JSON-lines format."""
        return {"run": self.run_number, "event": self.event_number,
                "cols": dict(self.columns)}

    @classmethod
    def from_dict(cls, record: dict) -> "NtupleRow":
        """Inverse of :meth:`to_dict`."""
        return cls(int(record["run"]), int(record["event"]),
                   dict(record["cols"]))
