"""Iterative-cone jet clustering over calorimeter clusters."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kinematics import FourVector
from repro.kinematics.fourvector import delta_phi
from repro.reconstruction.clustering import CaloCluster
from repro.reconstruction.objects import Jet


@dataclass(frozen=True)
class ConeJetConfig:
    """Cone-algorithm parameters."""

    cone_radius: float = 0.4
    seed_et: float = 3.0
    jet_min_pt: float = 10.0
    max_iterations: int = 10


class ConeJetFinder:
    """A seeded iterative-cone algorithm.

    Not infrared-safe (neither were the historical cone algorithms), but
    simple, fast, and faithful to the kind of jet-finding the outreach
    formats expose. Electron/photon clusters should be removed by the
    caller before jet finding.
    """

    def __init__(self, config: ConeJetConfig | None = None) -> None:
        self.config = config if config is not None else ConeJetConfig()

    def find(self, clusters: list[CaloCluster]) -> list[Jet]:
        """Cluster calorimeter clusters into jets."""
        remaining = sorted(clusters, key=lambda c: c.p4().pt, reverse=True)
        jets = []
        while remaining:
            seed = remaining[0]
            seed_p4 = seed.p4()
            if seed_p4.pt < self.config.seed_et:
                break
            axis_eta = seed.eta
            axis_phi = seed.phi
            members: list[CaloCluster] = []
            # Iterate the cone axis to stability.
            for _ in range(self.config.max_iterations):
                members = [
                    c for c in remaining
                    if math.hypot(c.eta - axis_eta,
                                  delta_phi(c.phi, axis_phi))
                    < self.config.cone_radius
                ]
                if not members:
                    break
                total = FourVector.zero()
                for member in members:
                    total = total + member.p4()
                new_eta = total.eta
                new_phi = total.phi
                if (abs(new_eta - axis_eta) < 1e-4
                        and abs(delta_phi(new_phi, axis_phi)) < 1e-4):
                    axis_eta, axis_phi = new_eta, new_phi
                    break
                axis_eta, axis_phi = new_eta, new_phi
            if not members:
                remaining.pop(0)
                continue
            total = FourVector.zero()
            em_energy = 0.0
            for member in members:
                total = total + member.p4()
                if member.subdetector == "ecal":
                    em_energy += member.energy
            member_ids = {id(m) for m in members}
            remaining = [c for c in remaining if id(c) not in member_ids]
            if total.pt < self.config.jet_min_pt:
                continue
            em_fraction = em_energy / total.e if total.e > 0.0 else 0.0
            jets.append(Jet(
                p4=total,
                n_constituents=len(members),
                em_fraction=em_fraction,
            ))
        return sorted(jets, key=lambda j: j.p4.pt, reverse=True)
