"""Candidate physics objects and the RECO event container.

The paper: "Further refinement of the interpretation of these objects is
also done, resulting in the creation of 'candidate physics objects'
(electrons, muons, particle jets) that are combinations of the basic
objects." This module performs that combination step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.detector.digitization import MuonChamberHit
from repro.kinematics import FourVector
from repro.kinematics.fourvector import delta_phi
from repro.reconstruction.clustering import CaloCluster
from repro.reconstruction.tracking import Track

ELECTRON_MASS = 0.000511
MUON_MASS = 0.10566


@dataclass(frozen=True)
class Electron:
    """A track matched to an ECAL cluster with compatible energy."""

    p4: FourVector
    charge: int
    e_over_p: float
    isolation: float

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {"p4": self.p4.to_list(), "q": self.charge,
                "eop": self.e_over_p, "iso": self.isolation}

    @classmethod
    def from_dict(cls, record: dict) -> "Electron":
        """Inverse of :meth:`to_dict`."""
        return cls(FourVector.from_list(record["p4"]), int(record["q"]),
                   float(record["eop"]), float(record["iso"]))


@dataclass(frozen=True)
class Muon:
    """A track matched to muon-chamber segments."""

    p4: FourVector
    charge: int
    n_stations: int
    isolation: float

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {"p4": self.p4.to_list(), "q": self.charge,
                "stations": self.n_stations, "iso": self.isolation}

    @classmethod
    def from_dict(cls, record: dict) -> "Muon":
        """Inverse of :meth:`to_dict`."""
        return cls(FourVector.from_list(record["p4"]), int(record["q"]),
                   int(record["stations"]), float(record["iso"]))


@dataclass(frozen=True)
class Photon:
    """An ECAL cluster with no matching track."""

    p4: FourVector

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {"p4": self.p4.to_list()}

    @classmethod
    def from_dict(cls, record: dict) -> "Photon":
        """Inverse of :meth:`to_dict`."""
        return cls(FourVector.from_list(record["p4"]))


@dataclass(frozen=True)
class Jet:
    """A cone-clustered hadronic jet."""

    p4: FourVector
    n_constituents: int
    em_fraction: float

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {"p4": self.p4.to_list(), "ncon": self.n_constituents,
                "emf": self.em_fraction}

    @classmethod
    def from_dict(cls, record: dict) -> "Jet":
        """Inverse of :meth:`to_dict`."""
        return cls(FourVector.from_list(record["p4"]), int(record["ncon"]),
                   float(record["emf"]))


@dataclass(frozen=True)
class MissingEnergy:
    """Missing transverse momentum: the neutrino/invisible proxy."""

    met: float
    phi: float

    def p4(self) -> FourVector:
        """A massless transverse four-vector for mT calculations."""
        return FourVector.from_ptetaphim(self.met, 0.0, self.phi, 0.0)

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {"met": self.met, "phi": self.phi}

    @classmethod
    def from_dict(cls, record: dict) -> "MissingEnergy":
        """Inverse of :meth:`to_dict`."""
        return cls(float(record["met"]), float(record["phi"]))


@dataclass
class RecoEvent:
    """The RECO tier: full reconstruction output for one event.

    Retains the basic objects (tracks, clusters) *and* the candidate
    physics objects; the AOD tier drops the basics, exactly as the paper
    describes the post-commissioning reduction.
    """

    run_number: int
    event_number: int
    tracks: list[Track] = field(default_factory=list)
    ecal_clusters: list[CaloCluster] = field(default_factory=list)
    hcal_clusters: list[CaloCluster] = field(default_factory=list)
    electrons: list[Electron] = field(default_factory=list)
    muons: list[Muon] = field(default_factory=list)
    photons: list[Photon] = field(default_factory=list)
    jets: list[Jet] = field(default_factory=list)
    met: MissingEnergy = field(
        default_factory=lambda: MissingEnergy(0.0, 0.0)
    )

    def approximate_size_bytes(self) -> int:
        """Rough persistent size, used by tier-volume accounting."""
        return (
            96
            + 64 * len(self.tracks)
            + 40 * (len(self.ecal_clusters) + len(self.hcal_clusters))
            + 48 * (len(self.electrons) + len(self.muons))
            + 40 * len(self.photons)
            + 48 * len(self.jets)
        )

    def to_dict(self) -> dict:
        """Serialise for the RECO JSON-lines format."""
        return {
            "run": self.run_number,
            "event": self.event_number,
            "tracks": [t.to_dict() for t in self.tracks],
            "ecal_clusters": [c.to_dict() for c in self.ecal_clusters],
            "hcal_clusters": [c.to_dict() for c in self.hcal_clusters],
            "electrons": [e.to_dict() for e in self.electrons],
            "muons": [m.to_dict() for m in self.muons],
            "photons": [p.to_dict() for p in self.photons],
            "jets": [j.to_dict() for j in self.jets],
            "met": self.met.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RecoEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run_number=int(record["run"]),
            event_number=int(record["event"]),
            tracks=[Track.from_dict(t) for t in record.get("tracks", [])],
            ecal_clusters=[CaloCluster.from_dict(c)
                           for c in record.get("ecal_clusters", [])],
            hcal_clusters=[CaloCluster.from_dict(c)
                           for c in record.get("hcal_clusters", [])],
            electrons=[Electron.from_dict(e)
                       for e in record.get("electrons", [])],
            muons=[Muon.from_dict(m) for m in record.get("muons", [])],
            photons=[Photon.from_dict(p) for p in record.get("photons", [])],
            jets=[Jet.from_dict(j) for j in record.get("jets", [])],
            met=MissingEnergy.from_dict(record["met"]),
        )


@dataclass(frozen=True)
class ObjectBuilderConfig:
    """Matching windows and identification cuts."""

    match_delta_r: float = 0.15
    e_over_p_min: float = 0.7
    e_over_p_max: float = 1.4
    electron_min_pt: float = 2.0
    muon_min_pt: float = 3.0
    muon_min_stations: int = 2
    photon_min_energy: float = 2.0
    isolation_cone: float = 0.3


class ObjectBuilder:
    """Builds candidate physics objects from tracks, clusters, segments."""

    def __init__(self, config: ObjectBuilderConfig | None = None) -> None:
        self.config = config if config is not None else ObjectBuilderConfig()

    @staticmethod
    def _delta_r(eta1: float, phi1: float, eta2: float, phi2: float) -> float:
        # sqrt-of-squares, not hypot: keeps this bit-identical to the
        # vectorised delta_r matrices in repro.columnar.objects.
        d_eta = eta1 - eta2
        d_phi = delta_phi(phi1, phi2)
        return math.sqrt(d_eta * d_eta + d_phi * d_phi)

    def _isolation(self, track: Track, tracks: list[Track]) -> float:
        """Scalar pt sum of other tracks in the isolation cone."""
        total = 0.0
        for other in tracks:
            if other is track:
                continue
            if self._delta_r(track.eta, track.phi, other.eta,
                             other.phi) < self.config.isolation_cone:
                total += other.pt
        return total

    def build_muons(self, tracks: list[Track],
                    muon_hits: list[MuonChamberHit]) -> list[Muon]:
        """Match tracks to muon-chamber segments."""
        muons = []
        for track in tracks:
            if track.pt < self.config.muon_min_pt:
                continue
            stations = set()
            for hit in muon_hits:
                if self._delta_r(track.eta, track.phi, hit.eta,
                                 hit.phi) < self.config.match_delta_r:
                    stations.add(hit.station)
            if len(stations) >= self.config.muon_min_stations:
                muons.append(Muon(
                    p4=track.p4(MUON_MASS),
                    charge=track.charge,
                    n_stations=len(stations),
                    isolation=self._isolation(track, tracks),
                ))
        return muons

    def build_electrons(self, tracks: list[Track],
                        ecal_clusters: list[CaloCluster],
                        muons: list[Muon]) -> list[Electron]:
        """Match tracks to ECAL clusters with compatible energy."""
        muon_directions = [(m.p4.eta, m.p4.phi) for m in muons]
        electrons = []
        used_clusters: set[int] = set()
        for track in tracks:
            if track.pt < self.config.electron_min_pt:
                continue
            if any(self._delta_r(track.eta, track.phi, eta, phi) < 0.05
                   for eta, phi in muon_directions):
                continue
            best_index = None
            best_dr = self.config.match_delta_r
            for index, cluster in enumerate(ecal_clusters):
                if index in used_clusters:
                    continue
                dr = self._delta_r(track.eta, track.phi, cluster.eta,
                                   cluster.phi)
                if dr < best_dr:
                    best_dr = dr
                    best_index = index
            if best_index is None:
                continue
            cluster = ecal_clusters[best_index]
            momentum = track.p4(ELECTRON_MASS).p
            if momentum <= 0.0:
                continue
            e_over_p = cluster.energy / momentum
            if not (self.config.e_over_p_min <= e_over_p
                    <= self.config.e_over_p_max):
                continue
            used_clusters.add(best_index)
            # Direction from the track, energy from the calorimeter.
            pt = cluster.energy / math.cosh(track.eta)
            electrons.append(Electron(
                p4=FourVector.from_ptetaphim(pt, track.eta, track.phi,
                                             ELECTRON_MASS),
                charge=track.charge,
                e_over_p=e_over_p,
                isolation=self._isolation(track, tracks),
            ))
        return electrons

    def build_photons(self, tracks: list[Track],
                      ecal_clusters: list[CaloCluster],
                      electrons: list[Electron]) -> list[Photon]:
        """ECAL clusters with no nearby track and enough energy."""
        electron_directions = [(e.p4.eta, e.p4.phi) for e in electrons]
        photons = []
        for cluster in ecal_clusters:
            if cluster.energy < self.config.photon_min_energy:
                continue
            if any(self._delta_r(cluster.eta, cluster.phi, track.eta,
                                 track.phi) < self.config.match_delta_r
                   for track in tracks):
                continue
            if any(self._delta_r(cluster.eta, cluster.phi, eta,
                                 phi) < self.config.match_delta_r
                   for eta, phi in electron_directions):
                continue
            photons.append(Photon(p4=cluster.p4()))
        return photons

    def build_met(self, ecal_clusters: list[CaloCluster],
                  hcal_clusters: list[CaloCluster],
                  muons: list[Muon]) -> MissingEnergy:
        """Negative vector sum of calorimeter clusters plus muons."""
        px = 0.0
        py = 0.0
        for cluster in ecal_clusters + hcal_clusters:
            p4 = cluster.p4()
            px += p4.px
            py += p4.py
        for muon in muons:
            px += muon.p4.px
            py += muon.p4.py
        met = math.hypot(px, py)
        phi = math.atan2(-py, -px) if met > 0.0 else 0.0
        return MissingEnergy(met=met, phi=phi)
