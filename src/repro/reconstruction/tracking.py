"""Track finding and fitting.

Pattern recognition is a road search: pairs of hits on the two outermost
populated layers define a candidate trajectory in the ``phi(r)`` and
``z(r)`` planes; hits inside the road are collected, and candidates with
enough hits are fitted.

The fit exploits the linearised helix of
:mod:`repro.detector.digitization`:

    phi(r) = phi0 + d0 * (1/r) + c * r        (c = -q K B / 2 pt)
    z(r)   = z0 + t * r                       (t = sinh(eta))

Both are linear least-squares problems. The transverse fit yields the
charge (sign of ``c``), the transverse momentum (``|c|``), and the impact
parameter ``d0`` — which is what makes displaced-vertex physics (the D0
lifetime master class) possible downstream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.detector.digitization import KAPPA, TrackerHit
from repro.detector.geometry import DetectorGeometry
from repro.errors import ReconstructionError
from repro.kinematics import FourVector
from repro.kinematics.fourvector import wrap_phi

#: Mass hypothesis assigned to tracks with no particle ID, GeV (pion).
PION_MASS = 0.13957

#: Transverse momentum assigned when curvature is consistent with zero.
_MAX_PT = 10000.0


@dataclass(frozen=True)
class Track:
    """A fitted charged-particle trajectory."""

    pt: float
    eta: float
    phi: float
    charge: int
    d0_mm: float
    z0_mm: float
    chi2: float
    n_hits: int

    def p4(self, mass: float = PION_MASS) -> FourVector:
        """Four-momentum under a mass hypothesis."""
        return FourVector.from_ptetaphim(self.pt, self.eta, self.phi, mass)

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {
            "pt": self.pt, "eta": self.eta, "phi": self.phi,
            "q": self.charge, "d0": self.d0_mm, "z0": self.z0_mm,
            "chi2": self.chi2, "nhits": self.n_hits,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Track":
        """Inverse of :meth:`to_dict`."""
        return cls(
            pt=float(record["pt"]), eta=float(record["eta"]),
            phi=float(record["phi"]), charge=int(record["q"]),
            d0_mm=float(record["d0"]), z0_mm=float(record["z0"]),
            chi2=float(record["chi2"]), n_hits=int(record["nhits"]),
        )


@dataclass(frozen=True)
class TrackFinderConfig:
    """Road-search and quality-cut parameters."""

    min_hits: int = 5
    #: Road half-width around the seed prediction, radians.
    phi_road: float = 0.02
    #: Road half-width in z, as a fraction of the radius, mm/mm.
    z_road_mm: float = 30.0
    #: Maximum chi-square per degree of freedom for an accepted track.
    max_chi2_per_dof: float = 25.0
    min_pt: float = 0.3
    #: Extra road width for displaced tracks: hits within
    #: ``phi_road + d0_allowance_mm / r`` of the seed line are
    #: collected, letting the 1/r impact-parameter term of a secondary
    #: (V0/heavy-flavour) track stay inside the road. Zero = prompt
    #: tracking only.
    d0_allowance_mm: float = 0.0


class TrackFinder:
    """Road-search pattern recognition plus linear helix fitting."""

    def __init__(self, geometry: DetectorGeometry,
                 config: TrackFinderConfig | None = None) -> None:
        self.geometry = geometry
        self.config = config if config is not None else TrackFinderConfig()
        self._bfield = geometry.bfield_tesla
        if self._bfield <= 0.0:
            raise ReconstructionError(
                "tracking requires a positive magnetic field"
            )

    # ------------------------------------------------------------------

    def find(self, hits: list[TrackerHit]) -> list[Track]:
        """Reconstruct all tracks from an event's tracker hits."""
        if len(hits) < self.config.min_hits:
            return []
        r = np.array([h.r_mm for h in hits])
        phi = np.array([h.phi for h in hits])
        z = np.array([h.z_mm for h in hits])
        layer = np.array([h.layer for h in hits])
        used = np.zeros(len(hits), dtype=bool)
        tracks = []

        # Seed from the two outermost layers that have hits; fall back to
        # progressively inner pairs so short/low-pt tracks still seed.
        layers_present = sorted(set(layer.tolist()), reverse=True)
        for i_outer, outer_layer in enumerate(layers_present[:-1]):
            inner_layer = layers_present[i_outer + 1]
            outer_indices = np.where((layer == outer_layer) & ~used)[0]
            inner_indices = np.where((layer == inner_layer) & ~used)[0]
            for seed_outer in outer_indices:
                if used[seed_outer]:
                    continue
                for seed_inner in inner_indices:
                    if used[seed_inner] or used[seed_outer]:
                        continue
                    track = self._try_seed(
                        seed_outer, seed_inner, r, phi, z, layer, used
                    )
                    if track is not None:
                        tracks.append(track)
        return tracks

    def _try_seed(self, i1: int, i2: int, r, phi, z, layer,
                  used) -> Track | None:
        """Grow and fit a candidate from a two-hit seed; mark hits used."""
        r1, r2 = r[i1], r[i2]
        if r1 == r2:
            return None
        dphi = wrap_phi(phi[i1] - phi[i2])
        slope_phi = dphi / (r1 - r2)
        # Reject seeds implying unphysically low pt.
        max_slope = KAPPA * self._bfield / (2.0 * self.config.min_pt)
        if abs(slope_phi) > max_slope:
            return None
        intercept_phi = phi[i2] - slope_phi * r2
        slope_z = (z[i1] - z[i2]) / (r1 - r2)
        intercept_z = z[i2] - slope_z * r2

        predicted_phi = intercept_phi + slope_phi * r
        predicted_z = intercept_z + slope_z * r
        residual_phi = np.abs(
            np.mod(phi - predicted_phi + math.pi, 2.0 * math.pi) - math.pi
        )
        residual_z = np.abs(z - predicted_z)
        phi_window = self.config.phi_road
        if self.config.d0_allowance_mm > 0.0:
            phi_window = phi_window + self.config.d0_allowance_mm / r
        in_road = (
            (residual_phi < phi_window)
            & (residual_z < self.config.z_road_mm)
            & ~used
        )
        # One hit per layer: keep the best residual on each layer.
        candidate_indices = np.where(in_road)[0]
        best_per_layer: dict[int, int] = {}
        for index in candidate_indices:
            this_layer = int(layer[index])
            current = best_per_layer.get(this_layer)
            if current is None or residual_phi[index] < residual_phi[current]:
                best_per_layer[this_layer] = int(index)
        chosen = sorted(best_per_layer.values())
        if len(chosen) < self.config.min_hits:
            return None
        track = self._fit(r[chosen], phi[chosen], z[chosen])
        if track is None:
            return None
        used[chosen] = True
        return track

    def _fit(self, r: np.ndarray, phi: np.ndarray,
             z: np.ndarray) -> Track | None:
        """Linear least-squares helix fit over the chosen hits."""
        n = len(r)
        # Unwrap phi around the first hit so the linear fit is valid near
        # the +-pi boundary.
        reference = phi[0]
        unwrapped = reference + np.array(
            [wrap_phi(p - reference) for p in phi]
        )
        basis = np.column_stack([np.ones(n), 1.0 / r, r])
        sigma_phi = self.geometry.tracker.hit_resolution_mm / r
        weights = 1.0 / sigma_phi
        coeffs, residuals, rank, _ = np.linalg.lstsq(
            basis * weights[:, None], unwrapped * weights, rcond=None
        )
        if rank < 3:
            return None
        phi0, d0, curvature = coeffs
        chi2 = float(residuals[0]) if residuals.size else 0.0

        z_basis = np.column_stack([np.ones(n), r])
        z_coeffs, z_residuals, _, _ = np.linalg.lstsq(z_basis, z, rcond=None)
        z0, slope_z = z_coeffs
        sigma_z = 3.0 * self.geometry.tracker.hit_resolution_mm
        if z_residuals.size:
            chi2 += float(z_residuals[0]) / sigma_z**2

        dof = max(1, 2 * n - 5)
        if chi2 / dof > self.config.max_chi2_per_dof:
            return None

        if curvature == 0.0:
            pt = _MAX_PT
            charge = 1
        else:
            pt = KAPPA * self._bfield / (2.0 * abs(curvature))
            pt = min(pt, _MAX_PT)
            charge = -1 if curvature > 0.0 else 1
        if pt < self.config.min_pt:
            return None
        eta = math.asinh(slope_z)
        return Track(
            pt=float(pt),
            eta=float(eta),
            phi=float(wrap_phi(phi0)),
            charge=charge,
            d0_mm=float(d0),
            z0_mm=float(z0),
            chi2=float(chi2),
            n_hits=n,
        )


def _track_line(track: Track) -> tuple[np.ndarray, np.ndarray]:
    """A track as a 3D line: reference point and unit direction."""
    # The point of closest approach to the beam line: with
    # d0 = x0 sin(phi) - y0 cos(phi), the transverse position is
    # d0 * (sin(phi), -cos(phi)).
    point = np.array([
        track.d0_mm * math.sin(track.phi),
        -track.d0_mm * math.cos(track.phi),
        track.z0_mm,
    ])
    direction = np.array([
        math.cos(track.phi),
        math.sin(track.phi),
        math.sinh(track.eta),
    ])
    return point, direction / np.linalg.norm(direction)


def two_track_vertex(
    track1: Track, track2: Track
) -> tuple[tuple[float, float, float], float]:
    """Estimate the common vertex of two tracks.

    Returns ``(vertex_xyz_mm, distance_of_closest_approach_mm)``. The
    vertex is the midpoint of the closest-approach segment between the two
    straight-line approximations of the tracks — good to the sagitta scale,
    which is far below the millimetre flight distances of charm hadrons.
    """
    p1, u1 = _track_line(track1)
    p2, u2 = _track_line(track2)
    w0 = p1 - p2
    a = float(np.dot(u1, u1))
    b = float(np.dot(u1, u2))
    c = float(np.dot(u2, u2))
    d = float(np.dot(u1, w0))
    e = float(np.dot(u2, w0))
    denominator = a * c - b * b
    if abs(denominator) < 1e-12:
        raise ReconstructionError("tracks are parallel: vertex undefined")
    s = (b * e - c * d) / denominator
    t = (a * e - b * d) / denominator
    closest1 = p1 + s * u1
    closest2 = p2 + t * u2
    vertex = 0.5 * (closest1 + closest2)
    doca = float(np.linalg.norm(closest1 - closest2))
    return (float(vertex[0]), float(vertex[1]), float(vertex[2])), doca
