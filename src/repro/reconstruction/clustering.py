"""Calorimeter clustering: local-maximum seeding plus neighbourhood sums."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.detector.digitization import CaloCellHit
from repro.detector.geometry import DetectorGeometry
from repro.errors import ReconstructionError
from repro.kinematics import FourVector


@dataclass(frozen=True)
class CaloCluster:
    """A reconstructed calorimeter cluster."""

    subdetector: str
    energy: float
    eta: float
    phi: float
    n_cells: int

    def p4(self) -> FourVector:
        """Massless four-momentum pointing at the cluster centroid."""
        pt = self.energy / math.cosh(self.eta)
        return FourVector.from_ptetaphim(pt, self.eta, self.phi, 0.0)

    def to_dict(self) -> dict:
        """Serialise for the RECO/AOD file formats."""
        return {
            "sub": self.subdetector, "e": self.energy, "eta": self.eta,
            "phi": self.phi, "ncells": self.n_cells,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "CaloCluster":
        """Inverse of :meth:`to_dict`."""
        return cls(
            subdetector=str(record["sub"]), energy=float(record["e"]),
            eta=float(record["eta"]), phi=float(record["phi"]),
            n_cells=int(record["ncells"]),
        )


@dataclass(frozen=True)
class ClustererConfig:
    """Seeding and summation thresholds."""

    seed_threshold: float = 0.5
    cell_threshold: float = 0.1
    cluster_min_energy: float = 1.0


class CaloClusterer:
    """Local-maximum clustering over a calorimeter's cell grid."""

    def __init__(self, geometry: DetectorGeometry,
                 config: ClustererConfig | None = None) -> None:
        self.geometry = geometry
        self.config = config if config is not None else ClustererConfig()

    def _cell_center(self, subdetector_name: str, ieta: int,
                     iphi: int) -> tuple[float, float]:
        sub = self.geometry.subdetectors[subdetector_name]
        if sub.eta_cells == 0 or sub.phi_cells == 0:
            raise ReconstructionError(
                f"{subdetector_name} has no cell granularity"
            )
        eta = -sub.eta_max + (ieta + 0.5) * (2.0 * sub.eta_max
                                             / sub.eta_cells)
        phi = -math.pi + (iphi + 0.5) * (2.0 * math.pi / sub.phi_cells)
        return eta, phi

    def cluster(self, calo_hits: list[CaloCellHit],
                subdetector_name: str, energy_scale: float = 1.0) -> list[CaloCluster]:
        """Cluster the cells of one calorimeter.

        ``energy_scale`` is the calibration correction from the conditions
        database: measured cell energies are *divided* by the recorded
        scale, undoing the detector's miscalibration.
        """
        if energy_scale <= 0.0:
            raise ReconstructionError(
                f"energy scale must be positive, got {energy_scale}"
            )
        sub = self.geometry.subdetectors[subdetector_name]
        grid: dict[tuple[int, int], float] = {}
        for hit in calo_hits:
            if hit.subdetector != subdetector_name:
                continue
            if hit.energy < self.config.cell_threshold:
                continue
            key = (hit.ieta, hit.iphi)
            grid[key] = grid.get(key, 0.0) + hit.energy / energy_scale

        clusters = []
        claimed: set[tuple[int, int]] = set()
        # Visit cells in descending energy so the highest seed claims its
        # neighbourhood first (standard topological-clustering tiebreak).
        for (ieta, iphi) in sorted(grid, key=grid.get, reverse=True):
            if (ieta, iphi) in claimed:
                continue
            energy = grid[(ieta, iphi)]
            if energy < self.config.seed_threshold:
                break
            if not self._is_local_maximum(grid, sub.phi_cells, ieta, iphi):
                continue
            total = 0.0
            weighted_eta = 0.0
            weighted_phi_x = 0.0
            weighted_phi_y = 0.0
            n_cells = 0
            for d_eta in (-1, 0, 1):
                for d_phi in (-1, 0, 1):
                    neighbour = (ieta + d_eta, (iphi + d_phi) % sub.phi_cells)
                    if neighbour in claimed or neighbour not in grid:
                        continue
                    cell_energy = grid[neighbour]
                    cell_eta, cell_phi = self._cell_center(
                        subdetector_name, neighbour[0], neighbour[1]
                    )
                    total += cell_energy
                    weighted_eta += cell_energy * cell_eta
                    # Average phi on the circle to dodge the wrap.
                    weighted_phi_x += cell_energy * math.cos(cell_phi)
                    weighted_phi_y += cell_energy * math.sin(cell_phi)
                    n_cells += 1
                    claimed.add(neighbour)
            if total < self.config.cluster_min_energy:
                continue
            clusters.append(CaloCluster(
                subdetector=subdetector_name,
                energy=total,
                eta=weighted_eta / total,
                phi=math.atan2(weighted_phi_y, weighted_phi_x),
                n_cells=n_cells,
            ))
        return clusters

    @staticmethod
    def _is_local_maximum(grid: dict[tuple[int, int], float],
                          phi_cells: int, ieta: int, iphi: int) -> bool:
        energy = grid[(ieta, iphi)]
        for d_eta in (-1, 0, 1):
            for d_phi in (-1, 0, 1):
                if d_eta == 0 and d_phi == 0:
                    continue
                neighbour = (ieta + d_eta, (iphi + d_phi) % phi_cells)
                if grid.get(neighbour, 0.0) > energy:
                    return False
        return True
