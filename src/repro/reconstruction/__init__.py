"""Reconstruction: RAW detector signals -> candidate physics objects.

This is the paper's "Reconstruction step consisting of mainly the
application of pattern-recognition and local-maximum-finding algorithms
that convert the 'raw' binary data ... into recognizable 'objects'".

- :mod:`repro.reconstruction.tracking` finds charged tracks from anonymous
  tracker space points via road search plus helix fits,
- :mod:`repro.reconstruction.clustering` finds calorimeter clusters via
  local-maximum seeding,
- :mod:`repro.reconstruction.objects` combines them into candidate
  electrons, muons, photons, and missing energy,
- :mod:`repro.reconstruction.jets` runs cone jet clustering,
- :mod:`repro.reconstruction.reconstructor` orchestrates the pass and pulls
  its calibration constants from a conditions source — the external
  database dependency the preservation layer must capture.
"""

from repro.reconstruction.tracking import Track, TrackFinder, two_track_vertex
from repro.reconstruction.clustering import CaloCluster, CaloClusterer
from repro.reconstruction.objects import (
    Electron,
    Jet,
    MissingEnergy,
    Muon,
    Photon,
    RecoEvent,
)
from repro.reconstruction.reconstructor import (
    ConditionsSource,
    GlobalTagView,
    Reconstructor,
)

__all__ = [
    "Track",
    "TrackFinder",
    "two_track_vertex",
    "CaloCluster",
    "CaloClusterer",
    "Electron",
    "Muon",
    "Photon",
    "Jet",
    "MissingEnergy",
    "RecoEvent",
    "Reconstructor",
    "ConditionsSource",
    "GlobalTagView",
]
