"""The reconstruction orchestrator and its conditions dependency.

:class:`Reconstructor` runs the full Reconstruction step over RAW events.
Its calibration constants come from a :class:`ConditionsSource`, which is
either a :class:`GlobalTagView` over a live :class:`ConditionsStore` (the
database-access mode) or a :class:`~repro.conditions.ConditionsSnapshot`
(the ALICE ship-a-text-file mode). Every payload read is logged so the
workflow layer can enumerate external dependencies for preservation.
"""

from __future__ import annotations

import functools
from typing import Protocol

import numpy as np

from repro.conditions.calibration import (
    FOLDER_ECAL_SCALE,
    FOLDER_HCAL_SCALE,
)
from repro.conditions.store import ConditionsStore
from repro.detector.digitization import RawEvent
from repro.detector.geometry import DetectorGeometry
from repro.reconstruction.clustering import CaloClusterer, ClustererConfig
from repro.reconstruction.jets import ConeJetConfig, ConeJetFinder
from repro.reconstruction.objects import (
    ObjectBuilder,
    ObjectBuilderConfig,
    RecoEvent,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active
from repro.reconstruction.tracking import TrackFinder, TrackFinderConfig
from repro.runtime import ExecutionPolicy, chunked, default_chunk_size, parallel_map


class ConditionsSource(Protocol):
    """Anything that can answer ``payload(folder, run)`` queries."""

    def payload(self, folder: str, run: int) -> dict:
        """The conditions payload for ``folder`` valid at ``run``."""
        ...


class GlobalTagView:
    """Adapter presenting ``(store, global_tag)`` as a ConditionsSource."""

    def __init__(self, store: ConditionsStore, global_tag_name: str) -> None:
        self.store = store
        self.global_tag_name = global_tag_name
        # Fail fast on unknown global tags.
        store.global_tag(global_tag_name)

    def payload(self, folder: str, run: int) -> dict:
        """Resolve ``folder`` through the global tag and read the store."""
        return self.store.payload_for_global_tag(
            folder, self.global_tag_name, run
        )

    def describe(self) -> dict:
        """Provenance description of this conditions configuration."""
        return {
            "mode": "database",
            "store": self.store.name,
            "global_tag": self.global_tag_name,
        }


class Reconstructor:
    """The full RAW -> RECO reconstruction pass."""

    NAME = "repro-reco"
    VERSION = "1.0.0"

    def __init__(
        self,
        geometry: DetectorGeometry,
        conditions: ConditionsSource,
        track_config: TrackFinderConfig | None = None,
        cluster_config: ClustererConfig | None = None,
        object_config: ObjectBuilderConfig | None = None,
        jet_config: ConeJetConfig | None = None,
    ) -> None:
        self.geometry = geometry
        self.conditions = conditions
        self._track_finder = TrackFinder(geometry, track_config)
        self._clusterer = CaloClusterer(geometry, cluster_config)
        self._object_builder = ObjectBuilder(object_config)
        self._jet_finder = ConeJetFinder(jet_config)
        self._conditions_reads: list[tuple[str, int]] = []
        self._columnar_builder = None

    def _scale(self, folder: str, run: int) -> float:
        self._conditions_reads.append((folder, run))
        payload = self.conditions.payload(folder, run)
        return float(payload["scale"])

    def reconstruct(self, raw: RawEvent) -> RecoEvent:
        """Reconstruct one RAW event into a RECO event."""
        run = raw.run_number
        ecal_scale = self._scale(FOLDER_ECAL_SCALE, run)
        hcal_scale = self._scale(FOLDER_HCAL_SCALE, run)

        tracks = self._track_finder.find(raw.tracker_hits)
        ecal_clusters = self._clusterer.cluster(raw.calo_hits, "ecal",
                                                ecal_scale)
        hcal_name = self.geometry.hcal.name
        hcal_clusters = self._clusterer.cluster(raw.calo_hits, hcal_name,
                                                hcal_scale)

        muons = self._object_builder.build_muons(tracks, raw.muon_hits)
        electrons = self._object_builder.build_electrons(
            tracks, ecal_clusters, muons
        )
        photons = self._object_builder.build_photons(
            tracks, ecal_clusters, electrons
        )
        # Jets from HCAL clusters plus ECAL clusters not used by e/gamma.
        electron_photon_dirs = (
            [(e.p4.eta, e.p4.phi) for e in electrons]
            + [(p.p4.eta, p.p4.phi) for p in photons]
        )
        jet_inputs = list(hcal_clusters)
        for cluster in ecal_clusters:
            is_eg = any(
                abs(cluster.eta - eta) < 0.1
                and abs(cluster.phi - phi) < 0.1
                for eta, phi in electron_photon_dirs
            )
            if not is_eg:
                jet_inputs.append(cluster)
        jets = self._jet_finder.find(jet_inputs)
        met = self._object_builder.build_met(ecal_clusters, hcal_clusters,
                                             muons)
        return RecoEvent(
            run_number=raw.run_number,
            event_number=raw.event_number,
            tracks=tracks,
            ecal_clusters=ecal_clusters,
            hcal_clusters=hcal_clusters,
            electrons=electrons,
            muons=muons,
            photons=photons,
            jets=jets,
            met=met,
        )

    def _reconstruct_columnar(self, raw: RawEvent) -> RecoEvent:
        """One event through the columnar object builder.

        Identical structure — and bit-identical output — to
        :meth:`reconstruct`: same conditions reads in the same order,
        same track finding and clustering, but candidate-object building
        uses delta-R matrices and the e/gamma jet-input veto is one
        vectorised window test.
        """
        run = raw.run_number
        ecal_scale = self._scale(FOLDER_ECAL_SCALE, run)
        hcal_scale = self._scale(FOLDER_HCAL_SCALE, run)

        tracks = self._track_finder.find(raw.tracker_hits)
        ecal_clusters = self._clusterer.cluster(raw.calo_hits, "ecal",
                                                ecal_scale)
        hcal_name = self.geometry.hcal.name
        hcal_clusters = self._clusterer.cluster(raw.calo_hits, hcal_name,
                                                hcal_scale)

        builder = self._columnar_object_builder()
        muons = builder.build_muons(tracks, raw.muon_hits)
        electrons = builder.build_electrons(tracks, ecal_clusters, muons)
        photons = builder.build_photons(tracks, ecal_clusters, electrons)

        # Jets from HCAL clusters plus ECAL clusters not used by
        # e/gamma. Plain eta/phi differences (no phi wrapping), exactly
        # like the scalar loop in :meth:`reconstruct`.
        jet_inputs = list(hcal_clusters)
        if ecal_clusters:
            cluster_eta = np.fromiter((c.eta for c in ecal_clusters),
                                      dtype=np.float64,
                                      count=len(ecal_clusters))
            cluster_phi = np.fromiter((c.phi for c in ecal_clusters),
                                      dtype=np.float64,
                                      count=len(ecal_clusters))
            directions = ([(e.p4.eta, e.p4.phi) for e in electrons]
                          + [(p.p4.eta, p.p4.phi) for p in photons])
            is_eg = np.zeros(len(ecal_clusters), dtype=bool)
            for eta, phi in directions:
                is_eg |= ((np.abs(cluster_eta - eta) < 0.1)
                          & (np.abs(cluster_phi - phi) < 0.1))
            jet_inputs.extend(cluster for cluster, used
                              in zip(ecal_clusters, is_eg) if not used)
        jets = self._jet_finder.find(jet_inputs)
        met = builder.build_met(ecal_clusters, hcal_clusters, muons)
        return RecoEvent(
            run_number=raw.run_number,
            event_number=raw.event_number,
            tracks=tracks,
            ecal_clusters=ecal_clusters,
            hcal_clusters=hcal_clusters,
            electrons=electrons,
            muons=muons,
            photons=photons,
            jets=jets,
            met=met,
        )

    def _columnar_object_builder(self):
        """The lazily built columnar twin of the object builder."""
        if self._columnar_builder is None:
            from repro.columnar.objects import ColumnarObjectBuilder

            self._columnar_builder = ColumnarObjectBuilder(
                self._object_builder.config)
        return self._columnar_builder

    def reconstruct_batch(
        self,
        raw_events: list[RawEvent],
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> list[RecoEvent]:
        """Reconstruct a list of RAW events via the columnar engine.

        Output is bit-identical to :meth:`reconstruct_many` with a
        serial policy — the columnar path changes how the per-event
        combinatorics are *evaluated*, not what they compute — and the
        conditions-read log advances in the same order. An enabled
        ``tracer`` wraps the pass in a ``reco.reconstruct_batch`` span;
        ``metrics`` counts the same ``reco.*`` series as the scalar
        path.
        """
        obs = active(tracer)
        reads_before = len(self._conditions_reads)
        with obs.span("reco.reconstruct_batch",
                      n_events=len(raw_events), mode="columnar"):
            recos = [self._reconstruct_columnar(raw)
                     for raw in raw_events]
        self._record_reco_metrics(metrics, len(recos), reads_before)
        return recos

    def reconstruct_many(
        self,
        raw_events: list[RawEvent],
        policy: ExecutionPolicy | None = None,
        chunk_size: int | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> list[RecoEvent]:
        """Reconstruct a list of RAW events in order.

        Under a parallel ``policy`` the events are split into contiguous
        chunks, each chunk is reconstructed by an isolated worker clone,
        and both the RECO events *and* the workers' conditions reads are
        merged back in chunk order — so the output list and the
        :attr:`conditions_reads` log are bit-identical to the serial
        loop. Event reconstruction is pure per event (no cross-event
        state), which is what makes the chunk boundary free to move.

        An enabled ``tracer`` wraps the pass in a
        ``reco.reconstruct_many`` span (per-chunk worker spans nest
        below it via :func:`parallel_map`); ``metrics`` counts events
        and conditions reads. Left at ``None``, the pass costs what it
        always did.
        """
        obs = active(tracer)
        reads_before = len(self._conditions_reads)
        if policy is None or policy.is_serial:
            with obs.span("reco.reconstruct_many",
                          n_events=len(raw_events), mode="serial"):
                recos = [self.reconstruct(raw) for raw in raw_events]
            self._record_reco_metrics(metrics, len(recos),
                                      reads_before)
            return recos
        events = list(raw_events)
        if not events:
            return []
        size = (chunk_size if chunk_size is not None
                else policy.chunk_size if policy.chunk_size is not None
                else default_chunk_size(len(events), policy.n_jobs))
        chunks = list(chunked(events, size))
        worker = functools.partial(_reconstruct_chunk, self)
        recos = []
        with obs.span("reco.reconstruct_many", n_events=len(events),
                      n_chunks=len(chunks), mode=policy.mode):
            for chunk_recos, chunk_reads in parallel_map(
                    worker, chunks, policy, chunk_size=1,
                    tracer=tracer, metrics=metrics):
                recos.extend(chunk_recos)
                self._conditions_reads.extend(chunk_reads)
        self._record_reco_metrics(metrics, len(recos), reads_before)
        return recos

    def _record_reco_metrics(self, metrics: MetricsRegistry | None,
                             n_events: int, reads_before: int) -> None:
        """Count one reconstruction pass into ``metrics`` (if any)."""
        if metrics is None:
            return
        metrics.counter("reco.events").inc(n_events)
        metrics.counter("reco.conditions_reads").inc(
            len(self._conditions_reads) - reads_before)

    def _clone_for_worker(self) -> "Reconstructor":
        """A fresh reconstructor with this one's exact configuration.

        Shares the (read-only) conditions source but owns an empty
        conditions-read log, so concurrent workers never interleave
        their dependency records.
        """
        return Reconstructor(
            self.geometry,
            self.conditions,
            track_config=self._track_finder.config,
            cluster_config=self._clusterer.config,
            object_config=self._object_builder.config,
            jet_config=self._jet_finder.config,
        )

    @property
    def conditions_reads(self) -> list[tuple[str, int]]:
        """Every ``(folder, run)`` this reconstructor fetched."""
        return list(self._conditions_reads)

    def external_dependencies(self) -> dict:
        """The external-resource enumeration the preservation layer stores."""
        folders = sorted({folder for folder, _ in self._conditions_reads})
        runs = sorted({run for _, run in self._conditions_reads})
        description = {"folders": folders, "runs": runs}
        describe = getattr(self.conditions, "describe", None)
        if callable(describe):
            description["conditions"] = describe()
        return description

    def describe(self) -> dict:
        """Provenance description of this reconstruction configuration."""
        return {
            "producer": self.NAME,
            "version": self.VERSION,
            "geometry": self.geometry.name,
            "min_track_hits": self._track_finder.config.min_hits,
            "jet_cone_radius": self._jet_finder.config.cone_radius,
        }


def _reconstruct_chunk(
    reconstructor: Reconstructor, chunk: list[RawEvent]
) -> tuple[list[RecoEvent], list[tuple[str, int]]]:
    """Worker-side chunk driver (module-level so process pools can
    pickle it). Clones per chunk so thread workers are isolated too."""
    worker = reconstructor._clone_for_worker()
    recos = [worker.reconstruct(raw) for raw in chunk]
    return recos, worker.conditions_reads
