"""The analysis plugin base class."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import RivetError
from repro.generation.hepmc import GenEvent
from repro.stats.histogram import Histogram1D


@dataclass(frozen=True)
class AnalysisMetadata:
    """Bibliographic metadata of a preserved analysis.

    ``inspire_id`` is the (toy) literature key linking back to the
    publication, the same linkage HepData/INSPIRE entries use.
    """

    name: str
    description: str
    experiment: str = "TOY"
    year: int = 2013
    inspire_id: str = ""
    references: tuple[str, ...] = ()
    keywords: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Serialise for repository listings."""
        return {
            "name": self.name,
            "description": self.description,
            "experiment": self.experiment,
            "year": self.year,
            "inspire_id": self.inspire_id,
            "references": list(self.references),
            "keywords": list(self.keywords),
        }


class Analysis(abc.ABC):
    """One preserved analysis: booking, per-event fill, finalisation.

    Lifecycle (driven by the runner):

    1. :meth:`init` — book histograms with :meth:`book`;
    2. :meth:`analyze` — called once per event;
    3. :meth:`finalize` — normalise (cross-sections, unit weights).
    """

    #: Subclasses must provide their metadata.
    metadata: AnalysisMetadata

    def __init__(self) -> None:
        if not isinstance(getattr(self, "metadata", None), AnalysisMetadata):
            raise RivetError(
                f"{type(self).__name__} must define AnalysisMetadata"
            )
        self.histograms: dict[str, Histogram1D] = {}
        self._sum_of_weights = 0.0
        self._initialized = False

    @property
    def name(self) -> str:
        """The analysis name (repository key)."""
        return self.metadata.name

    def book(self, key: str, nbins: int, low: float, high: float,
             label: str = "") -> Histogram1D:
        """Book a histogram under this analysis's namespace."""
        if key in self.histograms:
            raise RivetError(
                f"{self.name}: histogram {key!r} already booked"
            )
        histogram = Histogram1D(f"{self.name}/{key}", nbins, low, high,
                                label=label)
        self.histograms[key] = histogram
        return histogram

    def histogram(self, key: str) -> Histogram1D:
        """Look up a booked histogram."""
        try:
            return self.histograms[key]
        except KeyError:
            raise RivetError(
                f"{self.name}: no histogram {key!r}; booked: "
                f"{sorted(self.histograms)}"
            ) from None

    # ------------------------------------------------------------------
    # Plugin hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def init(self) -> None:
        """Book histograms; called once before the event loop."""

    @abc.abstractmethod
    def analyze(self, event: GenEvent) -> None:
        """Fill histograms for one event."""

    def finalize(self) -> None:
        """Post-loop normalisation; default normalises to unit area."""
        for histogram in self.histograms.values():
            if histogram.integral() > 0.0:
                normalized = histogram.normalized()
                histogram._sumw = normalized._sumw
                histogram._sumw2 = normalized._sumw2

    # ------------------------------------------------------------------
    # Runner plumbing
    # ------------------------------------------------------------------

    def _run_init(self) -> None:
        if self._initialized:
            raise RivetError(f"{self.name}: init() called twice")
        self.init()
        self._initialized = True

    def _run_event(self, event: GenEvent) -> None:
        if not self._initialized:
            raise RivetError(f"{self.name}: analyze() before init()")
        self._sum_of_weights += event.weight
        self.analyze(event)

    def _run_finalize(self) -> None:
        if not self._initialized:
            raise RivetError(f"{self.name}: finalize() before init()")
        self.finalize()

    @property
    def sum_of_weights(self) -> float:
        """Total event weight seen so far."""
        return self._sum_of_weights
