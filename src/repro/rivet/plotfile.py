"""Plot-data files: the distributable comparison artifact.

Real RIVET ships ``.dat`` plot files that downstream tools render. This
module writes the analogue: a plain-text, self-describing file per
histogram carrying the MC prediction, the reference measurement, the
per-bin ratio, and the comparison verdict — everything a reader needs to
re-draw or re-check the comparison without the framework.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import PersistenceError, RivetError
from repro.rivet.reference import ReferenceData
from repro.rivet.runner import AnalysisResult
from repro.stats.comparison import chi2_test, ratio_points


def format_plot_file(result: AnalysisResult, reference: ReferenceData,
                     key: str) -> str:
    """Render one histogram comparison as plot-file text."""
    if key not in result.histograms:
        raise RivetError(
            f"result for {result.analysis_name!r} has no histogram "
            f"{key!r}"
        )
    prediction = result.histogram(key)
    measurement = reference.histogram(key)
    comparison = chi2_test(measurement, prediction)
    ratios = {center: (ratio, error)
              for center, ratio, error in ratio_points(prediction,
                                                       measurement)}
    lines = [
        f"# BEGIN PLOT {result.analysis_name}/{key}",
        f"# source analysis: {result.analysis_name}",
        f"# reference: {reference.source or 'archived measurement'}",
        f"# generator: {result.generator_info.get('generator', '?')} "
        f"tune={result.generator_info.get('tune', '?')}",
        f"# events: {result.n_events}",
        f"# comparison: {comparison.summary()}",
        "# columns: bin_low bin_high mc mc_err data data_err "
        "ratio ratio_err",
    ]
    mc_values = prediction.values()
    mc_errors = prediction.errors()
    data_values = measurement.values()
    data_errors = measurement.errors()
    centers = prediction.bin_centers()
    edges = prediction.edges
    for index in range(prediction.nbins):
        ratio, ratio_error = ratios.get(float(centers[index]),
                                        (float("nan"), float("nan")))
        lines.append(
            f"{edges[index]:.6g} {edges[index + 1]:.6g} "
            f"{mc_values[index]:.6g} {mc_errors[index]:.6g} "
            f"{data_values[index]:.6g} {data_errors[index]:.6g} "
            f"{ratio:.6g} {ratio_error:.6g}"
        )
    lines.append("# END PLOT")
    return "\n".join(lines)


def write_plot_files(result: AnalysisResult, reference: ReferenceData,
                     directory: str | Path) -> list[Path]:
    """Write one plot file per shared histogram key; returns the paths."""
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise PersistenceError(
            f"cannot create plot directory {directory}: {exc}"
        )
    written = []
    for key in reference.keys():
        if key not in result.histograms:
            continue
        path = directory / f"{result.analysis_name}_{key}.dat"
        try:
            path.write_text(
                format_plot_file(result, reference, key) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            raise PersistenceError(
                f"cannot write plot file {path}: {exc}"
            )
        written.append(path)
    if not written:
        raise RivetError(
            f"no shared histogram keys between result "
            f"{result.analysis_name!r} and its reference"
        )
    return written
