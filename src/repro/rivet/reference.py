"""Reference data: the archived measurement an analysis is compared to.

"RIVET is distributed as a software package with accompanying data from
the included analyses." A :class:`ReferenceData` bundle holds the unfolded
measurement histograms for one analysis, serialisable to a JSON file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import PersistenceError, RivetError
from repro.stats.histogram import Histogram1D

_FORMAT_TAG = "repro-reference-data"


@dataclass
class ReferenceData:
    """Unfolded measurement histograms keyed like the analysis's bookings."""

    analysis_name: str
    histograms: dict[str, Histogram1D] = field(default_factory=dict)
    source: str = ""

    def add(self, key: str, histogram: Histogram1D) -> None:
        """Attach one measurement histogram."""
        if key in self.histograms:
            raise RivetError(
                f"reference for {self.analysis_name!r} already has {key!r}"
            )
        self.histograms[key] = histogram

    def histogram(self, key: str) -> Histogram1D:
        """Look up a measurement histogram."""
        try:
            return self.histograms[key]
        except KeyError:
            raise RivetError(
                f"reference for {self.analysis_name!r} has no {key!r}; "
                f"available: {sorted(self.histograms)}"
            ) from None

    def keys(self) -> list[str]:
        """All measurement keys, sorted."""
        return sorted(self.histograms)

    def to_dict(self) -> dict:
        """Serialise for archive payloads."""
        return {
            "format": _FORMAT_TAG,
            "analysis": self.analysis_name,
            "source": self.source,
            "histograms": {key: histogram.to_dict()
                           for key, histogram in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ReferenceData":
        """Inverse of :meth:`to_dict`."""
        if record.get("format") != _FORMAT_TAG:
            raise PersistenceError(
                f"not reference data: format={record.get('format')!r}"
            )
        reference = cls(
            analysis_name=str(record["analysis"]),
            source=str(record.get("source", "")),
        )
        for key, histogram_record in record.get("histograms", {}).items():
            reference.histograms[key] = Histogram1D.from_dict(
                histogram_record
            )
        return reference

    def save(self, path: str | Path) -> None:
        """Write to a JSON file."""
        path = Path(path)
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1)
        except OSError as exc:
            raise PersistenceError(
                f"cannot write reference data {path}: {exc}"
            )

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceData":
        """Read from a JSON file written by :meth:`save`."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError as exc:
            raise PersistenceError(
                f"cannot read reference data {path}: {exc}"
            )
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"reference data {path} is not valid JSON: {exc}"
            )
        return cls.from_dict(record)
