"""The open analysis repository.

"Once an analysis is put into RIVET ... anyone can examine the analysis
code and the reduced data provided for comparisons." The repository keeps
analysis *classes* (the code), their metadata, and their reference data
side by side, and can report its own footprint — the quantitative basis
for the paper's "quite light from a footprint standpoint" claim.
"""

from __future__ import annotations

import inspect

from repro.errors import AnalysisNotFoundError, RivetError
from repro.rivet.analysis import Analysis
from repro.rivet.reference import ReferenceData


class AnalysisRepository:
    """Registry of analysis plugins plus their reference data."""

    def __init__(self, name: str = "analyses") -> None:
        self.name = name
        self._factories: dict[str, type[Analysis] | object] = {}
        self._reference: dict[str, ReferenceData] = {}

    # ------------------------------------------------------------------

    def register(self, factory, reference: ReferenceData | None = None
                 ) -> None:
        """Register an analysis class or zero-argument factory.

        The factory is called once to validate it and obtain the name.
        """
        instance = factory()
        if not isinstance(instance, Analysis):
            raise RivetError(
                f"factory {factory!r} does not produce an Analysis"
            )
        name = instance.name
        if name in self._factories:
            raise RivetError(f"analysis {name!r} already registered")
        self._factories[name] = factory
        if reference is not None:
            if reference.analysis_name != name:
                raise RivetError(
                    f"reference data is for {reference.analysis_name!r}, "
                    f"not {name!r}"
                )
            self._reference[name] = reference

    def attach_reference(self, reference: ReferenceData) -> None:
        """Attach (or replace) reference data for a registered analysis."""
        if reference.analysis_name not in self._factories:
            raise AnalysisNotFoundError(
                f"no analysis {reference.analysis_name!r} to attach "
                f"reference data to"
            )
        self._reference[reference.analysis_name] = reference

    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """All registered analysis names, sorted."""
        return sorted(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str) -> Analysis:
        """Instantiate a fresh copy of a registered analysis."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise AnalysisNotFoundError(
                f"unknown analysis {name!r}; available: {self.names()[:10]}"
            ) from None
        return factory()

    def metadata(self, name: str) -> dict:
        """The registered analysis's metadata, as a dictionary."""
        return self.create(name).metadata.to_dict()

    def reference(self, name: str) -> ReferenceData | None:
        """Reference data for an analysis, if any was provided."""
        if name not in self._factories:
            raise AnalysisNotFoundError(f"unknown analysis {name!r}")
        return self._reference.get(name)

    def listing(self) -> list[dict]:
        """Metadata of every analysis — the public catalogue view."""
        return [self.metadata(name) for name in self.names()]

    # ------------------------------------------------------------------

    def footprint(self) -> dict:
        """Size of the preserved code base.

        Returns the number of analyses, the number of distinct plugin
        classes, and the total source size in bytes — the quantity behind
        "the code base is small and runs on essentially any platform".
        """
        classes = set()
        source_bytes = 0
        for factory in self._factories.values():
            instance = factory()
            cls = type(instance)
            if cls in classes:
                continue
            classes.add(cls)
            try:
                source_bytes += len(inspect.getsource(cls).encode("utf-8"))
            except (OSError, TypeError):
                # Dynamically generated classes have no retrievable source;
                # approximate with their dict repr.
                source_bytes += len(repr(vars(cls)).encode("utf-8"))
        return {
            "n_analyses": len(self._factories),
            "n_plugin_classes": len(classes),
            "source_bytes": source_bytes,
            "n_with_reference_data": len(self._reference),
        }
