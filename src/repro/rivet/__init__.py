"""A RIVET-analogue analysis-preservation framework.

Mirrors the properties the paper attributes to RIVET:

- analyses run on *truth-level* (unfolded-comparable) events only — there
  is deliberately no access to the detector simulation from here;
- each analysis is a small plugin coded against a library of standard
  *projections* (final-state selectors, truth jets);
- validated analyses live in an open :class:`AnalysisRepository` together
  with their reference data, so anyone can re-run the comparison against
  a new generator;
- the footprint is light: this package plus :mod:`repro.stats` is all a
  re-analysis needs.

The capability *gaps* the paper lists (no detector simulation, no
background subtraction, no limit setting) are structural here too — those
live in :mod:`repro.recast`, reachable through the bridge.
"""

from repro.rivet.projections import (
    ChargedFinalState,
    FinalState,
    IdentifiedFinalState,
    TruthJets,
    VisibleMomentum,
)
from repro.rivet.analysis import Analysis, AnalysisMetadata
from repro.rivet.repository import AnalysisRepository
from repro.rivet.runner import AnalysisResult, RivetRunner
from repro.rivet.plotfile import format_plot_file, write_plot_files
from repro.rivet.reference import ReferenceData
from repro.rivet.standard_analyses import (
    register_standard_analyses,
    standard_repository,
)

__all__ = [
    "FinalState",
    "ChargedFinalState",
    "IdentifiedFinalState",
    "TruthJets",
    "VisibleMomentum",
    "Analysis",
    "AnalysisMetadata",
    "AnalysisRepository",
    "RivetRunner",
    "AnalysisResult",
    "ReferenceData",
    "format_plot_file",
    "write_plot_files",
    "register_standard_analyses",
    "standard_repository",
]
