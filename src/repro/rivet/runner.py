"""The analysis runner and comparison driver."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RivetError
from repro.generation.hepmc import GenEvent
from repro.rivet.analysis import Analysis
from repro.rivet.repository import AnalysisRepository
from repro.stats.comparison import ComparisonResult, chi2_test
from repro.stats.histogram import Histogram1D


@dataclass
class AnalysisResult:
    """The output of running one analysis over a generator sample."""

    analysis_name: str
    n_events: int
    sum_of_weights: float
    histograms: dict[str, Histogram1D] = field(default_factory=dict)
    generator_info: dict = field(default_factory=dict)

    def histogram(self, key: str) -> Histogram1D:
        """Look up a produced histogram."""
        try:
            return self.histograms[key]
        except KeyError:
            raise RivetError(
                f"{self.analysis_name}: no histogram {key!r}; produced: "
                f"{sorted(self.histograms)}"
            ) from None

    def to_dict(self) -> dict:
        """Serialise for archiving and RECAST responses."""
        return {
            "analysis": self.analysis_name,
            "n_events": self.n_events,
            "sum_of_weights": self.sum_of_weights,
            "generator": dict(self.generator_info),
            "histograms": {key: histogram.to_dict()
                           for key, histogram in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "AnalysisResult":
        """Inverse of :meth:`to_dict`."""
        result = cls(
            analysis_name=str(record["analysis"]),
            n_events=int(record["n_events"]),
            sum_of_weights=float(record["sum_of_weights"]),
            generator_info=dict(record.get("generator", {})),
        )
        for key, histogram_record in record.get("histograms", {}).items():
            result.histograms[key] = Histogram1D.from_dict(histogram_record)
        return result


class RivetRunner:
    """Runs repository analyses over truth events and compares to data."""

    def __init__(self, repository: AnalysisRepository) -> None:
        self.repository = repository

    def run(self, analysis_names: list[str], events: list[GenEvent],
            generator_info: dict | None = None) -> dict[str, AnalysisResult]:
        """Run several analyses over one event sample."""
        analyses: list[Analysis] = [
            self.repository.create(name) for name in analysis_names
        ]
        for analysis in analyses:
            analysis._run_init()
        for event in events:
            for analysis in analyses:
                analysis._run_event(event)
        results = {}
        for analysis in analyses:
            analysis._run_finalize()
            results[analysis.name] = AnalysisResult(
                analysis_name=analysis.name,
                n_events=len(events),
                sum_of_weights=analysis.sum_of_weights,
                histograms=dict(analysis.histograms),
                generator_info=(dict(generator_info)
                                if generator_info else {}),
            )
        return results

    def run_one(self, analysis_name: str, events: list[GenEvent],
                generator_info: dict | None = None) -> AnalysisResult:
        """Run a single analysis over one event sample."""
        return self.run([analysis_name], events, generator_info)[
            analysis_name
        ]

    def compare_to_reference(
        self, result: AnalysisResult
    ) -> dict[str, ComparisonResult]:
        """Chi-square comparison of a result against its reference data.

        Only keys present in both the result and the reference are
        compared; an empty dict means no reference data is attached.
        """
        reference = self.repository.reference(result.analysis_name)
        if reference is None:
            return {}
        comparisons = {}
        for key in reference.keys():
            if key not in result.histograms:
                continue
            comparisons[key] = chi2_test(
                reference.histogram(key), result.histogram(key)
            )
        return comparisons
