"""Projections: reusable truth-event selectors and builders.

The "series of standard tools ... exploited to replicate analysis cuts and
procedures within the RIVET framework". A projection takes a
:class:`~repro.generation.GenEvent` and returns derived objects; analyses
compose projections rather than touching the raw particle list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.detector.simulation import INVISIBLE_PDG_IDS
from repro.generation.hepmc import GenEvent, GenParticle
from repro.kinematics import FourVector
from repro.kinematics.fourvector import delta_phi


@dataclass(frozen=True)
class FinalState:
    """All stable final-state particles inside acceptance cuts."""

    eta_max: float = 5.0
    pt_min: float = 0.0

    def particles(self, event: GenEvent) -> list[GenParticle]:
        """Apply the acceptance cuts to the event's final state."""
        selected = []
        for particle in event.final_state():
            momentum = particle.momentum
            if momentum.pt < self.pt_min:
                continue
            eta = momentum.eta
            if math.isinf(eta) or abs(eta) > self.eta_max:
                continue
            selected.append(particle)
        return selected


@dataclass(frozen=True)
class ChargedFinalState:
    """Stable charged particles inside acceptance cuts.

    Charge is inferred from the PDG id using the same convention as the
    particle table (leptons and the light charged hadrons).
    """

    eta_max: float = 2.5
    pt_min: float = 0.1

    _CHARGED_IDS = frozenset({
        11, -11, 13, -13, 15, -15, 211, -211, 321, -321, 2212, -2212,
        411, -411, 24, -24,
    })

    def particles(self, event: GenEvent) -> list[GenParticle]:
        """Apply the charge and acceptance selection."""
        base = FinalState(eta_max=self.eta_max, pt_min=self.pt_min)
        return [p for p in base.particles(event)
                if p.pdg_id in self._CHARGED_IDS]


@dataclass(frozen=True)
class IdentifiedFinalState:
    """Stable particles of specific PDG ids inside acceptance cuts."""

    pdg_ids: tuple[int, ...]
    eta_max: float = 5.0
    pt_min: float = 0.0

    def particles(self, event: GenEvent) -> list[GenParticle]:
        """Apply the id and acceptance selection."""
        wanted = set(self.pdg_ids)
        base = FinalState(eta_max=self.eta_max, pt_min=self.pt_min)
        return [p for p in base.particles(event) if p.pdg_id in wanted]


@dataclass(frozen=True)
class VisibleMomentum:
    """Vector-summed visible momentum (for truth MET)."""

    eta_max: float = 5.0

    def missing_pt(self, event: GenEvent) -> FourVector:
        """The transverse momentum imbalance of the visible system."""
        total = FourVector.zero()
        for particle in FinalState(eta_max=self.eta_max).particles(event):
            if particle.pdg_id in INVISIBLE_PDG_IDS:
                continue
            total = total + particle.momentum
        return FourVector.from_ptetaphim(
            total.pt, 0.0, math.atan2(-total.py, -total.px)
            if total.pt > 0.0 else 0.0, 0.0
        )


@dataclass(frozen=True)
class TruthJets:
    """Cone-clustered truth jets from visible final-state hadrons.

    Electrons, muons, and invisibles are excluded so the jets match the
    hadronic activity definition of the detector-level cone jets.
    """

    cone_radius: float = 0.4
    jet_pt_min: float = 10.0
    eta_max: float = 4.5

    _LEPTON_IDS = frozenset({11, -11, 13, -13})

    def jets(self, event: GenEvent) -> list[FourVector]:
        """Cluster and return the jet four-momenta, pt-sorted."""
        inputs = []
        for particle in FinalState(eta_max=self.eta_max).particles(event):
            if particle.pdg_id in INVISIBLE_PDG_IDS:
                continue
            if particle.pdg_id in self._LEPTON_IDS:
                continue
            inputs.append(particle.momentum)
        inputs.sort(key=lambda p: p.pt, reverse=True)
        jets = []
        while inputs:
            seed = inputs[0]
            members = [p for p in inputs
                       if math.hypot(p.eta - seed.eta,
                                     delta_phi(p.phi, seed.phi))
                       < self.cone_radius]
            total = FourVector.zero()
            for member in members:
                total = total + member
            member_ids = {id(m) for m in members}
            inputs = [p for p in inputs if id(p) not in member_ids]
            if total.pt >= self.jet_pt_min:
                jets.append(total)
        return sorted(jets, key=lambda j: j.pt, reverse=True)
