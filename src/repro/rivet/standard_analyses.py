"""The built-in analysis catalogue.

Six hand-written analyses cover the physics the paper's outreach and
re-analysis discussions revolve around (Z mass/pt, W transverse mass,
charged multiplicity, dijets, dimuon spectra), and
:func:`register_generated_catalog` mass-produces parameterised spectrum
analyses the way the real RIVET repository accumulated "well over a
hundred different analyses".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RivetError
from repro.generation.hepmc import GenEvent
from repro.kinematics import invariant_mass, transverse_mass
from repro.rivet.analysis import Analysis, AnalysisMetadata
from repro.rivet.projections import (
    ChargedFinalState,
    IdentifiedFinalState,
    TruthJets,
    VisibleMomentum,
)
from repro.rivet.repository import AnalysisRepository


def _opposite_charge_pair(particles) -> tuple | None:
    """Leading opposite-charge pair from a pt-sorted id'd selection."""
    ordered = sorted(particles, key=lambda p: p.momentum.pt, reverse=True)
    positive = [p for p in ordered if p.pdg_id < 0]  # anti-leptons are +
    negative = [p for p in ordered if p.pdg_id > 0]
    if not positive or not negative:
        return None
    return negative[0], positive[0]


class ZMuMuMassAnalysis(Analysis):
    """Dimuon invariant mass around the Z pole."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0001",
        description="Z -> mu mu invariant mass near the Z pole",
        experiment="TOY-GPD",
        inspire_id="I0001",
        keywords=("Z", "dimuon", "mass"),
    )

    def init(self):
        self._muons = IdentifiedFinalState((13, -13), eta_max=2.5,
                                           pt_min=10.0)
        self.book("mass", 60, 60.0, 120.0, label="m(mu+mu-) [GeV]")

    def analyze(self, event: GenEvent):
        pair = _opposite_charge_pair(self._muons.particles(event))
        if pair is None:
            return
        mass = invariant_mass([pair[0].momentum, pair[1].momentum])
        self.histogram("mass").fill(mass, event.weight)


class ZPtAnalysis(Analysis):
    """Transverse momentum of the reconstructed dimuon system."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0002",
        description="Z -> mu mu transverse momentum spectrum",
        experiment="TOY-GPD",
        inspire_id="I0002",
        keywords=("Z", "pt"),
    )

    def init(self):
        self._muons = IdentifiedFinalState((13, -13), eta_max=2.5,
                                           pt_min=10.0)
        self.book("pt", 40, 0.0, 100.0, label="pt(mu+mu-) [GeV]")

    def analyze(self, event: GenEvent):
        pair = _opposite_charge_pair(self._muons.particles(event))
        if pair is None:
            return
        mass = invariant_mass([pair[0].momentum, pair[1].momentum])
        if not 66.0 <= mass <= 116.0:
            return
        system = pair[0].momentum + pair[1].momentum
        self.histogram("pt").fill(system.pt, event.weight)


class ChargedMultiplicityAnalysis(Analysis):
    """Charged-particle multiplicity and pt spectrum (tune-sensitive)."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0003",
        description="Charged multiplicity and single-particle pt spectrum",
        experiment="TOY-GPD",
        inspire_id="I0003",
        keywords=("QCD", "minimum bias", "multiplicity"),
    )

    def init(self):
        self._charged = ChargedFinalState(eta_max=2.5, pt_min=0.2)
        self.book("nch", 50, -0.5, 99.5, label="N(charged)")
        self.book("pt", 50, 0.0, 10.0, label="charged pt [GeV]")

    def analyze(self, event: GenEvent):
        particles = self._charged.particles(event)
        self.histogram("nch").fill(len(particles), event.weight)
        for particle in particles:
            self.histogram("pt").fill(particle.momentum.pt, event.weight)


class DijetAnalysis(Analysis):
    """Leading-jet pt and dijet invariant-mass spectra."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0004",
        description="Inclusive jet pt and dijet mass spectra",
        experiment="TOY-GPD",
        inspire_id="I0004",
        keywords=("QCD", "jets"),
    )

    def init(self):
        self._jets = TruthJets(cone_radius=0.4, jet_pt_min=20.0)
        self.book("jet_pt", 48, 20.0, 500.0, label="leading jet pt [GeV]")
        self.book("dijet_mass", 45, 50.0, 950.0, label="m(jj) [GeV]")

    def analyze(self, event: GenEvent):
        jets = self._jets.jets(event)
        if not jets:
            return
        self.histogram("jet_pt").fill(jets[0].pt, event.weight)
        if len(jets) >= 2:
            mass = invariant_mass(jets[:2])
            self.histogram("dijet_mass").fill(mass, event.weight)


class WTransverseMassAnalysis(Analysis):
    """Muon + missing-momentum transverse mass (the W Jacobian edge)."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0005",
        description="W -> mu nu transverse mass",
        experiment="TOY-GPD",
        inspire_id="I0005",
        keywords=("W", "transverse mass"),
    )

    def init(self):
        self._muons = IdentifiedFinalState((13, -13), eta_max=2.5,
                                           pt_min=20.0)
        self._met = VisibleMomentum(eta_max=5.0)
        self.book("mt", 40, 0.0, 120.0, label="mT(mu, MET) [GeV]")

    def analyze(self, event: GenEvent):
        muons = sorted(self._muons.particles(event),
                       key=lambda p: p.momentum.pt, reverse=True)
        if not muons:
            return
        missing = self._met.missing_pt(event)
        if missing.pt < 15.0:
            return
        mt = transverse_mass(muons[0].momentum, missing)
        self.histogram("mt").fill(mt, event.weight)


class DimuonSpectrumAnalysis(Analysis):
    """Full opposite-sign dimuon mass spectrum (J/psi to high mass)."""

    metadata = AnalysisMetadata(
        name="TOY_2013_I0006",
        description="Opposite-sign dimuon invariant-mass spectrum",
        experiment="TOY-FWD",
        inspire_id="I0006",
        keywords=("dimuon", "spectrum", "quarkonium"),
    )

    def init(self):
        self._muons = IdentifiedFinalState((13, -13), eta_max=4.8,
                                           pt_min=1.0)
        self.book("mass", 100, 2.0, 202.0, label="m(mu+mu-) [GeV]")

    def analyze(self, event: GenEvent):
        pair = _opposite_charge_pair(self._muons.particles(event))
        if pair is None:
            return
        mass = invariant_mass([pair[0].momentum, pair[1].momentum])
        self.histogram("mass").fill(mass, event.weight)


class HighMassDimuonAnalysis(Analysis):
    """High-mass opposite-sign dimuon spectrum (the search region).

    The truth-level counterpart of the preserved RECAST search; the
    RIVET bridge maps the search's signal region onto this histogram.
    """

    metadata = AnalysisMetadata(
        name="TOY_2013_I0007",
        description="High-mass opposite-sign dimuon spectrum",
        experiment="TOY-GPD",
        inspire_id="I0007",
        keywords=("dimuon", "search", "high mass"),
    )

    def init(self):
        self._muons = IdentifiedFinalState((13, -13), eta_max=2.5,
                                           pt_min=30.0)
        self.book("mass", 56, 200.0, 3000.0, label="m(mu+mu-) [GeV]")

    def analyze(self, event: GenEvent):
        pair = _opposite_charge_pair(self._muons.particles(event))
        if pair is None:
            return
        mass = invariant_mass([pair[0].momentum, pair[1].momentum])
        self.histogram("mass").fill(mass, event.weight)


STANDARD_ANALYSES = (
    ZMuMuMassAnalysis,
    ZPtAnalysis,
    ChargedMultiplicityAnalysis,
    DijetAnalysis,
    WTransverseMassAnalysis,
    DimuonSpectrumAnalysis,
    HighMassDimuonAnalysis,
)


def register_standard_analyses(repository: AnalysisRepository) -> None:
    """Register the six hand-written analyses."""
    for analysis_class in STANDARD_ANALYSES:
        repository.register(analysis_class)


def standard_repository() -> AnalysisRepository:
    """A fresh repository holding the standard catalogue."""
    repository = AnalysisRepository("standard")
    register_standard_analyses(repository)
    return repository


@dataclass(frozen=True)
class SpectrumConfig:
    """Configuration of one generated spectrum analysis."""

    name: str
    pdg_ids: tuple[int, ...]
    eta_max: float
    pt_min: float
    nbins: int
    low: float
    high: float


class ParameterizedSpectrumAnalysis(Analysis):
    """A single-particle pt spectrum under configurable cuts.

    This is how the catalogue scales to RIVET-like sizes: hundreds of
    measurements that share one plugin class but differ in fiducial cuts
    and binning — each preserved as data (a config), not as new code.
    """

    def __init__(self, config: SpectrumConfig) -> None:
        # lint: ignore[DAS009] -- generated spectrum analyses are
        # parameter configs, not publications; there is no paper to link.
        self.metadata = AnalysisMetadata(
            name=config.name,
            description=(
                f"pt spectrum of pdg {list(config.pdg_ids)} with "
                f"|eta| < {config.eta_max}, pt > {config.pt_min}"
            ),
            experiment="TOY-GEN",
            keywords=("spectrum", "generated"),
        )
        self.config = config
        super().__init__()

    def init(self):
        self._selection = IdentifiedFinalState(
            self.config.pdg_ids, eta_max=self.config.eta_max,
            pt_min=self.config.pt_min,
        )
        self.book("pt", self.config.nbins, self.config.low,
                  self.config.high, label="pt [GeV]")

    def analyze(self, event: GenEvent):
        for particle in self._selection.particles(event):
            self.histogram("pt").fill(particle.momentum.pt, event.weight)


_SPECIES_CHOICES = (
    (211, -211), (321, -321), (13, -13), (11, -11), (22,), (111,),
)


def register_generated_catalog(repository: AnalysisRepository,
                               n_analyses: int) -> list[str]:
    """Mass-register parameterised spectrum analyses; returns their names."""
    if n_analyses <= 0:
        raise RivetError(f"n_analyses must be positive, got {n_analyses}")
    names = []
    for index in range(n_analyses):
        species = _SPECIES_CHOICES[index % len(_SPECIES_CHOICES)]
        eta_max = 1.0 + 0.5 * ((index // len(_SPECIES_CHOICES)) % 6)
        pt_min = 0.2 + 0.2 * ((index // 36) % 5)
        config = SpectrumConfig(
            name=f"TOY_GEN_SPEC_{index:04d}",
            pdg_ids=species,
            eta_max=eta_max,
            pt_min=pt_min,
            nbins=40,
            low=0.0,
            high=20.0,
        )
        repository.register(
            lambda config=config: ParameterizedSpectrumAnalysis(config)
        )
        names.append(config.name)
    return names
