"""HepData records and reactions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HepDataError
from repro.hepdata.tables import DataTable


@dataclass(frozen=True)
class Reaction:
    """A reactions-database entry: initial state -> final state.

    The "Reactions Database" is HepData's main repository; observables
    attach to reactions like ``P P --> Z0 X``.
    """

    initial_state: str
    final_state: str
    sqrt_s_gev: float

    def __post_init__(self) -> None:
        if self.sqrt_s_gev <= 0.0:
            raise HepDataError("sqrt_s must be positive")

    def label(self) -> str:
        """The conventional reaction string."""
        return f"{self.initial_state} --> {self.final_state}"

    def to_dict(self) -> dict:
        """Serialise for archive payloads."""
        return {
            "initial_state": self.initial_state,
            "final_state": self.final_state,
            "sqrt_s_gev": self.sqrt_s_gev,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Reaction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            initial_state=str(record["initial_state"]),
            final_state=str(record["final_state"]),
            sqrt_s_gev=float(record["sqrt_s_gev"]),
        )


@dataclass
class HepDataRecord:
    """One archived publication's numerical content.

    ``tables`` hold the conventional cross-section-style results;
    ``auxiliary`` holds the "many formats" payloads — efficiency grids,
    cut-flow tables, likelihood inputs — that the ATLAS search example
    demonstrated the archive can absorb. Each auxiliary entry is a dict
    carrying its own ``format`` tag.
    """

    record_id: str
    title: str
    experiment: str
    inspire_id: str = ""
    abstract: str = ""
    keywords: tuple[str, ...] = ()
    reactions: list[Reaction] = field(default_factory=list)
    tables: list[DataTable] = field(default_factory=list)
    auxiliary: dict[str, dict] = field(default_factory=dict)
    version: int = 1

    def add_table(self, table: DataTable) -> None:
        """Attach a data table; names must be unique within the record."""
        if any(existing.name == table.name for existing in self.tables):
            raise HepDataError(
                f"record {self.record_id!r} already has table "
                f"{table.name!r}"
            )
        self.tables.append(table)

    def table(self, name: str) -> DataTable:
        """Look up a table by name."""
        for table in self.tables:
            if table.name == name:
                return table
        raise HepDataError(
            f"record {self.record_id!r} has no table {name!r}; "
            f"available: {[t.name for t in self.tables]}"
        )

    def add_auxiliary(self, key: str, payload: dict) -> None:
        """Attach an arbitrary-format auxiliary payload.

        The payload must declare its own ``format`` (or ``type``) tag so
        future readers can interpret it.
        """
        if "format" not in payload and "type" not in payload:
            raise HepDataError(
                f"auxiliary payload {key!r} must declare a 'format' or "
                f"'type' tag"
            )
        if key in self.auxiliary:
            raise HepDataError(
                f"record {self.record_id!r} already has auxiliary {key!r}"
            )
        self.auxiliary[key] = dict(payload)

    def payload_size_bytes(self) -> int:
        """Approximate serialised size (the 'large payload' metric)."""
        from repro.core.canonical import canonical_text

        return len(canonical_text(self.to_dict(),
                                  indent=None).encode("utf-8"))

    def to_dict(self) -> dict:
        """Serialise for the archive."""
        return {
            "record_id": self.record_id,
            "title": self.title,
            "experiment": self.experiment,
            "inspire_id": self.inspire_id,
            "abstract": self.abstract,
            "keywords": list(self.keywords),
            "reactions": [r.to_dict() for r in self.reactions],
            "tables": [t.to_dict() for t in self.tables],
            "auxiliary": {k: dict(v) for k, v in self.auxiliary.items()},
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "HepDataRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            record_id=str(record["record_id"]),
            title=str(record["title"]),
            experiment=str(record["experiment"]),
            inspire_id=str(record.get("inspire_id", "")),
            abstract=str(record.get("abstract", "")),
            keywords=tuple(str(k) for k in record.get("keywords", [])),
            reactions=[Reaction.from_dict(r)
                       for r in record.get("reactions", [])],
            tables=[DataTable.from_dict(t)
                    for t in record.get("tables", [])],
            auxiliary={k: dict(v)
                       for k, v in record.get("auxiliary", {}).items()},
            version=int(record.get("version", 1)),
        )
