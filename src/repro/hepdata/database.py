"""The archive itself: versioned record storage with persistence."""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import HepDataError, PersistenceError, RecordNotFoundError
from repro.hepdata.records import HepDataRecord

_FORMAT_TAG = "repro-hepdata-archive"


class HepDataArchive:
    """In-memory archive of :class:`HepDataRecord` with version history."""

    def __init__(self, name: str = "hepdata") -> None:
        self.name = name
        #: record_id -> list of versions, oldest first.
        self._records: dict[str, list[HepDataRecord]] = {}

    # ------------------------------------------------------------------

    def submit(self, record: HepDataRecord) -> int:
        """Add a new record or a new version of an existing one.

        Returns the stored version number. A resubmission must carry the
        next consecutive version.
        """
        versions = self._records.setdefault(record.record_id, [])
        expected_version = len(versions) + 1
        if record.version != expected_version:
            raise HepDataError(
                f"record {record.record_id!r}: expected version "
                f"{expected_version}, got {record.version}"
            )
        versions.append(record)
        return record.version

    def get(self, record_id: str,
            version: int | None = None) -> HepDataRecord:
        """Fetch a record (latest version by default)."""
        try:
            versions = self._records[record_id]
        except KeyError:
            raise RecordNotFoundError(
                f"no record {record_id!r} in archive {self.name!r}"
            ) from None
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise RecordNotFoundError(
                f"record {record_id!r} has no version {version}"
            )
        return versions[version - 1]

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def record_ids(self) -> list[str]:
        """All archived record ids, sorted."""
        return sorted(self._records)

    def all_latest(self) -> list[HepDataRecord]:
        """The latest version of every record."""
        return [versions[-1]
                for _, versions in sorted(self._records.items())]

    def n_versions(self, record_id: str) -> int:
        """How many versions a record has."""
        if record_id not in self._records:
            raise RecordNotFoundError(f"no record {record_id!r}")
        return len(self._records[record_id])

    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the whole archive (all versions) to one JSON file."""
        path = Path(path)
        payload = {
            "format": _FORMAT_TAG,
            "name": self.name,
            "records": {
                record_id: [version.to_dict() for version in versions]
                for record_id, versions in self._records.items()
            },
        }
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        except OSError as exc:
            raise PersistenceError(f"cannot write archive {path}: {exc}")

    @classmethod
    def load(cls, path: str | Path) -> "HepDataArchive":
        """Read an archive written by :meth:`save`."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise PersistenceError(f"cannot read archive {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"archive {path} is not valid JSON: "
                                   f"{exc}")
        if payload.get("format") != _FORMAT_TAG:
            raise PersistenceError(
                f"not a hepdata archive: format={payload.get('format')!r}"
            )
        archive = cls(name=str(payload.get("name", "hepdata")))
        for record_id, versions in payload.get("records", {}).items():
            archive._records[record_id] = [
                HepDataRecord.from_dict(version) for version in versions
            ]
        return archive
