"""Publication-style data tables."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HepDataError
from repro.stats.histogram import Histogram1D


@dataclass
class DependentVariable:
    """One measured column of a table: values with symmetric errors."""

    name: str
    units: str
    values: list[float]
    errors: list[float]
    qualifiers: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.values) != len(self.errors):
            raise HepDataError(
                f"column {self.name!r}: {len(self.values)} values but "
                f"{len(self.errors)} errors"
            )

    def to_dict(self) -> dict:
        """Serialise for archive payloads."""
        return {
            "name": self.name,
            "units": self.units,
            "values": list(self.values),
            "errors": list(self.errors),
            "qualifiers": dict(self.qualifiers),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DependentVariable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(record["name"]),
            units=str(record.get("units", "")),
            values=[float(v) for v in record["values"]],
            errors=[float(e) for e in record["errors"]],
            qualifiers=dict(record.get("qualifiers", {})),
        )


@dataclass
class DataTable:
    """An independent variable binned against dependent measurements."""

    name: str
    independent_name: str
    independent_units: str
    bin_edges: list[float]
    dependents: list[DependentVariable] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.bin_edges) < 2:
            raise HepDataError(
                f"table {self.name!r} needs at least one bin"
            )
        for dependent in self.dependents:
            self._check_dependent(dependent)

    def _check_dependent(self, dependent: DependentVariable) -> None:
        expected = len(self.bin_edges) - 1
        if len(dependent.values) != expected:
            raise HepDataError(
                f"table {self.name!r}: column {dependent.name!r} has "
                f"{len(dependent.values)} values for {expected} bins"
            )

    def add_dependent(self, dependent: DependentVariable) -> None:
        """Attach a measured column."""
        self._check_dependent(dependent)
        self.dependents.append(dependent)

    @property
    def n_bins(self) -> int:
        """Number of bins of the independent variable."""
        return len(self.bin_edges) - 1

    @classmethod
    def from_histogram(cls, table_name: str, histogram: Histogram1D,
                       independent_name: str, independent_units: str,
                       dependent_name: str, dependent_units: str,
                       description: str = "") -> "DataTable":
        """Build a table from a filled histogram (values + errors)."""
        table = cls(
            name=table_name,
            independent_name=independent_name,
            independent_units=independent_units,
            bin_edges=[float(e) for e in histogram.edges],
            description=description,
        )
        table.add_dependent(DependentVariable(
            name=dependent_name,
            units=dependent_units,
            values=[float(v) for v in histogram.values()],
            errors=[float(e) for e in histogram.errors()],
        ))
        return table

    def to_histogram(self, column: int = 0) -> Histogram1D:
        """Rebuild a histogram from one measured column."""
        if not 0 <= column < len(self.dependents):
            raise HepDataError(
                f"table {self.name!r} has no column {column}"
            )
        dependent = self.dependents[column]
        histogram = Histogram1D(f"{self.name}/{dependent.name}",
                                edges=self.bin_edges)
        histogram._sumw = np.asarray(dependent.values, dtype=float)
        histogram._sumw2 = np.asarray(dependent.errors, dtype=float) ** 2
        histogram.n_entries = self.n_bins
        return histogram

    def to_dict(self) -> dict:
        """Serialise for archive payloads."""
        return {
            "name": self.name,
            "description": self.description,
            "independent": {
                "name": self.independent_name,
                "units": self.independent_units,
                "bin_edges": list(self.bin_edges),
            },
            "dependents": [d.to_dict() for d in self.dependents],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "DataTable":
        """Inverse of :meth:`to_dict`."""
        independent = record["independent"]
        return cls(
            name=str(record["name"]),
            independent_name=str(independent["name"]),
            independent_units=str(independent.get("units", "")),
            bin_edges=[float(e) for e in independent["bin_edges"]],
            dependents=[DependentVariable.from_dict(d)
                        for d in record.get("dependents", [])],
            description=str(record.get("description", "")),
        )
