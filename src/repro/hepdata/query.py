"""Search helpers over a HepData archive."""

from __future__ import annotations

from repro.hepdata.database import HepDataArchive
from repro.hepdata.records import HepDataRecord


def find_by_keyword(archive: HepDataArchive,
                    keyword: str) -> list[HepDataRecord]:
    """Latest-version records carrying a keyword (case-insensitive)."""
    wanted = keyword.lower()
    return [record for record in archive.all_latest()
            if any(wanted == k.lower() for k in record.keywords)]


def find_by_reaction(archive: HepDataArchive, final_state: str,
                     sqrt_s_gev: float | None = None) -> list[HepDataRecord]:
    """Records measuring a given final state (optionally at one energy)."""
    matches = []
    for record in archive.all_latest():
        for reaction in record.reactions:
            if reaction.final_state != final_state:
                continue
            if (sqrt_s_gev is not None
                    and abs(reaction.sqrt_s_gev - sqrt_s_gev) > 1e-6):
                continue
            matches.append(record)
            break
    return matches


def find_by_observable(archive: HepDataArchive,
                       observable_name: str) -> list[HepDataRecord]:
    """Records with a table whose dependent column matches a name."""
    matches = []
    for record in archive.all_latest():
        for table in record.tables:
            if any(dep.name == observable_name for dep in table.dependents):
                matches.append(record)
                break
    return matches


def find_with_auxiliary_format(archive: HepDataArchive,
                               format_tag: str) -> list[HepDataRecord]:
    """Records carrying an auxiliary payload of a given format.

    This is how a phenomenologist finds the searches that uploaded enough
    information (cut flows, efficiency grids) to be replicated.
    """
    matches = []
    for record in archive.all_latest():
        if any(format_tag in (payload.get("format"),
                              payload.get("type"))
               for payload in record.auxiliary.values()):
            matches.append(record)
    return matches
