"""A HepData-analogue reactions database.

Models the Durham HepData archive of Section 2.3: a repository of
publication-level numerical results — cross-section tables, efficiency
grids, and (stretching its original intent, as the paper observes of the
ATLAS search example) arbitrary auxiliary payloads needed to replicate a
search. Records link back to an INSPIRE-style literature catalogue.
"""

from repro.hepdata.tables import DataTable, DependentVariable
from repro.hepdata.records import HepDataRecord, Reaction
from repro.hepdata.database import HepDataArchive
from repro.hepdata.query import (
    find_by_keyword,
    find_by_observable,
    find_by_reaction,
)
from repro.hepdata.inspire import InspireCatalog, InspireEntry

__all__ = [
    "DataTable",
    "DependentVariable",
    "HepDataRecord",
    "Reaction",
    "HepDataArchive",
    "find_by_keyword",
    "find_by_observable",
    "find_by_reaction",
    "InspireCatalog",
    "InspireEntry",
]
