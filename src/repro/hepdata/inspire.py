"""A minimal INSPIRE-style literature catalogue.

"INSPIRE entries often contain links to entries and additional
information in the HepData archive." This module provides that linkage:
publication entries that point at archive records, so a literature search
resolves to reusable numerical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HepDataError
from repro.hepdata.database import HepDataArchive
from repro.hepdata.records import HepDataRecord


@dataclass
class InspireEntry:
    """One publication in the literature catalogue."""

    inspire_id: str
    title: str
    authors: tuple[str, ...]
    year: int
    journal: str = ""
    hepdata_record_ids: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Serialise for catalogue exports."""
        return {
            "inspire_id": self.inspire_id,
            "title": self.title,
            "authors": list(self.authors),
            "year": self.year,
            "journal": self.journal,
            "hepdata_record_ids": list(self.hepdata_record_ids),
        }


class InspireCatalog:
    """Registry of publications with HepData cross-links."""

    def __init__(self) -> None:
        self._entries: dict[str, InspireEntry] = {}

    def register(self, entry: InspireEntry) -> None:
        """Add a publication entry."""
        if entry.inspire_id in self._entries:
            raise HepDataError(
                f"INSPIRE entry {entry.inspire_id!r} already registered"
            )
        self._entries[entry.inspire_id] = entry

    def get(self, inspire_id: str) -> InspireEntry:
        """Look up a publication."""
        try:
            return self._entries[inspire_id]
        except KeyError:
            raise HepDataError(
                f"unknown INSPIRE entry {inspire_id!r}"
            ) from None

    def __contains__(self, inspire_id: str) -> bool:
        return inspire_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def link_record(self, inspire_id: str, record_id: str) -> None:
        """Attach a HepData record id to a publication."""
        entry = self.get(inspire_id)
        if record_id not in entry.hepdata_record_ids:
            entry.hepdata_record_ids.append(record_id)

    def resolve_data(self, inspire_id: str,
                     archive: HepDataArchive) -> list[HepDataRecord]:
        """Follow a publication's links into the archive."""
        entry = self.get(inspire_id)
        return [archive.get(record_id)
                for record_id in entry.hepdata_record_ids
                if record_id in archive]

    def publications_with_data(self) -> list[InspireEntry]:
        """Entries that link to at least one archive record."""
        return [entry for _, entry in sorted(self._entries.items())
                if entry.hepdata_record_ids]
