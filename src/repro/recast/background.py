"""Background estimation: where a preserved search's numbers come from.

A :class:`~repro.recast.catalog.PreservedSearch` carries an expected
background and its uncertainty. Those numbers are themselves products of
the full chain — Standard Model processes pushed through the same
simulation, reconstruction, and selection as the signal. This module
performs that estimate, so a catalogue entry can be *derived* end-to-end
instead of asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.conditions.calibration import default_conditions
from repro.conditions.store import ConditionsStore
from repro.datamodel.event import make_aod
from repro.datamodel.skimslim import SkimSpec
from repro.detector.digitization import Digitizer
from repro.detector.geometry import DetectorGeometry
from repro.detector.simulation import DetectorSimulation
from repro.errors import BackendError
from repro.generation.generator import GeneratorConfig, ToyGenerator
from repro.generation.processes import Process
from repro.reconstruction.reconstructor import (
    GlobalTagView,
    Reconstructor,
)


@dataclass(frozen=True)
class BackgroundEstimate:
    """The simulated expectation for one process under one selection."""

    process_name: str
    cross_section_pb: float
    n_generated: int
    n_selected: int
    luminosity_ipb: float

    @property
    def efficiency(self) -> float:
        """Selection efficiency of the background process."""
        return self.n_selected / self.n_generated

    @property
    def expected_events(self) -> float:
        """Expected background count at the given luminosity."""
        return (self.cross_section_pb * self.efficiency
                * self.luminosity_ipb)

    @property
    def statistical_uncertainty(self) -> float:
        """MC-statistics uncertainty on the expectation."""
        if self.n_selected == 0:
            # One-event upper-bound convention for empty selections.
            return (self.cross_section_pb * self.luminosity_ipb
                    / self.n_generated)
        return self.expected_events / math.sqrt(self.n_selected)


def estimate_background(
    processes: list[Process],
    selection: SkimSpec,
    luminosity_ipb: float,
    geometry: DetectorGeometry,
    conditions: ConditionsStore | None = None,
    global_tag: str = "GT-FINAL",
    n_events_per_process: int = 300,
    run_number: int = 50,
    seed: int = 7000,
) -> list[BackgroundEstimate]:
    """Run SM processes through the full chain under a selection.

    Returns one :class:`BackgroundEstimate` per process; sum their
    ``expected_events`` (and uncertainties in quadrature) to fill a
    :class:`~repro.recast.catalog.PreservedSearch`.
    """
    if not processes:
        raise BackendError("background estimation needs processes")
    if luminosity_ipb <= 0.0:
        raise BackendError("luminosity must be positive")
    if conditions is None:
        conditions = default_conditions()
    estimates = []
    for index, process in enumerate(processes):
        generator = ToyGenerator(GeneratorConfig(
            processes=[process], seed=seed + 10 * index,
        ))
        simulation = DetectorSimulation(geometry,
                                        seed=seed + 10 * index + 1)
        digitizer = Digitizer(geometry, run_number=run_number,
                              seed=seed + 10 * index + 2)
        reconstructor = Reconstructor(
            geometry, GlobalTagView(conditions, global_tag),
        )
        n_selected = 0
        for event in generator.stream(n_events_per_process):
            raw = digitizer.digitize(simulation.simulate(event))
            aod = make_aod(reconstructor.reconstruct(raw))
            if selection.cut.passes(aod):
                n_selected += 1
        estimates.append(BackgroundEstimate(
            process_name=process.name,
            cross_section_pb=process.cross_section_pb,
            n_generated=n_events_per_process,
            n_selected=n_selected,
            luminosity_ipb=luminosity_ipb,
        ))
    return estimates


def combine_estimates(
    estimates: list[BackgroundEstimate],
) -> tuple[float, float]:
    """Total expected background and its uncertainty (quadrature sum)."""
    if not estimates:
        raise BackendError("nothing to combine")
    total = sum(estimate.expected_events for estimate in estimates)
    uncertainty = math.sqrt(sum(
        estimate.statistical_uncertainty**2 for estimate in estimates
    ))
    return total, uncertainty
