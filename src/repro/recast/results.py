"""Re-analysis result payloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecastError
from repro.stats.limits import LimitResult


@dataclass(frozen=True)
class RecastResult:
    """The outcome of re-running a preserved search on a new model.

    ``signal_efficiency`` is the fraction of generated model events that
    pass the preserved selection (including detector effects when the
    back end runs the full chain); ``upper_limit_pb`` the 95% CL CLs limit
    on the model's cross-section; ``excluded`` whether the requested model
    cross-section is excluded.
    """

    analysis_id: str
    model_name: str
    n_generated: int
    n_selected: int
    signal_efficiency: float
    efficiency_error: float
    upper_limit_pb: float
    model_cross_section_pb: float
    excluded: bool
    backend: str
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.signal_efficiency <= 1.0:
            raise RecastError(
                f"signal efficiency out of range: {self.signal_efficiency}"
            )
        if self.n_selected > self.n_generated:
            raise RecastError("n_selected exceeds n_generated")

    def summary(self) -> str:
        """One-line human-readable result."""
        verdict = "EXCLUDED" if self.excluded else "ALLOWED"
        return (
            f"{self.model_name} vs {self.analysis_id}: eff="
            f"{self.signal_efficiency:.3f}+-{self.efficiency_error:.3f}, "
            f"sigma < {self.upper_limit_pb:.4g} pb at 95% CL -> {verdict} "
            f"(model sigma = {self.model_cross_section_pb:.4g} pb)"
        )

    def to_dict(self) -> dict:
        """Serialise for the approved public view."""
        return {
            "analysis_id": self.analysis_id,
            "model_name": self.model_name,
            "n_generated": self.n_generated,
            "n_selected": self.n_selected,
            "signal_efficiency": self.signal_efficiency,
            "efficiency_error": self.efficiency_error,
            "upper_limit_pb": self.upper_limit_pb,
            "model_cross_section_pb": self.model_cross_section_pb,
            "excluded": self.excluded,
            "backend": self.backend,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RecastResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            analysis_id=str(record["analysis_id"]),
            model_name=str(record["model_name"]),
            n_generated=int(record["n_generated"]),
            n_selected=int(record["n_selected"]),
            signal_efficiency=float(record["signal_efficiency"]),
            efficiency_error=float(record["efficiency_error"]),
            upper_limit_pb=float(record["upper_limit_pb"]),
            model_cross_section_pb=float(record["model_cross_section_pb"]),
            excluded=bool(record["excluded"]),
            backend=str(record["backend"]),
            extra=dict(record.get("extra", {})),
        )


def build_limit_result_extra(limit: LimitResult) -> dict:
    """Flatten a :class:`LimitResult` into the result's extra block."""
    return {
        "confidence_level": limit.confidence_level,
        "n_observed": limit.n_observed,
        "background": limit.background,
        "n_toys": limit.n_toys,
    }
