"""RECAST back ends: the experiment-side processing installations.

A back end owns the full experiment software stack. The
:class:`FullChainBackend` generates the requested model, pushes it through
the detector simulation, digitisation, and reconstruction of its
experiment, applies the preserved selection, and sets the CLs limit —
"essentially, the full code base and executables from the experiment are
encapsulated in the RECAST back end processing".
"""

from __future__ import annotations

import abc
import math

from repro.conditions.calibration import default_conditions
from repro.conditions.store import ConditionsStore
from repro.datamodel.event import make_aod
from repro.detector.digitization import Digitizer
from repro.detector.geometry import (
    DetectorGeometry,
    forward_spectrometer,
    generic_lhc_detector,
)
from repro.detector.simulation import DetectorSimulation
from repro.errors import BackendError
from repro.generation.generator import GeneratorConfig, ToyGenerator
from repro.obs.trace import active
from repro.generation.processes import (
    DrellYanZ,
    HiggsToFourLeptons,
    Process,
    WProduction,
    ZPrimeResonance,
)
from repro.recast.catalog import PreservedSearch
from repro.recast.requests import ModelSpec
from repro.recast.results import RecastResult, build_limit_result_extra
from repro.reconstruction.reconstructor import GlobalTagView, Reconstructor
from repro.stats.efficiency import binomial_interval
from repro.stats.likelihood import CountingExperiment
from repro.stats.limits import cls_upper_limit


def build_process(model: ModelSpec) -> Process:
    """Instantiate the generator process for a requester's model spec."""
    parameters = model.parameters
    if model.process == "zprime":
        return ZPrimeResonance(
            mass=float(parameters.get("mass", 1500.0)),
            width=(float(parameters["width"])
                   if "width" in parameters else None),
            flavour=str(parameters.get("flavour", "mu")),
            cross_section_pb=float(
                parameters.get("cross_section_pb", 0.05)
            ),
        )
    if model.process == "drell_yan_z":
        return DrellYanZ(
            flavour=str(parameters.get("flavour", "mu")),
            cross_section_pb=float(
                parameters.get("cross_section_pb", 1100.0)
            ),
        )
    if model.process == "w_production":
        return WProduction(
            flavour=str(parameters.get("flavour", "mu")),
            charge=int(parameters.get("charge", 1)),
            cross_section_pb=float(
                parameters.get("cross_section_pb", 11000.0)
            ),
        )
    if model.process == "higgs_4l":
        return HiggsToFourLeptons()
    raise BackendError(f"no generator for process {model.process!r}")


class RecastBackend(abc.ABC):
    """Interface every back-end processor implements."""

    #: Identifier reported in results.
    name: str = "backend"

    @abc.abstractmethod
    def process(self, search: PreservedSearch,
                model: ModelSpec) -> RecastResult:
        """Re-run the preserved search on the model; return the result."""

    def instrument(self, tracer=None, metrics=None) -> "RecastBackend":
        """Attach a tracer/metrics registry for request handling.

        Instrumentation is driver-local: tracers hold locks and cannot
        cross a process boundary, so :meth:`__getstate__` strips these
        references before a scan pickles the backend to pool workers
        (which then run uninstrumented). Returns ``self`` for chaining.
        """
        self._obs_tracer = tracer
        self._obs_metrics = metrics
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_obs_tracer", None)
        state.pop("_obs_metrics", None)
        return state


_GEOMETRIES = {
    "GPD": generic_lhc_detector,
    "FWD": forward_spectrometer,
}


class FullChainBackend(RecastBackend):
    """The full simulation + reconstruction + selection chain."""

    name = "full-chain"

    def __init__(
        self,
        experiment: str,
        conditions: ConditionsStore | None = None,
        n_events: int = 400,
        run_number: int = 50,
        seed: int = 2718,
        n_limit_toys: int = 3000,
        columnar: bool = False,
    ) -> None:
        if n_events <= 0:
            raise BackendError("n_events must be positive")
        self.experiment = experiment
        self.conditions = (conditions if conditions is not None
                           else default_conditions())
        self.n_events = n_events
        self.run_number = run_number
        self.seed = seed
        self.n_limit_toys = n_limit_toys
        self.columnar = columnar

    def _geometry(self, search: PreservedSearch) -> DetectorGeometry:
        try:
            return _GEOMETRIES[search.geometry_name]()
        except KeyError:
            raise BackendError(
                f"back end has no geometry {search.geometry_name!r}"
            ) from None

    def process(self, search: PreservedSearch,
                model: ModelSpec) -> RecastResult:
        """Generate, simulate, reconstruct, select, and set the limit.

        Instrumented via :meth:`RecastBackend.instrument`: each request
        runs under a ``recast.request`` span carrying the search id,
        model, and selection outcome, with request/event counters.
        """
        obs = active(getattr(self, "_obs_tracer", None))
        metrics = getattr(self, "_obs_metrics", None)
        with obs.span("recast.request", analysis=search.analysis_id,
                      model=model.name, process=model.process,
                      n_events=self.n_events,
                      backend=self.name) as span:
            result = self._process_request(search, model)
            span.set("n_selected", result.n_selected)
            span.set("excluded", result.excluded)
        if metrics is not None:
            metrics.counter("recast.requests",
                            backend=self.name).inc()
            metrics.counter("recast.events_generated").inc(
                result.n_generated)
        return result

    def _process_request(self, search: PreservedSearch,
                         model: ModelSpec) -> RecastResult:
        process = build_process(model)
        generator = ToyGenerator(GeneratorConfig(
            processes=[process], seed=self.seed
        ))
        geometry = self._geometry(search)
        simulation = DetectorSimulation(geometry, seed=self.seed + 1)
        digitizer = Digitizer(geometry, run_number=self.run_number,
                              seed=self.seed + 2)
        reconstructor = Reconstructor(
            geometry, GlobalTagView(self.conditions, search.global_tag)
        )
        if getattr(self, "columnar", False):
            # Columnar engine: same per-component streams in the same
            # per-event order, bit-identical reconstruction, and the
            # selection evaluated as one vectorised event mask — so
            # n_selected (and every limit derived from it) matches the
            # per-event loop exactly.
            from repro.columnar import EventBatch, cut_mask

            events = list(generator.stream(self.n_events))
            raws = digitizer.digitize_many(
                simulation.simulate_many(events))
            recos = reconstructor.reconstruct_batch(raws)
            batch = EventBatch.from_events(
                [make_aod(reco) for reco in recos])
            n_selected = int(
                cut_mask(search.selection.cut, batch).sum())
        else:
            n_selected = 0
            for event in generator.stream(self.n_events):
                sim_event = simulation.simulate(event)
                raw = digitizer.digitize(sim_event)
                reco = reconstructor.reconstruct(raw)
                aod = make_aod(reco)
                if search.selection.cut.passes(aod):
                    n_selected += 1

        efficiency = n_selected / self.n_events
        interval = binomial_interval(n_selected, self.n_events)
        efficiency_error = 0.5 * (interval[1] - interval[0])

        if efficiency <= 0.0:
            # No sensitivity: the limit is unbounded.
            return RecastResult(
                analysis_id=search.analysis_id,
                model_name=model.name,
                n_generated=self.n_events,
                n_selected=0,
                signal_efficiency=0.0,
                efficiency_error=efficiency_error,
                upper_limit_pb=math.inf,
                model_cross_section_pb=process.cross_section_pb,
                excluded=False,
                backend=self.name,
                extra={"note": "zero selection efficiency"},
            )

        experiment = CountingExperiment(
            n_observed=search.n_observed,
            background=search.background,
            background_uncertainty=search.background_uncertainty,
            signal_efficiency=efficiency,
            luminosity=search.luminosity_ipb,
        )
        limit = cls_upper_limit(experiment, n_toys=self.n_limit_toys,
                                seed=self.seed + 3)
        return RecastResult(
            analysis_id=search.analysis_id,
            model_name=model.name,
            n_generated=self.n_events,
            n_selected=n_selected,
            signal_efficiency=efficiency,
            efficiency_error=efficiency_error,
            upper_limit_pb=limit.upper_limit,
            model_cross_section_pb=process.cross_section_pb,
            excluded=limit.excludes_cross_section(
                process.cross_section_pb
            ),
            backend=self.name,
            extra=build_limit_result_extra(limit),
        )
