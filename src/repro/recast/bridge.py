"""The RIVET <-> RECAST bridge — the DASPOS deliverable.

"It should be relatively straightforward to create a 'back end' for
RECAST such that any analysis implemented in RIVET could be subject to
the RECAST framework. This could offer one avenue towards making the
advanced tools of RECAST available to RIVET analyses."

:class:`RivetBridgeBackend` is that back end: it runs a RIVET analysis at
truth level over the requested model, defines the signal efficiency from
a declared signal-region window of one of the analysis's histograms, and
then applies the RECAST-side statistical machinery (CLs limits) that
plain RIVET lacks. The trade-off is faithful to the paper: the bridge
gains limit-setting but works on unfolded truth only — no detector
simulation is involved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import BackendError
from repro.generation.generator import GeneratorConfig, ToyGenerator
from repro.recast.backend import RecastBackend, build_process
from repro.recast.catalog import PreservedSearch
from repro.recast.requests import ModelSpec
from repro.recast.results import RecastResult, build_limit_result_extra
from repro.rivet.repository import AnalysisRepository
from repro.stats.efficiency import binomial_interval
from repro.stats.likelihood import CountingExperiment
from repro.stats.limits import cls_upper_limit


@dataclass(frozen=True)
class RivetSignalRegion:
    """Maps a preserved search onto a RIVET analysis histogram window."""

    analysis_name: str
    histogram_key: str
    window_low: float
    window_high: float

    def __post_init__(self) -> None:
        if self.window_high <= self.window_low:
            raise BackendError(
                f"empty signal window [{self.window_low}, "
                f"{self.window_high})"
            )


class RivetBridgeBackend(RecastBackend):
    """Runs RIVET analyses as RECAST processing payloads."""

    name = "rivet-bridge"

    def __init__(
        self,
        repository: AnalysisRepository,
        signal_regions: dict[str, RivetSignalRegion],
        n_events: int = 2000,
        seed: int = 31415,
        n_limit_toys: int = 3000,
    ) -> None:
        if n_events <= 0:
            raise BackendError("n_events must be positive")
        self.repository = repository
        self.signal_regions = dict(signal_regions)
        self.n_events = n_events
        self.seed = seed
        self.n_limit_toys = n_limit_toys

    def _region_for(self, search: PreservedSearch) -> RivetSignalRegion:
        try:
            return self.signal_regions[search.analysis_id]
        except KeyError:
            raise BackendError(
                f"bridge has no signal-region mapping for "
                f"{search.analysis_id!r}"
            ) from None

    def process(self, search: PreservedSearch,
                model: ModelSpec) -> RecastResult:
        """Generate truth events, run the RIVET analysis, set the limit."""
        region = self._region_for(search)
        analysis = self.repository.create(region.analysis_name)
        process = build_process(model)
        generator = ToyGenerator(GeneratorConfig(
            processes=[process], seed=self.seed
        ))
        analysis._run_init()
        for event in generator.stream(self.n_events):
            analysis._run_event(event)
        # Count signal-region entries from the *unnormalised* histogram.
        histogram = analysis.histogram(region.histogram_key)
        centers = histogram.bin_centers()
        values = histogram.values()
        in_window = (centers >= region.window_low) & (
            centers < region.window_high
        )
        n_selected = int(round(float(values[in_window].sum())))
        n_selected = min(n_selected, self.n_events)

        efficiency = n_selected / self.n_events
        interval = binomial_interval(n_selected, self.n_events)
        efficiency_error = 0.5 * (interval[1] - interval[0])

        if efficiency <= 0.0:
            return RecastResult(
                analysis_id=search.analysis_id,
                model_name=model.name,
                n_generated=self.n_events,
                n_selected=0,
                signal_efficiency=0.0,
                efficiency_error=efficiency_error,
                upper_limit_pb=math.inf,
                model_cross_section_pb=process.cross_section_pb,
                excluded=False,
                backend=self.name,
                extra={"note": "zero truth-level efficiency",
                       "rivet_analysis": region.analysis_name,
                       "truth_level_only": True},
            )

        experiment = CountingExperiment(
            n_observed=search.n_observed,
            background=search.background,
            background_uncertainty=search.background_uncertainty,
            signal_efficiency=efficiency,
            luminosity=search.luminosity_ipb,
        )
        limit = cls_upper_limit(experiment, n_toys=self.n_limit_toys,
                                seed=self.seed + 1)
        extra = build_limit_result_extra(limit)
        extra["rivet_analysis"] = region.analysis_name
        extra["truth_level_only"] = True
        return RecastResult(
            analysis_id=search.analysis_id,
            model_name=model.name,
            n_generated=self.n_events,
            n_selected=n_selected,
            signal_efficiency=efficiency,
            efficiency_error=efficiency_error,
            upper_limit_pb=limit.upper_limit,
            model_cross_section_pb=process.cross_section_pb,
            excluded=limit.excludes_cross_section(
                process.cross_section_pb
            ),
            backend=self.name,
            extra=extra,
        )
