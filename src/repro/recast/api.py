"""The RECAST API: mediation between front end and back ends.

"The RECAST API would mediate between the user interface and various
capabilities provided by the 'back end' processing installation. ... the
results, if approved, are returned to the user."
"""

from __future__ import annotations

from repro.errors import RecastError
from repro.recast.backend import RecastBackend
from repro.recast.catalog import AnalysisCatalog
from repro.recast.requests import ModelSpec, RecastRequest, RequestStatus


class RecastAPI:
    """Owns the request queue, the catalogues, and the back ends."""

    def __init__(self) -> None:
        self._catalogs: dict[str, AnalysisCatalog] = {}
        self._backends: dict[str, RecastBackend] = {}
        self._requests: dict[str, RecastRequest] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # Experiment-side registration
    # ------------------------------------------------------------------

    def register_experiment(self, catalog: AnalysisCatalog,
                            backend: RecastBackend) -> None:
        """Attach an experiment's catalogue and its processing back end."""
        if catalog.experiment in self._catalogs:
            raise RecastError(
                f"experiment {catalog.experiment!r} already registered"
            )
        self._catalogs[catalog.experiment] = catalog
        self._backends[catalog.experiment] = backend

    def experiments(self) -> list[str]:
        """Registered experiment names, sorted."""
        return sorted(self._catalogs)

    def _find_search(self, analysis_id: str):
        for experiment, catalog in self._catalogs.items():
            if analysis_id in catalog:
                return experiment, catalog.get(analysis_id)
        raise RecastError(f"no experiment catalogues analysis "
                          f"{analysis_id!r}")

    def find_search(self, analysis_id: str):
        """``(experiment, search)`` for an analysis id, anywhere.

        The lookup the service layer schedules against; raises
        :class:`~repro.errors.RecastError` when no registered
        experiment catalogues the analysis.
        """
        return self._find_search(analysis_id)

    def backend_for(self, experiment: str) -> RecastBackend:
        """The processing back end registered for one experiment."""
        try:
            return self._backends[experiment]
        except KeyError:
            raise RecastError(
                f"no back end registered for experiment {experiment!r}"
            ) from None

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def submit(self, analysis_id: str, model: ModelSpec,
               requester: str) -> RecastRequest:
        """Create a request; validates the analysis exists somewhere."""
        self._find_search(analysis_id)  # existence check
        self._sequence += 1
        request = RecastRequest(
            request_id=f"req-{self._sequence:05d}",
            analysis_id=analysis_id,
            requester=requester,
            model=model,
        )
        self._requests[request.request_id] = request
        return request

    def get_request(self, request_id: str) -> RecastRequest:
        """Internal lookup of a request."""
        try:
            return self._requests[request_id]
        except KeyError:
            raise RecastError(f"unknown request {request_id!r}") from None

    def accept(self, request_id: str, note: str = "") -> None:
        """Experiment accepts a submitted request for processing."""
        self.get_request(request_id).transition(RequestStatus.ACCEPTED, note)

    def reject(self, request_id: str, note: str = "") -> None:
        """Experiment rejects a request (pre- or post-processing)."""
        self.get_request(request_id).transition(RequestStatus.REJECTED, note)

    def run(self, request_id: str) -> None:
        """Process an accepted request on its experiment's back end.

        Processing failures are captured into the FAILED state rather than
        propagating — the requester sees a failure notice, never a stack
        trace from the experiment's internals.
        """
        request = self.get_request(request_id)
        request.transition(RequestStatus.PROCESSING)
        try:
            # Resolution failures (analysis dropped from its catalogue,
            # back end unregistered) are processing failures too — they
            # must not strand the request in PROCESSING.
            experiment, search = self._find_search(request.analysis_id)
            backend = self._backends[experiment]
            result = backend.process(search, request.model)
        except Exception as exc:
            request.failure_reason = str(exc)
            request.transition(RequestStatus.FAILED, str(exc))
            return
        request.result = result
        request.transition(RequestStatus.PENDING_APPROVAL)

    def approve(self, request_id: str, approver: str) -> None:
        """Experiment releases the result to the requester."""
        self.get_request(request_id).transition(
            RequestStatus.APPROVED, f"approved by {approver}"
        )

    # ------------------------------------------------------------------
    # Public queries (delegated to by the front end)
    # ------------------------------------------------------------------

    def public_catalog(self) -> list[dict]:
        """Public metadata of all searches across all experiments."""
        listing = []
        for experiment in sorted(self._catalogs):
            listing.extend(self._catalogs[experiment].public_listing())
        return listing

    def public_status(self, request_id: str) -> dict:
        """The requester-visible view of a request."""
        return self.get_request(request_id).public_view()
