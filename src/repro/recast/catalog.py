"""The catalogue of preserved searches.

A :class:`PreservedSearch` bundles everything needed to re-interpret a
published search under a new model: the declarative event selection, the
background estimate and observed count, the luminosity, and the pointers
to the processing configuration (geometry, conditions global tag,
reconstruction version). The *code* is not in the record — it is
encapsulated in the back end, which is the RECAST control model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.skimslim import SkimSpec
from repro.errors import RecastError


@dataclass(frozen=True)
class PreservedSearch:
    """One preserved search analysis, as catalogued by its experiment."""

    analysis_id: str
    title: str
    experiment: str
    selection: SkimSpec
    n_observed: int
    background: float
    background_uncertainty: float
    luminosity_ipb: float
    geometry_name: str = "GPD"
    global_tag: str = "GT-FINAL"
    reco_version: str = "1.0.0"
    notes: str = ""

    def __post_init__(self) -> None:
        if self.n_observed < 0:
            raise RecastError("n_observed must be >= 0")
        if self.background < 0.0 or self.background_uncertainty < 0.0:
            raise RecastError("background (uncertainty) must be >= 0")
        if self.luminosity_ipb <= 0.0:
            raise RecastError("luminosity must be positive")

    def public_metadata(self) -> dict:
        """What the front end exposes to outsiders.

        The selection internals and processing configuration stay private:
        "none of this code base would be exposed to the outside world".
        """
        return {
            "analysis_id": self.analysis_id,
            "title": self.title,
            "experiment": self.experiment,
            "luminosity_ipb": self.luminosity_ipb,
            "notes": self.notes,
        }

    def to_dict(self) -> dict:
        """Full (experiment-internal) serialisation."""
        return {
            "analysis_id": self.analysis_id,
            "title": self.title,
            "experiment": self.experiment,
            "selection": self.selection.to_dict(),
            "n_observed": self.n_observed,
            "background": self.background,
            "background_uncertainty": self.background_uncertainty,
            "luminosity_ipb": self.luminosity_ipb,
            "geometry_name": self.geometry_name,
            "global_tag": self.global_tag,
            "reco_version": self.reco_version,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "PreservedSearch":
        """Inverse of :meth:`to_dict`."""
        return cls(
            analysis_id=str(record["analysis_id"]),
            title=str(record["title"]),
            experiment=str(record["experiment"]),
            selection=SkimSpec.from_dict(record["selection"]),
            n_observed=int(record["n_observed"]),
            background=float(record["background"]),
            background_uncertainty=float(record["background_uncertainty"]),
            luminosity_ipb=float(record["luminosity_ipb"]),
            geometry_name=str(record.get("geometry_name", "GPD")),
            global_tag=str(record.get("global_tag", "GT-FINAL")),
            reco_version=str(record.get("reco_version", "1.0.0")),
            notes=str(record.get("notes", "")),
        )


class AnalysisCatalog:
    """The experiment-side registry of preserved searches."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self._searches: dict[str, PreservedSearch] = {}

    def register(self, search: PreservedSearch) -> None:
        """Catalogue a preserved search for this experiment."""
        if search.experiment != self.experiment:
            raise RecastError(
                f"search {search.analysis_id!r} belongs to "
                f"{search.experiment!r}, not {self.experiment!r}"
            )
        if search.analysis_id in self._searches:
            raise RecastError(
                f"analysis {search.analysis_id!r} already catalogued"
            )
        self._searches[search.analysis_id] = search

    def get(self, analysis_id: str) -> PreservedSearch:
        """Internal lookup (back-end use only)."""
        try:
            return self._searches[analysis_id]
        except KeyError:
            raise RecastError(
                f"unknown analysis {analysis_id!r} in {self.experiment} "
                f"catalogue"
            ) from None

    def __contains__(self, analysis_id: str) -> bool:
        return analysis_id in self._searches

    def __len__(self) -> int:
        return len(self._searches)

    def public_listing(self) -> list[dict]:
        """Public metadata of every catalogued search."""
        return [self._searches[analysis_id].public_metadata()
                for analysis_id in sorted(self._searches)]
