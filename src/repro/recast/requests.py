"""Re-analysis requests and their state machine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import RecastError, RequestStateError
from repro.recast.results import RecastResult


class RequestStatus(enum.Enum):
    """Lifecycle of a RECAST request.

    The synchronous path runs SUBMITTED → ACCEPTED → PROCESSING →
    PENDING_APPROVAL → APPROVED. The service path
    (:mod:`repro.service`) inserts the queueing states: an accepted
    request is QUEUED, a worker holding a time-limited lease on it
    moves it to LEASED, and a crashed/expired lease parks it in
    RETRYING until the scheduler re-queues it (or exhausts the retry
    cap into FAILED).
    """

    SUBMITTED = "submitted"
    ACCEPTED = "accepted"
    QUEUED = "queued"
    LEASED = "leased"
    RETRYING = "retrying"
    PROCESSING = "processing"
    PENDING_APPROVAL = "pending_approval"
    APPROVED = "approved"
    REJECTED = "rejected"
    FAILED = "failed"


#: Legal state transitions. QUEUED → PENDING_APPROVAL is the dedup
#: fan-out edge: a subscriber to a shared execution receives the
#: committed result without ever holding a lease of its own.
_TRANSITIONS: dict[RequestStatus, frozenset[RequestStatus]] = {
    RequestStatus.SUBMITTED: frozenset(
        {RequestStatus.ACCEPTED, RequestStatus.REJECTED}
    ),
    RequestStatus.ACCEPTED: frozenset(
        {RequestStatus.PROCESSING, RequestStatus.QUEUED}
    ),
    RequestStatus.QUEUED: frozenset(
        {RequestStatus.LEASED, RequestStatus.PENDING_APPROVAL,
         RequestStatus.FAILED, RequestStatus.REJECTED}
    ),
    RequestStatus.LEASED: frozenset(
        {RequestStatus.PENDING_APPROVAL, RequestStatus.RETRYING,
         RequestStatus.FAILED}
    ),
    RequestStatus.RETRYING: frozenset(
        {RequestStatus.QUEUED, RequestStatus.FAILED}
    ),
    RequestStatus.PROCESSING: frozenset(
        {RequestStatus.PENDING_APPROVAL, RequestStatus.FAILED}
    ),
    RequestStatus.PENDING_APPROVAL: frozenset(
        {RequestStatus.APPROVED, RequestStatus.REJECTED}
    ),
    RequestStatus.APPROVED: frozenset(),
    RequestStatus.REJECTED: frozenset(),
    RequestStatus.FAILED: frozenset(),
}


def legal_transitions(status: RequestStatus) -> frozenset[RequestStatus]:
    """The statuses one status may legally move to."""
    return _TRANSITIONS[status]

#: Model-spec process names the back ends know how to generate.
KNOWN_PROCESSES = ("zprime", "drell_yan_z", "w_production", "higgs_4l")


@dataclass(frozen=True)
class ModelSpec:
    """A requester-supplied new-physics model, as pure data.

    Only parameters cross the interface — never code — which is what
    keeps the RECAST system "closed". ``process`` must be one of
    :data:`KNOWN_PROCESSES`; ``parameters`` are process-specific (e.g.
    ``mass``, ``width``, ``cross_section_pb`` for a Z').
    """

    name: str
    process: str
    parameters: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.process not in KNOWN_PROCESSES:
            raise RecastError(
                f"unknown model process {self.process!r}; supported: "
                f"{KNOWN_PROCESSES}"
            )

    def to_dict(self) -> dict:
        """Serialise for request records."""
        return {"name": self.name, "process": self.process,
                "parameters": dict(self.parameters)}

    @classmethod
    def from_dict(cls, record: dict) -> "ModelSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(record["name"]),
            process=str(record["process"]),
            parameters=dict(record.get("parameters", {})),
        )


@dataclass
class RecastRequest:
    """One re-analysis request moving through the system."""

    request_id: str
    analysis_id: str
    requester: str
    model: ModelSpec
    status: RequestStatus = RequestStatus.SUBMITTED
    history: list[str] = field(default_factory=list)
    result: RecastResult | None = None
    failure_reason: str = ""

    def transition(self, new_status: RequestStatus, note: str = "") -> None:
        """Move to a new status; illegal moves raise RequestStateError.

        Every illegal edge raises — including re-entering the current
        status (a double-accept is a driver bug, never a silent no-op)
        and any move out of a terminal status. The error is a
        :class:`~repro.errors.RequestStateError`, which is both a
        ``RecastError`` and a ``PreservationError``.
        """
        if not isinstance(new_status, RequestStatus):
            raise RequestStateError(
                f"request {self.request_id}: transition target "
                f"{new_status!r} is not a RequestStatus"
            )
        allowed = _TRANSITIONS[self.status]
        if new_status not in allowed:
            detail = ("no transitions leave a terminal status"
                      if not allowed else
                      f"allowed: {sorted(s.value for s in allowed)}")
            if new_status is self.status:
                detail = f"already {self.status.value}; " + detail
            raise RequestStateError(
                f"request {self.request_id}: cannot go "
                f"{self.status.value} -> {new_status.value}; {detail}"
            )
        self.history.append(
            f"{self.status.value} -> {new_status.value}"
            + (f" ({note})" if note else "")
        )
        self.status = new_status

    @property
    def is_terminal(self) -> bool:
        """True when no further transitions are possible."""
        return not _TRANSITIONS[self.status]

    def public_view(self) -> dict:
        """What the requester can see.

        The result is only included after experiment approval — the
        control mechanism the paper highlights.
        """
        view = {
            "request_id": self.request_id,
            "analysis_id": self.analysis_id,
            "model": self.model.to_dict(),
            "status": self.status.value,
        }
        if self.status == RequestStatus.APPROVED and self.result is not None:
            view["result"] = self.result.to_dict()
        if self.status == RequestStatus.FAILED:
            view["failure_reason"] = self.failure_reason
        return view
