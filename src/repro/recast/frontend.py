"""The public RECAST front end.

"The RECAST structure includes a 'front end' interface to the outside
world where those interested in re-using an analysis can submit requests
and inputs used in the processing." The front end only ever returns
public views; all internals stay behind the API.
"""

from __future__ import annotations

from repro.recast.api import RecastAPI
from repro.recast.requests import ModelSpec


class RecastFrontend:
    """What a theorist (or any outsider) interacts with."""

    def __init__(self, api: RecastAPI) -> None:
        self._api = api

    def browse_catalog(self) -> list[dict]:
        """Public metadata of every preserved search."""
        return self._api.public_catalog()

    def submit_request(self, analysis_id: str, model: ModelSpec,
                       requester: str) -> str:
        """Submit a re-analysis request; returns the request id."""
        request = self._api.submit(analysis_id, model, requester)
        return request.request_id

    def status(self, request_id: str) -> dict:
        """The requester-visible state of a request.

        Includes the result payload only once the experiment has approved
        its release.
        """
        return self._api.public_status(request_id)

    def result(self, request_id: str) -> dict | None:
        """The approved result, or None while unapproved/unfinished."""
        view = self._api.public_status(request_id)
        return view.get("result")
