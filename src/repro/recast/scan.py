"""Parameter scans: the exclusion curve a re-interpretation produces.

A single RECAST request answers "is *this* model excluded?"; the product
phenomenologists actually publish is the scan — the 95% CL cross-section
limit as a function of the model parameter (here the Z' mass), and the
mass reach below which a given theory cross-section is excluded. This
module drives any :class:`RecastBackend` across a parameter grid.
"""

from __future__ import annotations

import copy
import functools
import math
from dataclasses import dataclass, field

from repro.errors import RecastError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active
from repro.recast.backend import RecastBackend
from repro.recast.catalog import PreservedSearch
from repro.recast.requests import ModelSpec
from repro.recast.results import RecastResult
from repro.runtime import ExecutionPolicy, parallel_map


@dataclass(frozen=True)
class ScanPoint:
    """One point of the exclusion scan."""

    mass: float
    result: RecastResult

    @property
    def limit_pb(self) -> float:
        """The 95% CL cross-section limit at this mass."""
        return self.result.upper_limit_pb

    @property
    def efficiency(self) -> float:
        """The selection efficiency at this mass."""
        return self.result.signal_efficiency


@dataclass
class ExclusionScan:
    """A completed scan with its derived exclusion statements."""

    analysis_id: str
    model_template: str
    points: list[ScanPoint] = field(default_factory=list)

    def limits(self) -> list[tuple[float, float]]:
        """(mass, limit) pairs, mass-ordered."""
        return [(point.mass, point.limit_pb)
                for point in sorted(self.points,
                                    key=lambda p: p.mass)]

    def excluded_masses(self, theory_cross_section_pb: float
                        ) -> list[float]:
        """Masses where the theory cross-section exceeds the limit."""
        return [point.mass
                for point in sorted(self.points, key=lambda p: p.mass)
                if (math.isfinite(point.limit_pb)
                    and theory_cross_section_pb > point.limit_pb)]

    def mass_reach(self, theory_cross_section_pb: float) -> float | None:
        """The highest contiguously excluded mass from the low edge.

        Returns None when even the lightest scanned mass is allowed.
        """
        reach = None
        for point in sorted(self.points, key=lambda p: p.mass):
            excluded = (math.isfinite(point.limit_pb)
                        and theory_cross_section_pb > point.limit_pb)
            if not excluded:
                break
            reach = point.mass
        return reach

    def render(self, theory_cross_section_pb: float) -> str:
        """Plain-text exclusion table."""
        lines = [
            f"Exclusion scan — {self.analysis_id} vs "
            f"{self.model_template}",
            "",
            f"{'mass [GeV]':>12s}{'efficiency':>12s}"
            f"{'limit [pb]':>14s}{'verdict':>10s}",
        ]
        for point in sorted(self.points, key=lambda p: p.mass):
            excluded = (math.isfinite(point.limit_pb)
                        and theory_cross_section_pb > point.limit_pb)
            limit = (f"{point.limit_pb:.3e}"
                     if math.isfinite(point.limit_pb) else "inf")
            lines.append(
                f"{point.mass:>12.0f}{point.efficiency:>12.3f}"
                f"{limit:>14s}"
                f"{'EXCL' if excluded else 'allowed':>10s}"
            )
        reach = self.mass_reach(theory_cross_section_pb)
        lines.append("")
        lines.append(
            f"theory sigma = {theory_cross_section_pb} pb -> mass "
            f"reach: {reach if reach is not None else 'none'} GeV"
        )
        return "\n".join(lines)


def _evaluate_scan_point(
    backend: RecastBackend,
    search: PreservedSearch,
    cross_section_pb: float,
    flavour: str,
    mass: float,
) -> ScanPoint:
    """Evaluate one mass point (module-level for process pools).

    Back ends seed their chains from their own configuration, never
    from scan order, so each point is a pure function of ``mass``.
    """
    model = ModelSpec(
        name=f"zprime-{int(mass)}",
        process="zprime",
        parameters={"mass": float(mass), "flavour": flavour,
                    "cross_section_pb": cross_section_pb},
    )
    return ScanPoint(mass=float(mass),
                     result=backend.process(search, model))


def run_mass_scan(
    backend: RecastBackend,
    search: PreservedSearch,
    masses: list[float],
    cross_section_pb: float = 0.05,
    flavour: str = "mu",
    policy: ExecutionPolicy | None = None,
    *,
    columnar: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ExclusionScan:
    """Scan a Z'-style model over a mass grid through one back end.

    A parallel ``policy`` evaluates mass points concurrently; the scan's
    point list (and every limit derived from it) is identical to the
    serial scan — points land in grid order, one per requested mass.

    ``columnar=True`` asks the back end to process each point through
    the columnar engine (batch reconstruction, vectorised selection).
    Selected-event counts — and therefore limits — are identical to the
    per-event path; only throughput changes. The flag is applied to a
    shallow copy, so the caller's backend is untouched.

    An enabled ``tracer`` records a ``recast.mass_scan`` span over the
    grid (per-chunk worker spans nest below it); ``metrics`` counts
    evaluated points. The backend itself can additionally be
    instrumented in-process via :meth:`RecastBackend.instrument` —
    that per-request tracing stays on the driver and is stripped
    before workers pickle the backend.
    """
    if not masses:
        raise RecastError("scan needs at least one mass point")
    if columnar:
        backend = copy.copy(backend)
        backend.columnar = True
    obs = active(tracer)
    worker = functools.partial(_evaluate_scan_point, backend, search,
                               cross_section_pb, flavour)
    with obs.span("recast.mass_scan", analysis=search.analysis_id,
                  n_points=len(masses), backend=backend.name):
        points = parallel_map(worker, [float(mass) for mass in masses],
                              policy, tracer=tracer, metrics=metrics)
    if metrics is not None:
        metrics.counter("recast.scan_points").inc(len(points))
    return ExclusionScan(analysis_id=search.analysis_id,
                         model_template="zprime", points=points)
