"""A RECAST-analogue re-analysis framework.

Implements the "closed system" of Section 2.3/2.4:

- a public :class:`RecastFrontend` where outsiders browse the catalogue
  and submit re-analysis requests for new models;
- a :class:`RecastAPI` mediating between the front end and the back ends;
- experiment-controlled :class:`FullChainBackend` processors that run the
  *entire* preserved chain — generation of the new model, detector
  simulation, reconstruction, and the preserved event selection — none of
  which is exposed to the requester;
- an approval gate: results reach the requester only after the experiment
  approves them;
- the :class:`RivetBridgeBackend` (the DASPOS deliverable): any RIVET
  analysis can serve as a RECAST back end, gaining limit-setting.
"""

from repro.recast.catalog import AnalysisCatalog, PreservedSearch
from repro.recast.requests import (
    ModelSpec,
    RecastRequest,
    RequestStatus,
    legal_transitions,
)
from repro.recast.results import RecastResult
from repro.recast.backend import FullChainBackend, RecastBackend
from repro.recast.background import (
    BackgroundEstimate,
    combine_estimates,
    estimate_background,
)
from repro.recast.api import RecastAPI
from repro.recast.frontend import RecastFrontend
from repro.recast.bridge import RivetBridgeBackend
from repro.recast.scan import ExclusionScan, ScanPoint, run_mass_scan

__all__ = [
    "AnalysisCatalog",
    "PreservedSearch",
    "ModelSpec",
    "RecastRequest",
    "RequestStatus",
    "legal_transitions",
    "RecastResult",
    "RecastBackend",
    "FullChainBackend",
    "RecastAPI",
    "RecastFrontend",
    "RivetBridgeBackend",
    "ExclusionScan",
    "ScanPoint",
    "run_mass_scan",
    "BackgroundEstimate",
    "estimate_background",
    "combine_estimates",
]
