"""Injectable time sources for lease- and deadline-based scheduling.

Anything in the library that reasons about *elapsed* time (lease
expiry, retry backoff) must not read the machine clock directly —
a scheduler whose decisions depend on wall time can never replay a
request log byte-identically. Instead, components accept a clock
object with a single ``now()`` reading:

- :class:`LogicalClock` — the deterministic source. Time is a plain
  float that advances **only** when the driver calls
  :meth:`~LogicalClock.advance`, so every scheduling decision is a
  pure function of the submission script, and two replays of the same
  script observe identical timestamps.
- :class:`MonotonicClock` — the production source, reading
  ``time.monotonic()``. Offered so deployments get real lease expiry
  without changing any scheduler code; nothing in the test suite or
  the deterministic replay path uses it.
"""

from __future__ import annotations

import time

from repro.errors import ExecutionError


class Clock:
    """The interface every injectable time source satisfies.

    Components that reason about elapsed time (lease tables, telemetry
    windows, backoff schedules) accept any object with this shape and
    never read the machine clock themselves. ``tick`` is the step a
    default :meth:`advance` takes — zero for sources that advance on
    their own.
    """

    #: Default advance step; 0.0 for self-advancing sources.
    tick: float = 0.0

    def now(self) -> float:
        """The current time in this source's units."""
        raise NotImplementedError

    def advance(self, amount: float | None = None) -> float:
        """Move time forward where the source permits it."""
        raise NotImplementedError


class LogicalClock(Clock):
    """A deterministic clock that advances only on demand.

    ``tick`` is the default step :meth:`advance` takes — one scheduling
    round of the service driver advances the clock by one tick.

    >>> clock = LogicalClock(tick=2.0)
    >>> clock.now()
    0.0
    >>> clock.advance()
    2.0
    >>> clock.advance(0.5)
    2.5
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        if tick <= 0.0:
            raise ExecutionError(f"clock tick must be > 0, got {tick}")
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        """The current logical time."""
        return self._now

    def advance(self, amount: float | None = None) -> float:
        """Move time forward by ``amount`` (default: one tick)."""
        step = self.tick if amount is None else float(amount)
        if step < 0.0:
            raise ExecutionError(
                f"clock cannot run backwards (advance by {step})"
            )
        self._now += step
        return self._now


class MonotonicClock(Clock):
    """The real monotonic clock behind the same ``now()`` interface.

    :meth:`advance` is a no-op — real time advances itself — so driver
    loops written against :class:`LogicalClock` run unchanged.
    """

    #: Matches LogicalClock's interface; unused for real time.
    tick = 0.0

    def now(self) -> float:
        """The current monotonic-clock reading."""
        # lint: ignore[DAS001] -- the production clock's one job is
        # reading real time; deterministic paths use LogicalClock
        return time.monotonic()

    def advance(self, amount: float | None = None) -> float:
        """Real time cannot be advanced; returns the current reading."""
        return self.now()
