"""Deterministic parallel execution for preserved workflows.

The paper's chains — campaign processing, reconstruction, RECAST scans —
are embarrassingly parallel DAGs of independent work units. This package
provides the execution layer that exploits that *without changing any
result*: an :class:`ExecutionPolicy` value object describing the worker
pool, and a :func:`parallel_map` scheduler whose output is bit-identical
to the serial loop it replaces. :func:`derive_seed` is the deterministic
per-work-unit seeding rule that makes the independence real.
"""

from repro.runtime.clock import Clock, LogicalClock, MonotonicClock
from repro.runtime.policy import MODES, ExecutionPolicy
from repro.runtime.scheduler import (
    chunked,
    default_chunk_size,
    derive_seed,
    parallel_map,
)
from repro.runtime.workers import (
    WorkerDispatch,
    dispatch_for,
    register_worker_dispatcher,
    worker_dispatchers,
)

__all__ = [
    "MODES",
    "Clock",
    "ExecutionPolicy",
    "LogicalClock",
    "MonotonicClock",
    "WorkerDispatch",
    "chunked",
    "default_chunk_size",
    "derive_seed",
    "dispatch_for",
    "parallel_map",
    "register_worker_dispatcher",
    "worker_dispatchers",
]
