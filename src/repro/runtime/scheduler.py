"""The deterministic parallel scheduler.

:func:`parallel_map` is the single primitive every parallel layer of the
library is built on. Its contract is stronger than "run things
concurrently":

1. **Order-preserving merge** — the result list is in input order, always,
   regardless of which worker finished first.
2. **Determinism** — for a pure ``fn``, ``parallel_map(fn, items, policy)``
   is bit-identical to ``[fn(x) for x in items]`` for *every* policy.
   Reproducibility is the preservation claim; a scheduler that traded it
   for speed would defeat the point of the archive it accelerates.
3. **Deterministic chunking** — items are split into contiguous chunks of
   a size that depends only on ``(len(items), n_jobs, chunk_size)``, never
   on timing, so any per-chunk work (e.g. seeding) is reproducible too.

Worker functions destined for a process pool must be picklable: a
module-level function, or :func:`functools.partial` over one.

:func:`derive_seed` is the companion seeding rule: a stable hash mapping
``(base_seed, *components)`` to an independent child seed, so each work
unit owns its randomness no matter which worker runs it, or in which
order. (Python's builtin ``hash`` is salted per process and would not
survive a process pool.)
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, active
from repro.runtime.policy import ExecutionPolicy

#: Seeds are kept inside the range every stdlib / numpy RNG accepts.
_SEED_MODULUS = 2**31 - 1


def derive_seed(base_seed: int, *components: object) -> int:
    """A stable, collision-resistant child seed for one work unit.

    >>> derive_seed(6000, "run", 25) == derive_seed(6000, "run", 25)
    True
    >>> derive_seed(6000, "run", 25) != derive_seed(6000, "run", 26)
    True
    """
    key = repr((int(base_seed),) + components).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


def chunked(items: Sequence, chunk_size: int) -> Iterator[list]:
    """Split ``items`` into contiguous chunks of ``chunk_size``."""
    if chunk_size < 1:
        raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield list(items[start:start + chunk_size])


def default_chunk_size(n_items: int, n_jobs: int) -> int:
    """Roughly four chunks per worker: enough to balance, few enough
    to keep per-chunk submission overhead negligible."""
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // max(1, n_jobs * 4)))


def _apply_chunk(fn: Callable, chunk: list) -> list:
    """Worker-side driver: apply ``fn`` to one contiguous chunk."""
    return [fn(item) for item in chunk]


def _apply_chunk_observed(fn: Callable, index: int,
                          chunk: list) -> tuple[list, list]:
    """Traced worker-side driver: one span per chunk.

    The span is recorded into a worker-local tracer (drivers and
    workers never share one) and shipped back with the results; the
    driver adopts it in submission order, so the merged trace is
    independent of worker finish order.
    """
    tracer = Tracer("worker")
    with tracer.span("runtime.chunk", chunk=index, n_items=len(chunk)):
        results = [fn(item) for item in chunk]
    return results, tracer.spans


def _make_executor(policy: ExecutionPolicy) -> Executor:
    if policy.mode == "thread":
        return ThreadPoolExecutor(max_workers=policy.n_jobs)
    # Prefer fork where the platform offers it: inheriting the parent
    # keeps worker start-up cheap, and workers only ever *return* data.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ProcessPoolExecutor(max_workers=policy.n_jobs,
                               mp_context=context)


def parallel_map(
    fn: Callable,
    items: Iterable,
    policy: ExecutionPolicy | None = None,
    *,
    chunk_size: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list:
    """Apply ``fn`` to every item, preserving input order in the output.

    Serial policies (including ``policy=None``) run in the calling
    thread with no executor at all, so the default cost of the API is
    one list comprehension. An exception raised by any ``fn(item)``
    propagates to the caller unchanged under every policy.

    An enabled ``tracer`` records one ``runtime.parallel_map`` span plus
    a worker-timed ``runtime.chunk`` span per chunk (adopted back in
    submission order); ``metrics`` additionally receives chunk/item
    counters, chunk-duration and queue-wait histograms, and a
    worker-utilization gauge. With both left at ``None`` the scheduler
    behaves — and costs — exactly as before.
    """
    work = items if isinstance(items, Sequence) else list(items)
    obs = active(tracer)
    observing = obs.enabled or metrics is not None
    if policy is None or policy.is_serial:
        if not observing:
            return [fn(item) for item in work]
        with obs.span("runtime.parallel_map", n_items=len(work),
                      mode="serial"):
            results = [fn(item) for item in work]
        if metrics is not None:
            metrics.counter("runtime.items").inc(len(work))
        return results
    if not work:
        return []
    size = (chunk_size if chunk_size is not None
            else policy.chunk_size if policy.chunk_size is not None
            else default_chunk_size(len(work), policy.n_jobs))
    chunks = list(chunked(work, size))
    if not observing:
        results = []
        with _make_executor(policy) as executor:
            futures = [executor.submit(_apply_chunk, fn, chunk)
                       for chunk in chunks]
            # Collect in *submission* order — the order-preserving merge.
            for future in futures:
                results.extend(future.result())
        return results
    return _parallel_map_observed(fn, work, chunks, policy, obs, metrics)


def _parallel_map_observed(
    fn: Callable,
    work: Sequence,
    chunks: list[list],
    policy: ExecutionPolicy,
    obs: Tracer,
    metrics: MetricsRegistry | None,
) -> list:
    """The instrumented pooled path of :func:`parallel_map`."""
    results: list = []
    busy = 0.0
    with obs.span("runtime.parallel_map", n_items=len(work),
                  n_chunks=len(chunks), mode=policy.mode,
                  n_jobs=policy.n_jobs) as outer:
        started = time.monotonic()
        with _make_executor(policy) as executor:
            submissions = []
            for index, chunk in enumerate(chunks):
                submissions.append((
                    time.monotonic(),
                    executor.submit(_apply_chunk_observed, fn, index,
                                    chunk),
                ))
            # Collect in *submission* order — the order-preserving
            # merge, for results and worker spans alike.
            for submitted_at, future in submissions:
                chunk_results, spans = future.result()
                results.extend(chunk_results)
                adopted = obs.adopt(spans, parent=outer)
                if metrics is None or not adopted:
                    continue
                chunk_span = adopted[0]
                busy += chunk_span.duration
                metrics.histogram("runtime.chunk_seconds").observe(
                    chunk_span.duration)
                # Monotonic clocks share an epoch across local
                # workers, so worker start minus driver submit is the
                # time the chunk sat in the queue (clamped: clock
                # granularity can make tiny waits read negative).
                metrics.histogram("runtime.queue_wait_seconds").observe(
                    max(0.0, chunk_span.start - submitted_at))
        elapsed = time.monotonic() - started
        if metrics is not None:
            metrics.counter("runtime.items").inc(len(work))
            metrics.counter("runtime.chunks").inc(len(chunks))
            if elapsed > 0.0:
                metrics.gauge("runtime.worker_utilization").set(
                    min(1.0, busy / (elapsed * policy.n_jobs)))
    return results
