"""Execution policies: how much parallelism, and of which kind.

The preservation claim of the paper is that an archived chain can be
*re-executed at will* — which only matters in practice if re-execution is
fast enough to repeat routinely. An :class:`ExecutionPolicy` describes how
a re-execution should be scheduled (serially, across threads, or across
processes) without changing *what* is computed: every consumer of a policy
must produce bit-identical results for every policy value, and the test
suite enforces that guarantee.

Policies are small frozen value objects so they can travel inside
provenance records and be pickled to worker processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ExecutionError

#: The scheduling modes :func:`repro.runtime.parallel_map` understands.
MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a parallelizable workload should be scheduled.

    ``mode`` selects the executor: ``"serial"`` runs in the calling
    thread, ``"thread"`` uses a thread pool (useful when the workload
    releases the GIL or is I/O bound), ``"process"`` uses a process pool
    (the right choice for the pure-Python reconstruction chain).
    ``n_jobs`` is the worker count; ``chunk_size`` overrides the
    scheduler's automatic work-unit size.
    """

    mode: str = "serial"
    n_jobs: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ExecutionError(
                f"unknown execution mode {self.mode!r}; "
                f"expected one of {MODES}"
            )
        if self.n_jobs < 1:
            raise ExecutionError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ExecutionError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def serial(cls) -> "ExecutionPolicy":
        """The default single-threaded policy."""
        return cls(mode="serial", n_jobs=1)

    @classmethod
    def threads(cls, n_jobs: int,
                chunk_size: int | None = None) -> "ExecutionPolicy":
        """A thread-pool policy with ``n_jobs`` workers."""
        return cls(mode="thread", n_jobs=n_jobs, chunk_size=chunk_size)

    @classmethod
    def processes(cls, n_jobs: int,
                  chunk_size: int | None = None) -> "ExecutionPolicy":
        """A process-pool policy with ``n_jobs`` workers."""
        return cls(mode="process", n_jobs=n_jobs, chunk_size=chunk_size)

    @classmethod
    def from_jobs(cls, n_jobs: int | None,
                  mode: str = "process") -> "ExecutionPolicy":
        """The policy a ``--jobs N`` CLI flag maps to.

        ``None``, ``0`` and ``1`` mean serial (current behaviour);
        negative values mean "one worker per CPU".
        """
        if n_jobs is None:
            return cls.serial()
        if n_jobs < 0:
            n_jobs = os.cpu_count() or 1
        if n_jobs <= 1:
            return cls.serial()
        return cls(mode=mode, n_jobs=n_jobs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_serial(self) -> bool:
        """True when this policy schedules no concurrency at all."""
        return self.mode == "serial" or self.n_jobs == 1

    def describe(self) -> dict:
        """Serialise for provenance records and benchmark reports."""
        return {
            "mode": self.mode,
            "n_jobs": self.n_jobs,
            "chunk_size": self.chunk_size,
        }
