"""The worker-dispatch registry: which callables fan work out.

The parallel layers of the library all funnel through a small set of
*dispatch points* — callables that accept a worker function and apply
it to many items across an :class:`~repro.runtime.ExecutionPolicy`'s
pool (:func:`repro.runtime.parallel_map` is the canonical one). The
static concurrency analyzer (``repro.lint.par``) needs to know exactly
which call sites hand a callable to a pool, and in which argument
position the worker travels; this registry is that contract, kept next
to the scheduler so the two cannot drift.

Third-party layers that build their own fan-out primitive on top of
``parallel_map`` can register it here and the DAS3xx rules will treat
their workers exactly like the library's own::

    from repro.runtime.workers import register_worker_dispatcher

    register_worker_dispatcher("my_pool_map", arg_position=0,
                               keyword="fn")

Matching is by the *unqualified* callable name (the last dotted
segment), because the analyzer sees statically resolved names like
``repro.runtime.scheduler.parallel_map`` in one tree and a bare
``parallel_map`` import alias in another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkerDispatch:
    """One registered dispatch point.

    ``arg_position`` is the zero-based positional slot of the worker
    callable; ``keyword`` the keyword it may alternatively travel
    under (empty when the dispatcher takes the worker positionally
    only).
    """

    name: str
    arg_position: int = 0
    keyword: str = "fn"


#: Unqualified dispatcher name -> dispatch contract.
_DISPATCHERS: dict[str, WorkerDispatch] = {}


def register_worker_dispatcher(name: str, arg_position: int = 0,
                               keyword: str = "fn") -> WorkerDispatch:
    """Register a fan-out callable; duplicate names are bugs."""
    base = name.rpartition(".")[2]
    if not base:
        raise ConfigurationError(
            f"worker dispatcher needs a name, got {name!r}")
    if base in _DISPATCHERS:
        raise ConfigurationError(
            f"worker dispatcher {base!r} already registered")
    dispatch = WorkerDispatch(name=base, arg_position=arg_position,
                              keyword=keyword)
    _DISPATCHERS[base] = dispatch
    return dispatch


def worker_dispatchers() -> dict[str, WorkerDispatch]:
    """Every registered dispatch point, keyed by unqualified name."""
    return {name: _DISPATCHERS[name] for name in sorted(_DISPATCHERS)}


def dispatch_for(dotted: str) -> WorkerDispatch | None:
    """The dispatch contract a (possibly dotted) call name matches."""
    return _DISPATCHERS.get(dotted.rpartition(".")[2])


#: The scheduler's own primitive: ``parallel_map(fn, items, policy)``.
register_worker_dispatcher("parallel_map", arg_position=0, keyword="fn")

#: The RECAST service's lease executor
#: (``repro.service.pool.run_lease_batch(fn, tasks, policy)``): lease
#: workers fan out through it, so the DAS3xx rules must trace them.
register_worker_dispatcher("run_lease_batch", arg_position=0,
                           keyword="fn")
