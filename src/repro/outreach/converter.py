"""The thin AOD -> Level-2 converter.

"Here, a thin layer of software will convert data in a relatively
low-level format (called AOD ...) into a simplified representation that
can be used for further analysis or visualization using an event display
that consumes this simplified format."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.event import AODEvent
from repro.errors import ConversionError
from repro.outreach.display import build_display_payload
from repro.outreach.format import Level2Event, SimplifiedParticle


@dataclass(frozen=True)
class ConverterConfig:
    """What the converter keeps."""

    min_lepton_pt: float = 5.0
    min_photon_pt: float = 5.0
    min_jet_pt: float = 15.0
    include_display: bool = False


@dataclass
class ConversionStats:
    """Volume accounting for one conversion pass."""

    n_events: int = 0
    input_bytes: int = 0
    output_bytes: int = 0

    @property
    def reduction_factor(self) -> float:
        """Input size over output size (> 1 means the output is smaller)."""
        if self.output_bytes == 0:
            return float("inf")
        return self.input_bytes / self.output_bytes


class Level2Converter:
    """Converts AOD events into the simplified Level-2 format."""

    def __init__(self, collision_energy_tev: float = 8.0,
                 config: ConverterConfig | None = None) -> None:
        if collision_energy_tev <= 0.0:
            raise ConversionError("collision energy must be positive")
        self.collision_energy_tev = collision_energy_tev
        self.config = config if config is not None else ConverterConfig()
        self.stats = ConversionStats()

    def convert(self, aod: AODEvent,
                candidates: list[dict] | None = None) -> Level2Event:
        """Convert one AOD event; optional composite candidates ride along."""
        config = self.config
        particles = []
        for electron in aod.electrons:
            if electron.p4.pt >= config.min_lepton_pt:
                particles.append(SimplifiedParticle(
                    "electron", electron.p4.e, electron.p4.pt,
                    electron.p4.eta, electron.p4.phi, electron.charge,
                ))
        for muon in aod.muons:
            if muon.p4.pt >= config.min_lepton_pt:
                particles.append(SimplifiedParticle(
                    "muon", muon.p4.e, muon.p4.pt, muon.p4.eta,
                    muon.p4.phi, muon.charge,
                ))
        for photon in aod.photons:
            if photon.p4.pt >= config.min_photon_pt:
                particles.append(SimplifiedParticle(
                    "photon", photon.p4.e, photon.p4.pt, photon.p4.eta,
                    photon.p4.phi, 0,
                ))
        for jet in aod.jets:
            if jet.p4.pt >= config.min_jet_pt:
                particles.append(SimplifiedParticle(
                    "jet", jet.p4.e, jet.p4.pt, jet.p4.eta, jet.p4.phi, 0,
                ))
        level2 = Level2Event(
            run_number=aod.run_number,
            event_number=aod.event_number,
            collision_energy_tev=self.collision_energy_tev,
            particles=particles,
            met=aod.met.met,
            met_phi=aod.met.phi,
            candidates=list(candidates) if candidates else [],
        )
        if config.include_display:
            level2.display = build_display_payload(level2)
        self.stats.n_events += 1
        self.stats.input_bytes += aod.approximate_size_bytes()
        self.stats.output_bytes += level2.approximate_size_bytes()
        return level2

    def convert_many(self, aods: list[AODEvent]) -> list[Level2Event]:
        """Convert a list of AOD events in order."""
        return [self.convert(aod) for aod in aods]

    def describe(self) -> dict:
        """Provenance description of the converter configuration."""
        return {
            "converter": "repro-level2-converter",
            "version": "1.0.0",
            "collision_energy_tev": self.collision_energy_tev,
            "min_lepton_pt": self.config.min_lepton_pt,
            "min_jet_pt": self.config.min_jet_pt,
            "include_display": self.config.include_display,
        }
