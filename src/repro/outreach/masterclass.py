"""Master-class exercises.

Each exercise is a fully documented mini-analysis over Level-2 data — the
"most completely documented analyses in the high energy physics domain"
of Section 2.2. The four exercises mirror the Table 1 master-class uses:
W and Z (and Higgs) at ATLAS/CMS, and the D-lifetime measurement at LHCb.
Every exercise returns its measurement together with the reference value,
so outreach sessions (and our tests) can check the students' result.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.errors import OutreachError
from repro.kinematics import invariant_mass
from repro.kinematics.units import SPEED_OF_LIGHT_MM_PER_NS
from repro.outreach.format import Level2Event
from repro.reconstruction.objects import RecoEvent
from repro.reconstruction.tracking import Track, two_track_vertex
from repro.stats.fitting import fit_exponential_lifetime, fit_gaussian_peak
from repro.stats.histogram import Histogram1D

#: PDG masses used in candidate building, GeV.
_KAON_MASS = 0.49368
_PION_MASS = 0.13957
_D0_MASS = 1.86484
#: PDG D0 mean lifetime in picoseconds.
D0_LIFETIME_PS = 0.4101


class MasterClassExercise(abc.ABC):
    """One classroom exercise over simplified events."""

    title: str = "exercise"
    experiment: str = "TOY"
    reference_value: float = 0.0
    reference_label: str = ""

    @abc.abstractmethod
    def instructions(self) -> str:
        """The student-facing instructions text."""

    @abc.abstractmethod
    def run(self, events: list[Level2Event]) -> dict:
        """Execute the exercise; returns the measurement report."""

    def _report(self, measured: float, error: float,
                n_candidates: int, extra: dict | None = None) -> dict:
        report = {
            "exercise": self.title,
            "experiment": self.experiment,
            "n_candidates": n_candidates,
            "measured": measured,
            "error": error,
            "reference": self.reference_value,
            "reference_label": self.reference_label,
            "pull": ((measured - self.reference_value) / error
                     if error > 0.0 else float("nan")),
        }
        if extra:
            report.update(extra)
        return report


class ZPathExercise(MasterClassExercise):
    """Measure the Z mass from opposite-charge dilepton events."""

    title = "Z path"
    experiment = "GPD"
    reference_value = 91.19
    reference_label = "m(Z) [GeV]"

    def __init__(self, min_lepton_pt: float = 20.0) -> None:
        self.min_lepton_pt = min_lepton_pt

    def instructions(self) -> str:
        return (
            "Select events with two opposite-charge leptons of the same "
            f"flavour, each with pt > {self.min_lepton_pt} GeV. Compute "
            "their invariant mass, histogram it between 60 and 120 GeV, "
            "and fit the peak to measure the Z boson mass."
        )

    def run(self, events: list[Level2Event]) -> dict:
        histogram = Histogram1D("z_path_mass", 60, 60.0, 120.0)
        n_candidates = 0
        for event in events:
            for flavour in ("electron", "muon"):
                leptons = [p for p in event.of_type(flavour)
                           if p.pt >= self.min_lepton_pt]
                positive = [p for p in leptons if p.charge > 0]
                negative = [p for p in leptons if p.charge < 0]
                if not positive or not negative:
                    continue
                mass = invariant_mass([positive[0].p4(), negative[0].p4()])
                histogram.fill(mass)
                n_candidates += 1
        if histogram.integral() < 10:
            raise OutreachError(
                f"Z path needs more candidates (got "
                f"{int(histogram.integral())})"
            )
        fit = fit_gaussian_peak(histogram)
        return self._report(
            measured=fit.parameter("mu"),
            error=fit.errors["mu"],
            n_candidates=n_candidates,
            extra={"width": fit.parameter("sigma"),
                   "chi2_per_dof": fit.chi2_per_dof},
        )


class WPathExercise(MasterClassExercise):
    """Measure the W+/W- charge ratio from lepton + MET events."""

    title = "W path"
    experiment = "GPD"
    #: The toy generator produces symmetric W+/W- rates, so the expected
    #: charge ratio is 1.0 (the LHC value is ~1.4; see the exercise notes).
    reference_value = 1.0
    reference_label = "N(W+)/N(W-)"

    def __init__(self, min_lepton_pt: float = 25.0,
                 min_met: float = 25.0) -> None:
        self.min_lepton_pt = min_lepton_pt
        self.min_met = min_met

    def instructions(self) -> str:
        return (
            "Select events with exactly one lepton with pt > "
            f"{self.min_lepton_pt} GeV and missing transverse momentum "
            f"above {self.min_met} GeV. Count positively and negatively "
            "charged leptons and compute the charge ratio."
        )

    def run(self, events: list[Level2Event]) -> dict:
        n_plus = 0
        n_minus = 0
        for event in events:
            leptons = [p for p in event.leptons()
                       if p.pt >= self.min_lepton_pt]
            if len(leptons) != 1 or event.met < self.min_met:
                continue
            if leptons[0].charge > 0:
                n_plus += 1
            elif leptons[0].charge < 0:
                n_minus += 1
        if n_minus == 0:
            raise OutreachError("W path found no negative-lepton events")
        ratio = n_plus / n_minus
        error = ratio * math.sqrt(1.0 / max(n_plus, 1) + 1.0 / n_minus)
        return self._report(
            measured=ratio,
            error=error,
            n_candidates=n_plus + n_minus,
            extra={"n_plus": n_plus, "n_minus": n_minus},
        )


class HiggsHuntExercise(MasterClassExercise):
    """Find the Higgs in the four-lepton invariant-mass spectrum."""

    title = "Higgs hunt"
    experiment = "GPD"
    reference_value = 125.0
    reference_label = "m(H) [GeV]"

    def __init__(self, min_lepton_pt: float = 7.0) -> None:
        self.min_lepton_pt = min_lepton_pt

    def instructions(self) -> str:
        return (
            "Select events with at least four leptons with pt > "
            f"{self.min_lepton_pt} GeV and zero net charge. Compute the "
            "four-lepton invariant mass, histogram it between 100 and "
            "160 GeV, and fit the narrow peak."
        )

    def run(self, events: list[Level2Event]) -> dict:
        histogram = Histogram1D("higgs_m4l", 30, 100.0, 160.0)
        n_candidates = 0
        for event in events:
            leptons = [p for p in event.leptons()
                       if p.pt >= self.min_lepton_pt]
            if len(leptons) < 4:
                continue
            four = leptons[:4]
            if sum(p.charge for p in four) != 0:
                continue
            mass = invariant_mass([p.p4() for p in four])
            histogram.fill(mass)
            n_candidates += 1
        if histogram.integral() < 10:
            raise OutreachError(
                f"Higgs hunt needs more candidates (got "
                f"{int(histogram.integral())})"
            )
        fit = fit_gaussian_peak(histogram, linear_background=False)
        return self._report(
            measured=fit.parameter("mu"),
            error=fit.errors["mu"],
            n_candidates=n_candidates,
            extra={"width": fit.parameter("sigma")},
        )


class DLifetimeExercise(MasterClassExercise):
    """Measure the D0 lifetime from displaced two-track candidates."""

    title = "D0 lifetime"
    experiment = "FWD"
    reference_value = D0_LIFETIME_PS
    reference_label = "tau(D0) [ps]"

    def instructions(self) -> str:
        return (
            "Each event contains D0 -> K pi candidates with a measured "
            "decay time. Histogram the decay times and fit an "
            "exponential to extract the D0 lifetime; compare with the "
            "world average of 0.41 ps."
        )

    def run(self, events: list[Level2Event]) -> dict:
        # Start above the displaced-vertex turn-on (the min-flight cut
        # removes short decay times) so the exponential fit is unbiased.
        histogram = Histogram1D("d0_decay_time", 35, 0.5, 4.0)
        n_candidates = 0
        for event in events:
            for candidate in event.candidates:
                if candidate.get("type") != "D0":
                    continue
                decay_time = float(candidate.get("decay_time_ps", -1.0))
                if decay_time <= 0.0:
                    continue
                histogram.fill(decay_time)
                n_candidates += 1
        if histogram.integral() < 30:
            raise OutreachError(
                f"D lifetime needs more candidates (got "
                f"{int(histogram.integral())})"
            )
        fit = fit_exponential_lifetime(histogram)
        return self._report(
            measured=fit.parameter("tau"),
            error=fit.errors["tau"],
            n_candidates=n_candidates,
            extra={"chi2_per_dof": fit.chi2_per_dof},
        )


#: PDG K0_S mass, GeV.
_KSHORT_MASS = 0.49761


class V0Exercise(MasterClassExercise):
    """Find strange V0s: measure the K0_S mass from displaced pion pairs.

    The ALICE master-class use of Table 1 ("various very specific
    analyses, some based on V0s"): students histogram the pi+pi-
    invariant mass of displaced two-track vertices and fit the K-short
    peak.
    """

    title = "Strange V0s"
    experiment = "ALICE"
    reference_value = _KSHORT_MASS
    reference_label = "m(K0_S) [GeV]"

    def instructions(self) -> str:
        return (
            "Each event contains V0 candidates: pairs of opposite-charge "
            "tracks from a common displaced vertex. Histogram their "
            "pi+ pi- invariant mass between 0.40 and 0.60 GeV and fit "
            "the peak to measure the K0_S mass (world average "
            "0.4976 GeV)."
        )

    def run(self, events: list[Level2Event]) -> dict:
        histogram = Histogram1D("v0_mass", 60, 0.47, 0.53)
        n_candidates = 0
        for event in events:
            for candidate in event.candidates:
                if candidate.get("type") != "V0":
                    continue
                histogram.fill(float(candidate["mass"]))
                n_candidates += 1
        if histogram.integral() < 30:
            raise OutreachError(
                f"V0 exercise needs more candidates (got "
                f"{int(histogram.integral())})"
            )
        fit = fit_gaussian_peak(histogram, linear_background=False)
        return self._report(
            measured=fit.parameter("mu"),
            error=fit.errors["mu"],
            n_candidates=n_candidates,
            extra={"width": fit.parameter("sigma")},
        )


def build_v0_candidates(reco: RecoEvent,
                        mass_window: float = 0.08,
                        max_doca_mm: float = 10.0,
                        min_flight_mm: float = 2.0) -> list[dict]:
    """Build ``K0_S -> pi+ pi-`` V0 candidates from reconstructed tracks.

    The same displaced-vertex technique as :func:`build_d0_candidates`
    but with the pi-pi mass hypothesis, a longer minimum flight, and a
    looser vertex requirement — the straight-line track model's closest
    approach degrades with centimetre displacements, so the cut is set
    at the toy's actual vertex resolution.
    """
    candidates = []
    tracks = [t for t in reco.tracks if t.pt > 0.3]
    for index, track1 in enumerate(tracks):
        for track2 in tracks[index + 1:]:
            if track1.charge * track2.charge >= 0:
                continue
            mass = invariant_mass([track1.p4(_PION_MASS),
                                   track2.p4(_PION_MASS)])
            if abs(mass - _KSHORT_MASS) > mass_window:
                continue
            try:
                vertex, doca = two_track_vertex(track1, track2)
            except Exception:
                continue
            if doca > max_doca_mm:
                continue
            flight = math.hypot(vertex[0], vertex[1])
            if flight < min_flight_mm:
                continue
            candidates.append({
                "type": "V0",
                "mass": mass,
                "flight_mm": flight,
                "doca_mm": doca,
            })
    return candidates


def _candidate_mass(track1: Track, track2: Track) -> float:
    """Best K-pi mass hypothesis for an opposite-charge track pair."""
    best = None
    for kaon, pion in ((track1, track2), (track2, track1)):
        mass = invariant_mass([kaon.p4(_KAON_MASS), pion.p4(_PION_MASS)])
        if best is None or abs(mass - _D0_MASS) < abs(best - _D0_MASS):
            best = mass
    return best


def build_d0_candidates(reco: RecoEvent,
                        mass_window: float = 0.15,
                        max_doca_mm: float = 0.5,
                        min_flight_mm: float = 0.1) -> list[dict]:
    """Build D0 -> K pi candidates from reconstructed tracks.

    Pairs opposite-charge tracks, fits their common vertex, requires a
    displaced vertex, and converts the flight distance into a proper
    decay time: ``t = L * m / (p * c)``. This runs at RECO level because
    it needs tracks; the resulting candidates are embedded in the Level-2
    events the classroom sees.
    """
    candidates = []
    tracks = [t for t in reco.tracks if t.pt > 0.5]
    for index, track1 in enumerate(tracks):
        for track2 in tracks[index + 1:]:
            if track1.charge * track2.charge >= 0:
                continue
            mass = _candidate_mass(track1, track2)
            if abs(mass - _D0_MASS) > mass_window:
                continue
            try:
                vertex, doca = two_track_vertex(track1, track2)
            except Exception:
                continue
            if doca > max_doca_mm:
                continue
            # Transverse flight length only: the beam spot is micrometres
            # wide in x-y but centimetres long in z, so the longitudinal
            # primary-vertex position would swamp the millimetre-scale
            # decay length. t = L_xy * m / (pt * c).
            flight = math.hypot(vertex[0], vertex[1])
            if flight < min_flight_mm:
                continue
            momentum = track1.p4(_KAON_MASS) + track2.p4(_PION_MASS)
            pt = momentum.pt
            if pt <= 0.0:
                continue
            decay_time_ns = flight * _D0_MASS / (
                pt * SPEED_OF_LIGHT_MM_PER_NS
            )
            candidates.append({
                "type": "D0",
                "mass": mass,
                "decay_time_ps": decay_time_ns * 1000.0,
                "flight_mm": flight,
                "doca_mm": doca,
            })
    return candidates
