"""Static HTML export of an outreach dataset.

The browser-based tools of Table 1 (iSpy, the CMS JavaScript
histogrammers) need nothing but a web browser on the student's machine.
This module produces that artifact from a Level-2 dataset: one
standalone HTML page — no JavaScript, no external assets — with the
dataset summary, an inline-SVG histogram, and inline-SVG event displays.
Email the file to a classroom and the exercise runs anywhere.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.detector.geometry import DetectorGeometry
from repro.errors import OutreachError, PersistenceError
from repro.outreach.display import EventDisplayRecord
from repro.outreach.format import Level2Event
from repro.outreach.portal import OutreachPortal
from repro.outreach.svg import render_event_svg
from repro.stats.histogram import Histogram1D

_PAGE_STYLE = """
body { font-family: sans-serif; background: #fafafa; color: #222;
       max-width: 960px; margin: 2em auto; }
h1, h2 { color: #16425b; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 4px 10px;
         font-size: 0.9em; }
.display { display: inline-block; margin: 0.5em; }
.caption { font-size: 0.85em; color: #555; }
"""


def histogram_svg(histogram: Histogram1D, width: int = 560,
                  height: int = 240, colour: str = "#2e86ab") -> str:
    """Render a histogram as an inline SVG bar chart."""
    values = histogram.values()
    peak = float(values.max()) if histogram.nbins else 0.0
    if peak <= 0.0:
        raise OutreachError(
            f"histogram {histogram.name!r} is empty; nothing to draw"
        )
    margin = 30
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin
    bar_width = plot_width / histogram.nbins
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}">',
        f'<rect width="{width}" height="{height}" fill="white" '
        f'stroke="#ccc"/>',
    ]
    for index, value in enumerate(values):
        bar_height = plot_height * float(value) / peak
        x = margin + index * bar_width
        y = margin + plot_height - bar_height
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" '
            f'width="{max(1.0, bar_width - 1):.1f}" '
            f'height="{bar_height:.1f}" fill="{colour}"/>'
        )
    axis_y = margin + plot_height
    parts.append(
        f'<line x1="{margin}" y1="{axis_y}" x2="{margin + plot_width}" '
        f'y2="{axis_y}" stroke="#333"/>'
    )
    parts.append(
        f'<text x="{margin}" y="{height - 6}" font-size="11" '
        f'fill="#333">{html.escape(f"{histogram.low:g}")}</text>'
    )
    parts.append(
        f'<text x="{margin + plot_width - 30}" y="{height - 6}" '
        f'font-size="11" fill="#333">'
        f'{html.escape(f"{histogram.high:g}")}</text>'
    )
    parts.append(
        f'<text x="{margin}" y="{margin - 8}" font-size="12" '
        f'fill="#333">{html.escape(histogram.label or histogram.name)}'
        f"</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def export_portal_html(
    events: list[Level2Event],
    geometry: DetectorGeometry,
    dataset_name: str = "outreach-sample",
    histogram_variable: str = "dimuon_mass",
    histogram_range: tuple[int, float, float] = (30, 60.0, 120.0),
    n_displays: int = 3,
) -> str:
    """Build the standalone HTML page; returns it as a string."""
    if not events:
        raise OutreachError("cannot export an empty dataset")
    portal = OutreachPortal(events, dataset_name)
    summary = portal.summary()
    nbins, low, high = histogram_range
    histogram = portal.histogram(histogram_variable, nbins, low, high)
    histogram.label = histogram_variable

    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(dataset_name)}</title>",
        f"<style>{_PAGE_STYLE}</style></head><body>",
        f"<h1>{html.escape(dataset_name)}</h1>",
        "<p class='caption'>Standalone outreach export — "
        "no software needed beyond this page.</p>",
        "<h2>Dataset summary</h2>",
        "<table>",
    ]
    for key in ("n_events", "n_with_leptons", "n_with_jets"):
        parts.append(f"<tr><th>{html.escape(key)}</th>"
                     f"<td>{summary[key]}</td></tr>")
    parts.append("</table>")

    parts.append(f"<h2>{html.escape(histogram_variable)}</h2>")
    if histogram.integral() > 0:
        parts.append(histogram_svg(histogram))
        parts.append(
            f"<p class='caption'>{int(histogram.integral())} entries "
            f"between {low:g} and {high:g}.</p>"
        )
    else:
        parts.append("<p class='caption'>no entries in range</p>")

    parts.append("<h2>Event displays</h2>")
    shown = 0
    for index, event in enumerate(events):
        if shown >= n_displays:
            break
        if not event.particles:
            continue
        record = EventDisplayRecord.build(geometry, event)
        parts.append("<div class='display'>")
        parts.append(render_event_svg(record.to_dict(), size=300))
        parts.append(
            f"<div class='caption'>event {event.event_number}: "
            f"{len(event.particles)} particles, "
            f"MET {event.met:.1f} GeV</div></div>"
        )
        shown += 1
    if shown == 0:
        parts.append("<p class='caption'>no displayable events</p>")

    parts.append("<h2>First events</h2><table>")
    parts.append("<tr><th>event</th><th>type</th><th>E [GeV]</th>"
                 "<th>pt [GeV]</th><th>eta</th><th>phi</th>"
                 "<th>charge</th></tr>")
    for event in events[:10]:
        for particle in event.particles:
            parts.append(
                f"<tr><td>{event.event_number}</td>"
                f"<td>{html.escape(particle.particle_type)}</td>"
                f"<td>{particle.energy:.1f}</td>"
                f"<td>{particle.pt:.1f}</td>"
                f"<td>{particle.eta:.2f}</td>"
                f"<td>{particle.phi:.2f}</td>"
                f"<td>{particle.charge:+d}</td></tr>"
            )
    parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_portal_html(path: str | Path, events: list[Level2Event],
                      geometry: DetectorGeometry, **options) -> Path:
    """Write the export to a file; returns the path."""
    path = Path(path)
    try:
        path.write_text(
            export_portal_html(events, geometry, **options),
            encoding="utf-8",
        )
    except OSError as exc:
        raise PersistenceError(
            f"cannot write portal page {path}: {exc}"
        )
    return path
