"""The simplified Level-2 event format.

Design requirements from the paper: "a well-documented means of
transforming the full data format(s) ... into a simplified format
suitable for these applications, as well as an easily-understandable
description of the contents of the format itself" — i.e. the format must
be self-documenting (the Table 1 criterion) and light enough for a
classroom ("ROOT too heavy for classroom use" — ALICE's comment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OutreachError
from repro.kinematics import FourVector

#: Particle types the simplified format recognises.
PARTICLE_TYPES = ("electron", "muon", "photon", "jet")


@dataclass(frozen=True)
class SimplifiedParticle:
    """One particle in the simplified format: type plus kinematics."""

    particle_type: str
    energy: float
    pt: float
    eta: float
    phi: float
    charge: int = 0

    def __post_init__(self) -> None:
        if self.particle_type not in PARTICLE_TYPES:
            raise OutreachError(
                f"unknown simplified particle type "
                f"{self.particle_type!r}; known: {PARTICLE_TYPES}"
            )

    def p4(self) -> FourVector:
        """The particle's four-momentum."""
        return FourVector.from_ptetaphie(self.pt, self.eta, self.phi,
                                         self.energy)

    def to_dict(self) -> dict:
        """Serialise for the LEVEL2 JSON format."""
        return {
            "type": self.particle_type,
            "E": self.energy,
            "pt": self.pt,
            "eta": self.eta,
            "phi": self.phi,
            "charge": self.charge,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SimplifiedParticle":
        """Inverse of :meth:`to_dict`."""
        return cls(
            particle_type=str(record["type"]),
            energy=float(record["E"]),
            pt=float(record["pt"]),
            eta=float(record["eta"]),
            phi=float(record["phi"]),
            charge=int(record.get("charge", 0)),
        )


@dataclass
class Level2Event:
    """A complete simplified event.

    ``candidates`` carries exercise-specific composite objects (e.g. D0
    candidates with decay times for the lifetime master class);
    ``display`` optionally embeds an event-display payload so a single
    file serves both analysis and visualisation.
    """

    run_number: int
    event_number: int
    collision_energy_tev: float
    particles: list[SimplifiedParticle] = field(default_factory=list)
    met: float = 0.0
    met_phi: float = 0.0
    candidates: list[dict] = field(default_factory=list)
    display: dict | None = None

    def of_type(self, particle_type: str) -> list[SimplifiedParticle]:
        """Particles of one type, pt-sorted."""
        return sorted(
            (p for p in self.particles
             if p.particle_type == particle_type),
            key=lambda p: p.pt, reverse=True,
        )

    def leptons(self) -> list[SimplifiedParticle]:
        """Electrons and muons, pt-sorted."""
        return sorted(
            (p for p in self.particles
             if p.particle_type in ("electron", "muon")),
            key=lambda p: p.pt, reverse=True,
        )

    def approximate_size_bytes(self) -> int:
        """Rough persistent size, used by conversion statistics."""
        base = 64 + 40 * len(self.particles) + 48 * len(self.candidates)
        if self.display is not None:
            base += 32 * (len(self.display.get("tracks", []))
                          + len(self.display.get("towers", [])))
        return base

    def to_dict(self) -> dict:
        """Serialise for the LEVEL2 JSON-lines format."""
        record = {
            "run": self.run_number,
            "event": self.event_number,
            "collision_energy_tev": self.collision_energy_tev,
            "particles": [p.to_dict() for p in self.particles],
            "met": {"value": self.met, "phi": self.met_phi},
        }
        if self.candidates:
            record["candidates"] = list(self.candidates)
        if self.display is not None:
            record["display"] = dict(self.display)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Level2Event":
        """Inverse of :meth:`to_dict`."""
        met = record.get("met", {})
        return cls(
            run_number=int(record["run"]),
            event_number=int(record["event"]),
            collision_energy_tev=float(
                record.get("collision_energy_tev", 0.0)
            ),
            particles=[SimplifiedParticle.from_dict(p)
                       for p in record.get("particles", [])],
            met=float(met.get("value", 0.0)),
            met_phi=float(met.get("phi", 0.0)),
            candidates=list(record.get("candidates", [])),
            display=(dict(record["display"])
                     if "display" in record else None),
        )


def format_documentation() -> dict:
    """The embedded format description — the self-documentation payload."""
    return {
        "format": "repro-level2",
        "version": "1.0",
        "description": (
            "Simplified collider-event format for outreach and high-level "
            "re-analysis. One JSON object per event."
        ),
        "fields": {
            "run": "run number",
            "event": "event number",
            "collision_energy_tev": "centre-of-mass energy in TeV",
            "particles": (
                "list of reconstructed particles; each has type "
                "(electron|muon|photon|jet), E [GeV], pt [GeV], eta, "
                "phi [rad], charge"
            ),
            "met": "missing transverse momentum: value [GeV] and phi",
            "candidates": (
                "optional composite candidates, e.g. D0 with mass [GeV] "
                "and decay_time_ps"
            ),
            "display": "optional event-display payload (tracks, towers)",
        },
    }
