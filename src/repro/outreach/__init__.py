"""Level-2 outreach tooling: simplified formats, displays, master classes.

Implements Section 2.1's ecosystem as one coherent stack instead of the
four divergent ones in Table 1:

- a *simplified, self-documenting event format* (:mod:`format`),
- a *thin converter* from AOD into it (:mod:`converter`) — the
  architecture of the Finland/CMS public-data project the paper
  describes,
- *event-display records* consuming the same geometry export the
  detector publishes (:mod:`display`),
- four *master classes* mirroring the Table 1 rows — Z path, W path,
  Higgs hunt, and the LHCb D-lifetime measurement (:mod:`masterclass`),
- an *analysis portal* for browsing and histogramming without any
  experiment software (:mod:`portal`).
"""

from repro.outreach.format import Level2Event, SimplifiedParticle
from repro.outreach.converter import ConversionStats, Level2Converter
from repro.outreach.display import (
    DisplayTower,
    DisplayTrack,
    EventDisplayRecord,
    render_lego_ascii,
)
from repro.outreach.masterclass import (
    DLifetimeExercise,
    HiggsHuntExercise,
    MasterClassExercise,
    V0Exercise,
    WPathExercise,
    ZPathExercise,
    build_d0_candidates,
    build_v0_candidates,
)
from repro.outreach.portal import OutreachPortal
from repro.outreach.svg import render_event_svg
from repro.outreach.web import (
    export_portal_html,
    histogram_svg,
    write_portal_html,
)

__all__ = [
    "SimplifiedParticle",
    "Level2Event",
    "Level2Converter",
    "ConversionStats",
    "DisplayTrack",
    "DisplayTower",
    "EventDisplayRecord",
    "render_lego_ascii",
    "MasterClassExercise",
    "ZPathExercise",
    "WPathExercise",
    "HiggsHuntExercise",
    "DLifetimeExercise",
    "V0Exercise",
    "build_d0_candidates",
    "build_v0_candidates",
    "OutreachPortal",
    "render_event_svg",
    "export_portal_html",
    "histogram_svg",
    "write_portal_html",
]
