"""The outreach analysis portal.

A browser-style interface over Level-2 datasets: counting, histogramming
of a fixed variable vocabulary, and per-event displays — the
"Data Browser/Histogrammer/Demonstration analyses" row of Table 1,
without any experiment software behind it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import OutreachError
from repro.kinematics import invariant_mass
from repro.outreach.display import render_lego_ascii
from repro.outreach.format import Level2Event
from repro.stats.histogram import Histogram1D


def _dilepton_mass(event: Level2Event) -> float | None:
    leptons = event.leptons()
    if len(leptons) < 2:
        return None
    return invariant_mass([leptons[0].p4(), leptons[1].p4()])


def _dimuon_mass(event: Level2Event) -> float | None:
    muons = event.of_type("muon")
    if len(muons) < 2:
        return None
    return invariant_mass([muons[0].p4(), muons[1].p4()])


#: The portal's fixed variable vocabulary: name -> extractor.
_VARIABLES: dict[str, Callable[[Level2Event], float | None]] = {
    "met": lambda event: event.met,
    "n_particles": lambda event: float(len(event.particles)),
    "n_leptons": lambda event: float(len(event.leptons())),
    "n_jets": lambda event: float(len(event.of_type("jet"))),
    "lead_lepton_pt": lambda event: (
        event.leptons()[0].pt if event.leptons() else None
    ),
    "lead_jet_pt": lambda event: (
        event.of_type("jet")[0].pt if event.of_type("jet") else None
    ),
    "dilepton_mass": _dilepton_mass,
    "dimuon_mass": _dimuon_mass,
}


class OutreachPortal:
    """Interactive-style access to a Level-2 dataset."""

    def __init__(self, events: list[Level2Event],
                 dataset_name: str = "outreach-sample") -> None:
        self.events = list(events)
        self.dataset_name = dataset_name

    def __len__(self) -> int:
        return len(self.events)

    @staticmethod
    def variables() -> list[str]:
        """The histogrammable variable names, sorted."""
        return sorted(_VARIABLES)

    def _extract(self, variable: str,
                 event: Level2Event) -> float | None:
        try:
            extractor = _VARIABLES[variable]
        except KeyError:
            raise OutreachError(
                f"unknown portal variable {variable!r}; available: "
                f"{self.variables()}"
            ) from None
        return extractor(event)

    def histogram(self, variable: str, nbins: int, low: float,
                  high: float) -> Histogram1D:
        """Histogram one variable across the dataset."""
        histogram = Histogram1D(f"{self.dataset_name}/{variable}",
                                nbins, low, high, label=variable)
        for event in self.events:
            value = self._extract(variable, event)
            if value is not None:
                histogram.fill(value)
        return histogram

    def count(self, variable: str, minimum: float) -> int:
        """Events whose variable value is defined and >= minimum."""
        total = 0
        for event in self.events:
            value = self._extract(variable, event)
            if value is not None and value >= minimum:
                total += 1
        return total

    def event_display(self, index: int) -> str:
        """ASCII display of one event."""
        if not 0 <= index < len(self.events):
            raise OutreachError(
                f"event index {index} out of range 0..{len(self.events) - 1}"
            )
        return render_lego_ascii(self.events[index])

    def summary(self) -> dict:
        """Dataset overview the portal's landing page would show."""
        return {
            "dataset": self.dataset_name,
            "n_events": len(self.events),
            "n_with_leptons": sum(1 for event in self.events
                                  if event.leptons()),
            "n_with_jets": sum(1 for event in self.events
                               if event.of_type("jet")),
            "variables": self.variables(),
        }
