"""Event-display records and a terminal renderer.

The displays of Table 1 consume (a) a geometry description and (b)
per-event payloads of tracks and calorimeter towers. Here the geometry
comes from :meth:`DetectorGeometry.to_display_dict`, the event payload
from :func:`build_display_payload`, and :func:`render_lego_ascii` draws
an eta-phi "lego plot" in plain text — a display that genuinely runs on
any platform, which was the whole point of the common-format discussion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.detector.geometry import DetectorGeometry
from repro.errors import OutreachError

# Imported lazily at type level to avoid a converter <-> display cycle:
# build_display_payload takes any object with .particles/.met attributes.


@dataclass(frozen=True)
class DisplayTrack:
    """A drawable charged-particle trajectory (polyline in r-phi)."""

    pt: float
    eta: float
    phi: float
    charge: int
    points_xy_mm: tuple[tuple[float, float], ...]

    def to_dict(self) -> dict:
        """Serialise for the display payload."""
        return {
            "pt": self.pt, "eta": self.eta, "phi": self.phi,
            "charge": self.charge,
            "points": [list(point) for point in self.points_xy_mm],
        }


@dataclass(frozen=True)
class DisplayTower:
    """A drawable calorimeter tower in eta-phi."""

    kind: str
    eta: float
    phi: float
    energy: float

    def to_dict(self) -> dict:
        """Serialise for the display payload."""
        return {"kind": self.kind, "eta": self.eta, "phi": self.phi,
                "energy": self.energy}


def _helix_points(pt: float, phi: float, charge: int,
                  bfield_tesla: float, max_radius_mm: float,
                  n_points: int = 12) -> tuple[tuple[float, float], ...]:
    """Sample (x, y) points along the transverse helix for drawing."""
    if pt <= 0.0:
        raise OutreachError("cannot draw a zero-pt track")
    curvature = -charge * 0.0003 * bfield_tesla / (2.0 * pt)
    points = []
    for step in range(1, n_points + 1):
        radius = max_radius_mm * step / n_points
        azimuth = phi + curvature * radius
        points.append((radius * math.cos(azimuth),
                       radius * math.sin(azimuth)))
    return tuple(points)


def build_display_payload(level2_event, bfield_tesla: float = 2.0,
                          max_radius_mm: float = 1100.0) -> dict:
    """Build the tracks + towers display payload for a Level-2 event."""
    tracks = []
    towers = []
    for particle in level2_event.particles:
        if particle.particle_type in ("electron", "muon"):
            tracks.append(DisplayTrack(
                pt=particle.pt,
                eta=particle.eta,
                phi=particle.phi,
                charge=particle.charge,
                points_xy_mm=_helix_points(
                    particle.pt, particle.phi, particle.charge,
                    bfield_tesla, max_radius_mm,
                ),
            ))
        kind = {"electron": "ecal", "photon": "ecal",
                "muon": "muon", "jet": "hcal"}[particle.particle_type]
        towers.append(DisplayTower(
            kind=kind, eta=particle.eta, phi=particle.phi,
            energy=particle.energy,
        ))
    return {
        "tracks": [track.to_dict() for track in tracks],
        "towers": [tower.to_dict() for tower in towers],
        "met": {"value": level2_event.met, "phi": level2_event.met_phi},
    }


@dataclass(frozen=True)
class EventDisplayRecord:
    """A complete, standalone display record: geometry + event payload."""

    geometry: dict
    event_payload: dict
    run_number: int
    event_number: int

    @classmethod
    def build(cls, geometry: DetectorGeometry,
              level2_event) -> "EventDisplayRecord":
        """Pair a geometry export with a Level-2 event."""
        payload = (level2_event.display
                   if level2_event.display is not None
                   else build_display_payload(
                       level2_event, geometry.bfield_tesla
                   ))
        return cls(
            geometry=geometry.to_display_dict(),
            event_payload=payload,
            run_number=level2_event.run_number,
            event_number=level2_event.event_number,
        )

    def to_dict(self) -> dict:
        """Serialise the full standalone record."""
        return {
            "format": "repro-event-display",
            "run": self.run_number,
            "event": self.event_number,
            "geometry": dict(self.geometry),
            "payload": dict(self.event_payload),
        }


_LEGO_CHARS = " .:-=+*#%@"


def render_lego_ascii(level2_event, eta_range: float = 3.0,
                      n_eta: int = 24, n_phi: int = 48) -> str:
    """Render an eta-phi energy lego plot as ASCII art.

    Rows are phi (top = +pi), columns are eta; brightness encodes the
    energy deposited by the event's particles. Leptons are overdrawn
    with their symbols (e/m) so students can spot them.
    """
    if n_eta <= 0 or n_phi <= 0:
        raise OutreachError("grid dimensions must be positive")
    grid = [[0.0] * n_eta for _ in range(n_phi)]
    symbols: dict[tuple[int, int], str] = {}
    for particle in level2_event.particles:
        if abs(particle.eta) >= eta_range:
            continue
        column = int((particle.eta + eta_range) / (2 * eta_range) * n_eta)
        column = min(max(column, 0), n_eta - 1)
        row = int((math.pi - particle.phi) / (2 * math.pi) * n_phi)
        row = min(max(row, 0), n_phi - 1)
        grid[row][column] += particle.energy
        if particle.particle_type == "electron":
            symbols[(row, column)] = "e"
        elif particle.particle_type == "muon":
            symbols[(row, column)] = "m"
    peak = max((energy for row in grid for energy in row), default=0.0)
    lines = [f"run {level2_event.run_number} event "
             f"{level2_event.event_number}   "
             f"MET = {level2_event.met:.1f} GeV"]
    for row_index, row in enumerate(grid):
        rendered = []
        for column_index, energy in enumerate(row):
            if (row_index, column_index) in symbols:
                rendered.append(symbols[(row_index, column_index)])
            elif peak > 0.0 and energy > 0.0:
                intensity = int(
                    (len(_LEGO_CHARS) - 1) * min(1.0, energy / peak)
                )
                rendered.append(_LEGO_CHARS[max(1, intensity)])
            else:
                rendered.append(" ")
        lines.append("|" + "".join(rendered) + "|")
    lines.append("+" + "-" * n_eta + "+  eta ->")
    return "\n".join(lines)
